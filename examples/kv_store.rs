//! A transactional key-value service: the `tm-server` front end driven end to
//! end — multi-tenant KV puts/gets/adds, per-tenant queues and cross-shard
//! transfers, every request a Part-HTM transaction, small same-shard requests
//! coalesced by the group-commit batcher and excess arrivals shed to the
//! serialized slow path by the admission controller.
//!
//! The example is deliberately a *thin* wrapper: everything — sharding,
//! batching, admission, latency accounting, the stats snapshot — lives in
//! [`part_htm::server`]; this file only picks a traffic mix, runs the batched
//! server against the unbatched oracle, and checks the results agree (the
//! group-commit transparency argument of `docs/tm-server.md`, executed).
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use part_htm::core::{PartHtm, TmConfig, TmRuntime};
use part_htm::htm::HtmConfig;
use part_htm::server::service::{run_server, ServeMode, ServeOpts, ServerState};
use part_htm::server::{gen_requests, AdmissionSpec, ServerSpec, TrafficMix};

const WORKERS: usize = 4;
const REQUESTS: usize = 20_000;
const SPEC: ServerSpec = ServerSpec {
    shards: 8,
    slots_per_shard: 512,
    queue_cap: 32,
};

/// Initial balances: 4 tenants x 64 keys so transfers have funds to move.
fn preload_items() -> Vec<(u32, u32, u64)> {
    (0..4u32)
        .flat_map(|tenant| (0..64u32).map(move |key| (tenant, key, 1_000)))
        .collect()
}

/// One server run: fresh runtime and heap, saturated arrivals, the given
/// worker count and batching/admission configuration. Returns (goodput,
/// p99 ns, batched requests, final KV total).
fn serve(
    workers: usize,
    n: usize,
    batch_max: usize,
    admission: AdmissionSpec,
    stats: bool,
) -> (f64, u64, u64, u64) {
    let rt = TmRuntime::new(
        HtmConfig::default(),
        TmConfig::default(),
        workers,
        SPEC.app_words(),
    );
    let state = ServerState::new(&rt, SPEC);
    state.preload(&rt, &preload_items());
    let mix = TrafficMix {
        keys: 64,
        ..TrafficMix::default()
    };
    // Open-loop saturated arrivals: everything due at t=0.
    let reqs = gen_requests(&mix, &vec![0u64; n], 42);
    let opts = ServeOpts {
        batch_max,
        admission,
        stats_stdout: stats,
        ..ServeOpts::default()
    };
    let rep = run_server::<PartHtm>(&rt, &state, workers, &reqs, &ServeMode::Wall, &opts);
    assert_eq!(rep.served, n as u64, "open-loop server serves all");
    (
        rep.goodput_wall(),
        rep.latency.p99(),
        rep.run.tm.batch_reqs,
        state.kv_total_nt(&rt),
    )
}

fn main() {
    println!(
        "tm-server: {WORKERS} workers, {} shards, {REQUESTS} mixed requests (KV + queue + transfer)\n",
        SPEC.shards
    );

    let (tput_b, p99_b, batched, _) = serve(WORKERS, REQUESTS, 8, AdmissionSpec::default(), true);
    println!();
    let (tput_u, p99_u, _, _) = serve(WORKERS, REQUESTS, 1, AdmissionSpec::off(), false);

    println!(
        "\n{:<26} {:>12} {:>12}",
        "configuration", "req/s", "p99 (ns)"
    );
    println!(
        "{:<26} {:>12.0} {:>12}",
        "batch 8 + admission", tput_b, p99_b
    );
    println!(
        "{:<26} {:>12.0} {:>12}",
        "unbatched oracle", tput_u, p99_u
    );
    println!(
        "\ngroup commit coalesced {batched} of {REQUESTS} requests; speedup {:.2}x",
        tput_b / tput_u
    );

    // Group commit is result-transparent under the per-shard FIFO rules: on a
    // single worker (where cross-worker timing cannot reorder a Put against a
    // cross-shard Transfer) the batched run's final heap state must match the
    // unbatched oracle exactly.
    let (_, _, _, total_b) = serve(1, REQUESTS / 4, 8, AdmissionSpec::default(), false);
    let (_, _, _, total_u) = serve(1, REQUESTS / 4, 1, AdmissionSpec::off(), false);
    assert_eq!(total_b, total_u, "batched run diverged from the oracle");
    println!("OK: batched final state matches the unbatched oracle ({total_b} units).");
}
