//! A transactional key-value store: multi-key read-modify-write transactions over
//! the shared-heap hash map, executed under every protocol in the evaluation.
//!
//! Each transaction atomically rebalances "stock" from one key to two others and
//! bumps an audit counter — the kind of multi-object atomic update TM exists for.
//! After each protocol's run the example sums the stock back out of the heap and
//! asserts conservation, and checks the audit counter equals the committed
//! transaction count.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use part_htm::core::ctx::SlowCtx;
use part_htm::core::{TmConfig, TmThread, TxCtx, Workload};
use part_htm::harness::{run_cell_with, Algo};
use part_htm::htm::abort::TxResult;
use part_htm::htm::HtmConfig;
use part_htm::workloads::structures::HeapHashMap;
use rand::rngs::SmallRng;
use rand::Rng;

const KEYS: u64 = 256;
const SLOTS: usize = 1024;
const INITIAL_STOCK: u64 = 100;
const THREADS: usize = 4;
const TXS_PER_THREAD: usize = 2_000;

#[derive(Clone, Copy)]
struct Store {
    map: HeapHashMap,
    audit: part_htm::htm::Addr,
}

/// Move stock from one key to two others, atomically, and bump the audit counter.
struct Rebalance {
    store: Store,
    src: u64,
    dst: [u64; 2],
}

impl Workload for Rebalance {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        self.src = rng.gen_range(0..KEYS);
        self.dst = [rng.gen_range(0..KEYS), rng.gen_range(0..KEYS)];
    }

    fn segment<C: TxCtx>(&mut self, _seg: usize, ctx: &mut C) -> TxResult<()> {
        let m = self.store.map;
        let have = m.get(ctx, self.src)?.unwrap_or(0);
        let move_out = (have / 2).min(10);
        m.update(ctx, self.src, 0, |v| v - move_out)?;
        m.update(ctx, self.dst[0], 0, |v| v + move_out / 2)?;
        m.update(ctx, self.dst[1], 0, |v| v + (move_out - move_out / 2))?;
        let a = ctx.read(self.store.audit)?;
        ctx.write(self.store.audit, a + 1)
    }
}

fn main() {
    println!("{THREADS} threads x {TXS_PER_THREAD} rebalances over {KEYS} keys, every protocol:\n");
    println!(
        "{:<12} {:>12} {:>14} {:>10}",
        "algorithm", "tx/s", "total stock", "audited"
    );

    let app_words = HeapHashMap::words_needed(SLOTS) + 8;
    for algo in Algo::COMPETITORS {
        let (r, (total, audited)) = run_cell_with(
            algo,
            THREADS,
            TXS_PER_THREAD,
            HtmConfig::default(),
            TmConfig::default(),
            app_words,
            |rt| {
                let store = Store {
                    map: HeapHashMap::new(rt.app(0), SLOTS),
                    audit: rt.app(HeapHashMap::words_needed(SLOTS)),
                };
                // Seed the stock single-threadedly.
                let th = TmThread::new(rt, 0);
                let mut ctx = SlowCtx {
                    th: &th.hw,
                    mask_values: false,
                };
                for k in 0..KEYS {
                    store.map.insert(&mut ctx, k, INITIAL_STOCK).unwrap();
                }
                store
            },
            |store, _t| Rebalance {
                store,
                src: 0,
                dst: [1, 2],
            },
            |rt, store| {
                let th = TmThread::new(rt, 0);
                let mut ctx = SlowCtx {
                    th: &th.hw,
                    mask_values: false,
                };
                let total: u64 = (0..KEYS)
                    .map(|k| store.map.get(&mut ctx, k).unwrap().unwrap_or(0))
                    .sum();
                (total, rt.verify_read(HeapHashMap::words_needed(SLOTS)))
            },
        );
        println!(
            "{:<12} {:>12.0} {:>14} {:>10}",
            r.algo,
            r.throughput(),
            total,
            audited
        );
        assert_eq!(
            total,
            KEYS * INITIAL_STOCK,
            "{}: stock must be conserved",
            r.algo
        );
        assert_eq!(
            audited, r.commits,
            "{}: audit counter must match commits",
            r.algo
        );
        assert_eq!(r.commits, (THREADS * TXS_PER_THREAD) as u64);
    }
    println!(
        "\nOK: every protocol conserved {} units of stock across {} transactions.",
        KEYS * INITIAL_STOCK,
        THREADS * TXS_PER_THREAD
    );
}
