//! Maze routing — the paper's flagship scenario (Labyrinth, Fig. 5(d) and Table 1).
//!
//! Routing transactions copy a whole grid region while planning, which makes them
//! exceed best-effort HTM's space and time budgets: under plain HTM-with-global-lock
//! they all serialise, while Part-HTM splits them into sub-HTM transactions and
//! keeps committing in hardware. This example routes a batch of connections under
//! both executors and compares wall-clock time, paths used, and the abort anatomy
//! (the Table 1 statistics).
//!
//! ```text
//! cargo run --release --example maze_router
//! ```

use part_htm::baselines::HtmGl;
use part_htm::core::{PartHtm, TmExecutor, TmRuntime, Workload};
use part_htm::harness::report::StatsReport;
use part_htm::harness::RunResult;
use part_htm::workloads::stamp::labyrinth::{self, LabyrinthParams};
use std::time::Instant;

const THREADS: usize = 4;
const ROUTES_PER_THREAD: usize = 15;

fn route_all<'r, E: TmExecutor<'r>>(rt: &'r TmRuntime, p: &LabyrinthParams) -> (RunResult, usize) {
    let shared = labyrinth::init(rt, p);
    let t0 = Instant::now();
    let mut tm = part_htm::core::TmStats::default();
    let mut hw = part_htm::htm::HtmStats::default();
    let mut routed = 0;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut exec = E::new(rt, t);
                    let mut w = labyrinth::Labyrinth::new(shared, t as u64 + 1);
                    for _ in 0..ROUTES_PER_THREAD {
                        w.sample(&mut exec.thread_mut().rng);
                        exec.execute(&mut w);
                    }
                    (
                        exec.thread().stats.clone(),
                        exec.thread().hw.stats.clone(),
                        w.routed,
                    )
                })
            })
            .collect();
        for h in handles {
            let (t_tm, t_hw, r) = h.join().unwrap();
            tm.merge(&t_tm);
            hw.merge(&t_hw);
            routed += r as usize;
        }
    });
    let commits = tm.commits_total();
    (
        RunResult {
            algo: E::NAME,
            threads: THREADS,
            elapsed: t0.elapsed(),
            commits,
            tm,
            hw,
            makespan: 0,
        },
        routed,
    )
}

fn main() {
    let p = LabyrinthParams::default_scale();
    println!(
        "routing {} connections on a {}x{} grid, {THREADS} threads\n",
        THREADS * ROUTES_PER_THREAD,
        p.side,
        p.side
    );

    println!("{}", StatsReport::header());
    for algo in ["HTM-GL", "Part-HTM"] {
        // Fresh grid per executor so both route the same workload.
        let rt = TmRuntime::with_defaults(THREADS, p.app_words());
        let (run, routed) = match algo {
            "HTM-GL" => route_all::<HtmGl>(&rt, &p),
            _ => route_all::<PartHtm>(&rt, &p),
        };
        println!("{}", StatsReport::from_run(&run).render_row());
        println!(
            "  -> {} routes placed, {} cells claimed, {:.2} connections/s\n",
            routed,
            labyrinth::init(&rt, &p).occupied_nt(&rt),
            run.throughput(),
        );
    }
    println!(
        "The shape to look for (Table 1 of the paper): HTM-GL aborts are dominated by\n\
         capacity/other (resource failures) and half its commits take the global lock;\n\
         Part-HTM commits the same workload through sub-HTM transactions instead."
    );
}
