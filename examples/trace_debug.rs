//! Debugging with the simulator's event trace: watch a resource-limited
//! transaction fail on the fast path and succeed as sub-HTM transactions.
//!
//! ```text
//! cargo run --release --example trace_debug
//! ```

use part_htm::core::{PartHtm, TmConfig, TmExecutor, TmRuntime, TxCtx, Workload};
use part_htm::htm::abort::TxResult;
use part_htm::htm::{Addr, HtmConfig};
use rand::rngs::SmallRng;

/// Writes 96 cache lines in 8 segments: too big for one (16x4) hardware
/// transaction, comfortable as eight sub-HTM transactions.
struct BigWrite {
    base: Addr,
}

impl Workload for BigWrite {
    type Snap = ();
    fn sample(&mut self, _rng: &mut SmallRng) {}
    fn segments(&self) -> usize {
        8
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        for i in seg * 12..(seg + 1) * 12 {
            let a = self.base + (i * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

fn main() {
    let htm = HtmConfig {
        l1_sets: 16,
        l1_ways: 4,
        trace_capacity: 64, // <- the debugging knob
        ..HtmConfig::default()
    };
    let rt = TmRuntime::new(htm, TmConfig::default(), 1, 96 * 8);
    let mut exec = PartHtm::new(&rt, 0);
    let mut w = BigWrite { base: rt.app(0) };
    let path = exec.execute(&mut w);

    println!("committed via {path:?}; hardware event trace:\n");
    print!("{}", exec.thread().hw.trace.render());
    println!(
        "\nReading the trace: the first abort is the fast path dying of capacity\n\
         (the whole 96-line write set); the following begin/commit pairs are the\n\
         sub-HTM transactions, each with a small write footprint (12 app lines plus\n\
         signature, undo-log and write-lock metadata)."
    );

    let aborts: Vec<_> = exec
        .thread()
        .hw
        .trace
        .events()
        .filter(|e| matches!(e, part_htm::htm::trace::Event::Abort { .. }))
        .collect();
    assert!(!aborts.is_empty(), "the fast path must have failed at least once");
    for i in 0..96 {
        assert_eq!(rt.verify_read(i * 8), 1);
    }
}
