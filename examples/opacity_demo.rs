//! Opacity, demonstrated: why Part-HTM-O exists (§5.5 of the paper).
//!
//! Two shared words maintain the invariant `x + y == TOTAL`. A writer continuously
//! moves value between them on the *partitioned* path, where updates become visible
//! (locked) between sub-HTM transactions. A reader reads `x` and `y` in **separate
//! segments**, so a torn pair is observable *mid-transaction* by a doomed reader:
//!
//! * Under base **Part-HTM**, the reader may *observe* a torn pair inside a live
//!   transaction (it is aborted before committing — serializability holds, opacity
//!   does not). The demo counts those observations.
//! * Under **Part-HTM-O**, the encounter-time lock check plus timestamp
//!   subscription prevent the inconsistent observation from ever *reaching the
//!   reader's code*.
//!
//! Neither executor ever **commits** a torn pair.
//!
//! ```text
//! cargo run --release --example opacity_demo
//! ```

use part_htm::core::{PartHtm, PartHtmO, TmExecutor, TmRuntime, TxCtx, Workload};
use part_htm::htm::abort::TxResult;
use part_htm::htm::Addr;
use rand::rngs::SmallRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const TOTAL: u64 = 1_000_000;
const X: usize = 0;
const Y: usize = 8;

/// Writer: move a sliding amount from x to y and back, in two segments so the two
/// writes commit in *different* sub-HTM transactions (forced by `skip_fast`).
struct Mover {
    base: Addr,
    step: u64,
}

impl Workload for Mover {
    type Snap = ();
    fn sample(&mut self, _rng: &mut SmallRng) {
        self.step = (self.step % 97) + 1;
    }
    fn segments(&self) -> usize {
        2
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if seg == 0 {
            let x = ctx.read(self.base + X as Addr)?;
            let d = self.step.min(x);
            ctx.write(self.base + X as Addr, x - d)?;
            self.step = d;
        } else {
            let y = ctx.read(self.base + Y as Addr)?;
            ctx.write(self.base + Y as Addr, y + self.step)?;
        }
        Ok(())
    }
}

/// Reader: observe x and y in separate segments and record whether the *live*
/// transaction ever saw a torn pair, and — separately — whether a torn pair ever
/// survived to commit.
struct Observer {
    base: Addr,
    sum: u64,
    torn_seen: &'static AtomicU64,
    committed_torn: &'static AtomicU64,
}

impl Workload for Observer {
    /// The running observation (x after segment 0, x + y after segment 1).
    type Snap = u64;
    fn sample(&mut self, _rng: &mut SmallRng) {}
    fn segments(&self) -> usize {
        2
    }
    fn snapshot(&self) -> u64 {
        self.sum
    }
    fn restore(&mut self, s: u64) {
        self.sum = s;
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if seg == 0 {
            self.sum = ctx.read(self.base + X as Addr)?;
        } else {
            let y = ctx.read(self.base + Y as Addr)?;
            self.sum += y;
            if self.sum != TOTAL {
                // A torn observation inside a live (necessarily doomed) transaction:
                // allowed by serializability, forbidden by opacity.
                self.torn_seen.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }
    fn after_commit(&mut self) {
        if self.sum != TOTAL {
            self.committed_torn.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_demo(opaque: bool) -> (u64, u64) {
    static TORN: AtomicU64 = AtomicU64::new(0);
    static COMMITTED_TORN: AtomicU64 = AtomicU64::new(0);
    TORN.store(0, Ordering::Relaxed);
    COMMITTED_TORN.store(0, Ordering::Relaxed);

    // skip_fast forces the partitioned path, where the anomaly lives.
    let rt = TmRuntime::new(
        part_htm::htm::HtmConfig::default(),
        part_htm::core::TmConfig {
            skip_fast: true,
            ..Default::default()
        },
        2,
        64,
    );
    rt.setup_write(X, TOTAL);
    rt.setup_write(Y, 0);

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let rt = &rt;
        let stop = &stop;
        s.spawn(move || {
            let mut w = Mover {
                base: rt.app(0),
                step: 13,
            };
            if opaque {
                let mut e = PartHtmO::new(rt, 0);
                while !stop.load(Ordering::Relaxed) {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            } else {
                let mut e = PartHtm::new(rt, 0);
                while !stop.load(Ordering::Relaxed) {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            }
        });
        s.spawn(move || {
            let mut w = Observer {
                base: rt.app(0),
                sum: 0,
                torn_seen: &TORN,
                committed_torn: &COMMITTED_TORN,
            };
            if opaque {
                let mut e = PartHtmO::new(rt, 1);
                for _ in 0..30_000 {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            } else {
                let mut e = PartHtm::new(rt, 1);
                for _ in 0..30_000 {
                    w.sample(&mut e.thread_mut().rng);
                    e.execute(&mut w);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    (
        TORN.load(Ordering::Relaxed),
        COMMITTED_TORN.load(Ordering::Relaxed),
    )
}

fn main() {
    let (torn, committed) = run_demo(false);
    println!(
        "Part-HTM   : torn pairs observed by live transactions: {torn:>6}   committed: {committed}"
    );
    assert_eq!(committed, 0, "serializability must hold");

    let (torn_o, committed_o) = run_demo(true);
    println!("Part-HTM-O : torn pairs observed by live transactions: {torn_o:>6}   committed: {committed_o}");
    assert_eq!(
        torn_o, 0,
        "opacity: no live transaction may observe a torn pair"
    );
    assert_eq!(committed_o, 0);

    println!(
        "\nBoth protocols are serializable (0 torn commits). Only Part-HTM-O also\n\
         guarantees opacity: its encounter-time lock checks and timestamp subscription\n\
         kept every live observation consistent."
    );
}
