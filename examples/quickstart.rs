//! Quickstart: define a transactional workload once, run it under Part-HTM (and any
//! competitor) on multiple threads, and inspect which execution path committed each
//! transaction.
//!
//! The scenario is the classic bank transfer: accounts live in the simulated shared
//! heap; each transaction moves money between two random accounts; the invariant is
//! that the total balance never changes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use part_htm::core::{CommitPath, PartHtm, TmExecutor, TmRuntime, TxCtx, Workload};
use part_htm::htm::abort::TxResult;
use part_htm::htm::Addr;
use rand::rngs::SmallRng;
use rand::Rng;

const ACCOUNTS: usize = 64;
const INITIAL: u64 = 1_000;

/// One transfer between two accounts. Accounts sit one cache line apart.
struct Transfer {
    base: Addr,
    from: usize,
    to: usize,
    amount: u64,
}

impl Workload for Transfer {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        self.from = rng.gen_range(0..ACCOUNTS);
        self.to = (self.from + rng.gen_range(1..ACCOUNTS)) % ACCOUNTS;
        self.amount = rng.gen_range(1..50);
    }

    fn segment<C: TxCtx>(&mut self, _seg: usize, ctx: &mut C) -> TxResult<()> {
        let from = self.base + (self.from * 8) as Addr;
        let to = self.base + (self.to * 8) as Addr;
        let f = ctx.read(from)?;
        let t = ctx.read(to)?;
        let amount = self.amount.min(f); // never overdraw
        ctx.write(from, f - amount)?;
        ctx.write(to, t + amount)
    }
}

fn main() {
    // A runtime sized for 64 one-line accounts, 4 worker threads, default
    // (Haswell-like) simulated HTM.
    let rt = TmRuntime::with_defaults(4, ACCOUNTS * 8);
    for i in 0..ACCOUNTS {
        rt.setup_write(i * 8, INITIAL);
    }

    const TXS_PER_THREAD: usize = 5_000;
    std::thread::scope(|s| {
        for t in 0..4 {
            let rt = &rt;
            s.spawn(move || {
                let mut exec = PartHtm::new(rt, t);
                let mut w = Transfer { base: rt.app(0), from: 0, to: 1, amount: 0 };
                for _ in 0..TXS_PER_THREAD {
                    w.sample(&mut exec.thread_mut().rng);
                    exec.execute(&mut w);
                }
                let st = &exec.thread().stats;
                println!(
                    "thread {t}: {} commits  (HTM {:.1}% | partitioned {:.1}% | global-lock {:.1}%)",
                    st.commits_total(),
                    st.commit_pct(CommitPath::Htm),
                    st.commit_pct(CommitPath::SubHtm),
                    st.commit_pct(CommitPath::GlobalLock),
                );
            });
        }
    });

    let total: u64 = (0..ACCOUNTS).map(|i| rt.verify_read(i * 8)).sum();
    println!(
        "total balance: {total} (expected {})",
        ACCOUNTS as u64 * INITIAL
    );
    assert_eq!(
        total,
        ACCOUNTS as u64 * INITIAL,
        "transfers must conserve money"
    );
    println!(
        "OK: serializability held across {} transactions",
        4 * TXS_PER_THREAD
    );
}
