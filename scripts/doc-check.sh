#!/usr/bin/env bash
# Documentation hygiene gate (wired into scripts/tier1.sh):
#
#   1. Every file in docs/ is reachable from docs/INDEX.md (linked directly).
#   2. Every intra-repo markdown link in docs/*.md and README.md resolves
#      ([text](relative/path) — http(s) and #anchors are skipped).
#   3. Every backticked code reference to a repo file resolves: `path/file.rs`,
#      optionally with a `:line` suffix (the line must exist) or a `::item`
#      suffix (stripped). Paths resolve repo-root-relative, doc-relative, or
#      with the `crates/` prefix docs conventionally omit.
#
# Stale references were how the docs drifted before this gate existed (the
# pre-split `AbortCode::Other` taxonomy survived two PRs in DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "doc-check: $1" >&2
  fail=1
}

# --- 1. INDEX.md reachability -------------------------------------------------
for doc in docs/*.md; do
  base="$(basename "$doc")"
  [ "$base" = "INDEX.md" ] && continue
  if ! grep -qE "\(${base}\)" docs/INDEX.md; then
    err "docs/INDEX.md does not link $doc"
  fi
done

# --- 2 + 3. per-file link and code-reference checks ---------------------------
# Resolve a doc-referenced path to a real file: as written (repo-root or
# doc-relative), with the crates/ prefix docs omit for crate-local paths, or
# — for shorthand like `sig.rs` / `htm-sim/registry.rs` — any tracked file
# whose path contains the reference's components in order and ends with its
# basename.
all_files="$(git ls-files)"
resolve() {
  local ref="$1" dir="$2"
  for cand in "$ref" "$dir/$ref" "crates/$ref"; do
    if [ -f "$cand" ]; then
      printf '%s' "$cand"
      return 0
    fi
  done
  local pattern="*${ref//\//*}"
  local f
  while IFS= read -r f; do
    # shellcheck disable=SC2254
    case "$f" in
    $pattern)
      if [ "$(basename "$f")" = "$(basename "$ref")" ]; then
        printf '%s' "$f"
        return 0
      fi
      ;;
    esac
  done <<<"$all_files"
  return 1
}

for doc in docs/*.md README.md; do
  dir="$(dirname "$doc")"

  # Markdown links: [text](target). Skip URLs and pure anchors.
  while IFS= read -r target; do
    case "$target" in
    http://* | https://* | '#'*) continue ;;
    esac
    target="${target%%#*}" # intra-file anchors on a real path
    if ! resolve "$target" "$dir" >/dev/null; then
      err "$doc: broken markdown link ($target)"
    fi
  done < <(grep -oE '\[[^][]+\]\([^()]+\)' "$doc" | sed -E 's/^\[[^][]+\]\(([^()]+)\)$/\1/')

  # Backticked code references: `path/file.ext`, `file.rs:123`, `file.rs::item`.
  while IFS= read -r ref; do
    line=""
    case "$ref" in
    *::*) ref="${ref%%::*}" ;;
    *:*)
      line="${ref##*:}"
      ref="${ref%:*}"
      ;;
    esac
    if ! path="$(resolve "$ref" "$dir")"; then
      err "$doc: code reference to missing file ($ref)"
      continue
    fi
    if [ -n "$line" ] && [ "$line" -gt "$(wc -l <"$path")" ]; then
      err "$doc: $ref:$line past end of file ($(wc -l <"$path") lines)"
    fi
  done < <(grep -oE '`[A-Za-z0-9_][A-Za-z0-9_./-]*\.(rs|sh|md|json|toml)(:[0-9]+|::[A-Za-z0-9_]+)?`' "$doc" | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
  echo "doc-check: FAILED" >&2
  exit 1
fi
echo "doc-check: OK"
