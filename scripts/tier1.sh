#!/usr/bin/env bash
# Tier-1 gate: release build, workspace tests, clippy -D warnings on every
# workspace crate, and rustdoc with warnings denied (broken intra-doc links
# or malformed doc comments fail the gate).
#
# Flags:
#   --smoke  also run the microbenchmarks at reduced iterations (CI sanity),
#            including a ringbench --mode epoch pass
#   --bench  full microbenchmark run: linebench + pathbench + ringbench (the
#            latter in both summary-reset protocols), writing fresh numbers to
#            target/BENCH_{2,3,4}.json and gating against the committed
#            ./BENCH_2.json, ./BENCH_3.json and ./BENCH_4.json (a >10%
#            regression on end-to-end partitioned throughput or sharded mixed
#            publish throughput, or a >2x blow-up of the epoch-mode sharded
#            validation overhead, fails the gate)
#
# Fully offline: all dependencies are workspace-local (see docs/offline.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== tier1: clippy -D warnings (workspace) =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== tier1: cargo doc -D warnings (workspace) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

case "${1:-}" in
--smoke)
    echo "== tier1: linebench --smoke =="
    cargo run -q --release -p tm-harness --bin linebench -- --smoke
    echo "== tier1: pathbench --smoke =="
    cargo run -q --release -p tm-harness --bin pathbench -- --smoke
    echo "== tier1: ringbench --smoke =="
    cargo run -q --release -p tm-harness --bin ringbench -- --smoke
    echo "== tier1: ringbench --smoke --mode epoch =="
    cargo run -q --release -p tm-harness --bin ringbench -- --smoke --mode epoch
    ;;
--bench)
    echo "== tier1: linebench (full) =="
    cargo run -q --release -p tm-harness --bin linebench
    echo "== tier1: pathbench (full, regression gate vs BENCH_2.json) =="
    cargo run -q --release -p tm-harness --bin pathbench -- \
        --json target/BENCH_2.json --baseline BENCH_2.json
    echo "== tier1: ringbench (full, regression gate vs BENCH_3.json) =="
    cargo run -q --release -p tm-harness --bin ringbench -- \
        --json target/BENCH_3.json --baseline BENCH_3.json
    echo "== tier1: ringbench --mode epoch (full, regression gate vs BENCH_4.json) =="
    cargo run -q --release -p tm-harness --bin ringbench -- --mode epoch \
        --json target/BENCH_4.json --baseline BENCH_4.json
    echo "   fresh numbers in target/BENCH_{2,3,4}.json; copy over the" \
         "matching ./BENCH_N.json to rebaseline"
    ;;
esac

echo "== tier1: OK =="
