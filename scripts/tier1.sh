#!/usr/bin/env bash
# Tier-1 gate: release build, workspace tests, clippy -D warnings on every
# workspace crate.
#
# Flags:
#   --smoke  also run both microbenchmarks at reduced iterations (CI sanity)
#   --bench  full microbenchmark run: linebench + pathbench, writing fresh
#            numbers to target/BENCH_2.json and gating the end-to-end
#            partitioned throughput against the committed ./BENCH_2.json
#            (a >10% regression fails the gate)
#
# Fully offline: all dependencies are workspace-local (see docs/offline.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== tier1: clippy -D warnings (workspace) =="
cargo clippy -q --workspace --all-targets -- -D warnings

case "${1:-}" in
--smoke)
    echo "== tier1: linebench --smoke =="
    cargo run -q --release -p tm-harness --bin linebench -- --smoke
    echo "== tier1: pathbench --smoke =="
    cargo run -q --release -p tm-harness --bin pathbench -- --smoke
    ;;
--bench)
    echo "== tier1: linebench (full) =="
    cargo run -q --release -p tm-harness --bin linebench
    echo "== tier1: pathbench (full, regression gate vs BENCH_2.json) =="
    cargo run -q --release -p tm-harness --bin pathbench -- \
        --json target/BENCH_2.json --baseline BENCH_2.json
    echo "   fresh numbers in target/BENCH_2.json; copy over ./BENCH_2.json to rebaseline"
    ;;
esac

echo "== tier1: OK =="
