#!/usr/bin/env bash
# Tier-1 gate: release build, workspace tests, clippy -D warnings on every
# workspace crate, rustdoc with warnings denied (broken intra-doc links
# or malformed doc comments fail the gate), documentation hygiene
# (scripts/doc-check.sh: docs/ reachable from docs/INDEX.md, intra-repo
# links and code references resolve), and a bounded deterministic
# schedule-exploration pass (schedx --bounded) over the virtual-clock
# scenarios.
#
# Flags:
#   --smoke  also run the microbenchmarks at reduced iterations (CI sanity),
#            including a ringbench --mode epoch pass, a membench pass, a
#            partbench pass, a backendbench pass, a serverbench pass and a
#            seeded schedx soak over the CI scenarios
#   --bench  full microbenchmark run: linebench + pathbench + ringbench (the
#            latter in both summary-reset protocols) + membench + partbench +
#            backendbench + serverbench, writing fresh numbers to
#            target/BENCH_{2,3,4,5,6,7,8}.json and gating against the
#            committed ./BENCH_{2,3,4,5,6,7,8}.json (a >10% regression on
#            end-to-end partitioned throughput or sharded mixed publish
#            throughput, a >2x blow-up of the epoch-mode sharded validation
#            overhead, a >2x slow-down of the unrolled intersect kernel,
#            padding turning measurably costly, the adaptive planner falling
#            below 1.2x static-single-segment on the capacity-heavy row, more
#            than 8% behind hand-tuned static on the hint-optimal row, a >10%
#            regression of the POWER split/stretch ablation rows, POWER
#            capacity stretching falling below 1.5x splitting, server group
#            commit falling below 1.3x unbatched or regressing >10%, the
#            admission controller's overload goodput falling below 0.8x
#            saturation or behind the no-controller baseline, or the overload
#            p999 blowing past 3x its committed baseline, fails the gate)
#
# Fully offline: all dependencies are workspace-local (see docs/offline.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== tier1: clippy -D warnings (workspace) =="
cargo clippy -q --workspace --all-targets -- -D warnings

echo "== tier1: cargo doc -D warnings (workspace) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "== tier1: doc-check (docs/ reachability + reference resolution) =="
./scripts/doc-check.sh

echo "== tier1: schedx --bounded (deterministic schedule exploration) =="
# Bounded-depth exploration of the CI scenarios under the virtual clock, with
# explicit resource limits: 120 s wall time and a 4 GiB address-space cap (the
# run needs a few seconds and well under 1 GiB; the limits are a backstop
# against an exploration-loop regression, not a tuning knob). On a violation
# the binary writes a replay artifact to target/schedx/ and prints the
# `--replay` command line; see docs/virtual-time.md.
( ulimit -v 4194304; timeout 120 ./target/release/schedx --bounded )

case "${1:-}" in
--smoke)
    echo "== tier1: linebench --smoke =="
    cargo run -q --release -p tm-bench --bin linebench -- --smoke
    echo "== tier1: pathbench --smoke =="
    cargo run -q --release -p tm-bench --bin pathbench -- --smoke
    echo "== tier1: ringbench --smoke =="
    cargo run -q --release -p tm-bench --bin ringbench -- --smoke
    echo "== tier1: ringbench --smoke --mode epoch =="
    cargo run -q --release -p tm-bench --bin ringbench -- --smoke --mode epoch
    echo "== tier1: membench --smoke =="
    cargo run -q --release -p tm-bench --bin membench -- --smoke
    echo "== tier1: partbench --smoke =="
    cargo run -q --release -p tm-bench --bin partbench -- --smoke
    echo "== tier1: backendbench --smoke =="
    cargo run -q --release -p tm-bench --bin backendbench -- --smoke
    echo "== tier1: serverbench --smoke =="
    cargo run -q --release -p tm-bench --bin serverbench -- --smoke
    echo "== tier1: schedx --seeds soak (seeded schedule sampling) =="
    # Complements the bounded-exhaustive gate above: 32 seeded schedules per
    # CI scenario reach interleavings past the exhaustive depth horizon.
    for s in counter2 planner ring-epoch power-stretch server-batch; do
        ( ulimit -v 4194304; timeout 120 ./target/release/schedx \
            --scenario "$s" --seeds 32 )
    done
    ;;
--bench)
    echo "== tier1: linebench (full) =="
    cargo run -q --release -p tm-bench --bin linebench
    echo "== tier1: pathbench (full, regression gate vs BENCH_2.json) =="
    # --shards 1 matches the committed baseline's convention (see
    # EXPERIMENTS.md): the gate tracks the single-ring partitioned path, not
    # the sharding delta, which flips sign with the host's core count.
    cargo run -q --release -p tm-bench --bin pathbench -- --shards 1 \
        --json target/BENCH_2.json --baseline BENCH_2.json
    echo "== tier1: ringbench (full, regression gate vs BENCH_3.json) =="
    cargo run -q --release -p tm-bench --bin ringbench -- \
        --json target/BENCH_3.json --baseline BENCH_3.json
    echo "== tier1: ringbench --mode epoch (full, regression gate vs BENCH_4.json) =="
    cargo run -q --release -p tm-bench --bin ringbench -- --mode epoch \
        --json target/BENCH_4.json --baseline BENCH_4.json
    echo "== tier1: membench (full, regression gate vs BENCH_5.json) =="
    cargo run -q --release -p tm-bench --bin membench -- \
        --json target/BENCH_5.json --baseline BENCH_5.json
    echo "== tier1: partbench (full, regression gate vs BENCH_6.json) =="
    cargo run -q --release -p tm-bench --bin partbench -- \
        --json target/BENCH_6.json --baseline BENCH_6.json
    echo "== tier1: backendbench (full, regression gate vs BENCH_7.json) =="
    cargo run -q --release -p tm-bench --bin backendbench -- \
        --json target/BENCH_7.json --baseline BENCH_7.json
    echo "== tier1: serverbench (full, regression gate vs BENCH_8.json) =="
    cargo run -q --release -p tm-bench --bin serverbench -- \
        --json target/BENCH_8.json --baseline BENCH_8.json
    echo "   fresh numbers in target/BENCH_{2,3,4,5,6,7,8}.json; copy over the" \
         "matching ./BENCH_N.json to rebaseline"
    ;;
esac

echo "== tier1: OK =="
