#!/usr/bin/env bash
# Tier-1 gate: release build, workspace tests, clippy on the simulator core.
# Add --smoke to also run the conflict-table microbenchmark (reduced iterations).
#
# Fully offline: all dependencies are workspace-local (see docs/offline.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release

echo "== tier1: cargo test -q (workspace) =="
cargo test -q --workspace

echo "== tier1: clippy -D warnings (htm-sim) =="
cargo clippy -q -p htm-sim --all-targets -- -D warnings

if [[ "${1:-}" == "--smoke" ]]; then
    echo "== tier1: linebench --smoke =="
    cargo run -q --release -p tm-harness --bin linebench -- --smoke
fi

echo "== tier1: OK =="
