//! Multi-threaded run driver: execute a fixed number of transactions per thread
//! under one executor and merge the statistics.

use htm_sim::vclock::{SchedSpec, VClock, VReport};
use htm_sim::HtmStats;
use part_htm_core::{TmExecutor, TmRuntime, TmStats, Workload};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// The outcome of one (algorithm, thread-count) cell.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Algorithm display name.
    pub algo: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock time of the measured region.
    pub elapsed: Duration,
    /// Committed transactions (all threads).
    pub commits: u64,
    /// Virtual-time makespan in work units (0 outside virtual-time mode): the
    /// maximum final core timestamp of the run's [`VClock`].
    pub makespan: u64,
    /// Merged protocol statistics.
    pub tm: TmStats,
    /// Merged hardware statistics.
    pub hw: HtmStats,
}

impl RunResult {
    /// Transactions per second (wall clock; meaningless for virtual runs).
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Virtual throughput: commits per million simulated work units. The
    /// virtual-time analogue of tx/s — deterministic, host-independent, and
    /// comparable across simulated core counts (the makespan is the slowest
    /// core's finish time, so contention and serialisation show up here
    /// exactly as they would in wall-clock time on real hardware).
    pub fn virtual_throughput(&self) -> f64 {
        self.commits as f64 * 1e6 / (self.makespan.max(1) as f64)
    }
}

/// Run `ops_per_thread` transactions on each of `threads` threads under executor
/// `E`. `factory(thread_id)` builds each thread's workload; sampling uses the
/// executor thread's deterministic RNG.
pub fn run_threads<'r, E, W, F>(
    rt: &'r TmRuntime,
    threads: usize,
    ops_per_thread: usize,
    factory: F,
) -> RunResult
where
    E: TmExecutor<'r>,
    W: Workload + Send,
    F: Fn(usize) -> W + Sync,
{
    assert!(threads <= rt.threads());
    let barrier = Barrier::new(threads);
    let mut tm = TmStats::default();
    let mut hw = HtmStats::default();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let barrier = &barrier;
                let factory = &factory;
                s.spawn(move || {
                    let mut exec = E::new(rt, t);
                    let mut w = factory(t);
                    barrier.wait();
                    // Each worker times its own measured region; the cell's elapsed
                    // time is the slowest worker's, excluding spawn/join overhead
                    // (which would otherwise distort very fast cells).
                    let t0 = Instant::now();
                    for _ in 0..ops_per_thread {
                        w.sample(&mut exec.thread_mut().rng);
                        exec.execute(&mut w);
                    }
                    let loop_elapsed = t0.elapsed();
                    // Drain host-side counters (arena reuse, scalar-kernel
                    // falls) into this thread's stats before collection.
                    exec.thread_mut().harvest_host_counters();
                    let th = exec.thread();
                    (th.stats.clone(), th.hw.stats.clone(), loop_elapsed)
                })
            })
            .collect();
        for h in handles {
            let (t_tm, t_hw, t_elapsed) = h.join().expect("worker panicked");
            tm.merge(&t_tm);
            hw.merge(&t_hw);
            elapsed = elapsed.max(t_elapsed);
        }
    });

    RunResult {
        algo: E::NAME,
        threads,
        elapsed,
        commits: tm.commits_total(),
        makespan: 0,
        tm,
        hw,
    }
}

/// [`run_threads`], but under a discrete-event virtual clock: worker `t` is
/// simulated core `t`, all scheduling (conflict order, commit order, timer
/// aborts, injected interrupts) is driven by virtual timestamps, and the run
/// is bit-reproducible from `spec` alone. Returns the merged statistics plus
/// the schedule report (decision trace + commit log + makespan).
///
/// The wall-clock `elapsed` field is still populated but measures host
/// simulation overhead, not performance; use
/// [`RunResult::virtual_throughput`] for comparisons.
pub fn run_threads_virtual<'r, E, W, F>(
    rt: &'r TmRuntime,
    threads: usize,
    ops_per_thread: usize,
    spec: SchedSpec,
    factory: F,
) -> (RunResult, VReport)
where
    E: TmExecutor<'r>,
    W: Workload + Send,
    F: Fn(usize) -> W + Sync,
{
    assert!(threads <= rt.threads());
    let clock = VClock::new(threads, spec);
    let mut tm = TmStats::default();
    let mut hw = HtmStats::default();
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = &clock;
                let factory = &factory;
                s.spawn(move || {
                    let mut exec = E::new(rt, t);
                    let mut w = factory(t);
                    // `attach` doubles as the start barrier: it blocks until
                    // every core arrived and this core holds the floor.
                    let guard = clock.attach(t);
                    let t0 = Instant::now();
                    for _ in 0..ops_per_thread {
                        w.sample(&mut exec.thread_mut().rng);
                        exec.execute(&mut w);
                    }
                    let loop_elapsed = t0.elapsed();
                    drop(guard);
                    exec.thread_mut().harvest_host_counters();
                    let th = exec.thread();
                    (th.stats.clone(), th.hw.stats.clone(), loop_elapsed)
                })
            })
            .collect();
        for h in handles {
            let (t_tm, t_hw, t_elapsed) = h.join().expect("worker panicked");
            tm.merge(&t_tm);
            hw.merge(&t_hw);
            elapsed = elapsed.max(t_elapsed);
        }
    });

    let report = clock.report();
    (
        RunResult {
            algo: E::NAME,
            threads,
            elapsed,
            commits: tm.commits_total(),
            makespan: report.makespan,
            tm,
            hw,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use htm_sim::Addr;
    use part_htm_core::{PartHtm, TxCtx};
    use rand::rngs::SmallRng;

    struct Inc(Addr);
    impl Workload for Inc {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let v = ctx.read(self.0)?;
            ctx.write(self.0, v + 1)
        }
    }

    #[test]
    fn counts_all_commits() {
        let rt = TmRuntime::with_defaults(4, 64);
        let r = run_threads::<PartHtm, _, _>(&rt, 4, 50, |_t| Inc(rt.app(0)));
        assert_eq!(r.commits, 200);
        assert_eq!(rt.verify_read(0), 200);
        assert_eq!(r.algo, "Part-HTM");
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn virtual_mode_conserves_and_reproduces() {
        let mk = || {
            let rt = TmRuntime::with_defaults(2, 64);
            let (r, rep) = run_threads_virtual::<PartHtm, _, _>(
                &rt,
                2,
                20,
                SchedSpec::default(),
                |_t| Inc(rt.app(0)),
            );
            assert_eq!(rt.verify_read(0), 40, "no lost increments");
            assert_eq!(r.commits, 40);
            assert!(r.makespan > 0, "virtual time must advance");
            assert!(r.virtual_throughput() > 0.0);
            (r.makespan, rep.trace_text(), r.hw, r.tm.commits_total())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same spec must reproduce the run exactly");
    }
}
