//! `schedx` — CLI for the deterministic schedule explorer.
//!
//! ```text
//! schedx --list                         # scenarios
//! schedx --bounded                      # the CI gate: bounded-exhaustive all
//! schedx --scenario counter2 --depth 4  # explore one scenario deeper
//! schedx --scenario counter2 --seeds 50 # seeded schedule sampling
//! schedx --replay target/schedx/FILE    # re-run a captured failing schedule
//! ```
//!
//! `--bounded` is the tier-1 gate: it explores every CI scenario to the
//! default bounds, runs each twice to prove byte-identical determinism, and
//! on any invariant violation writes a replay artifact under `target/schedx/`
//! and exits non-zero with replay instructions.

use htm_sim::vclock::SchedSpec;
use std::path::PathBuf;
use std::process::ExitCode;
use tm_harness::schedx::{
    artifact_text, explore, parse_artifact, run_scenario, sample, Bounds, Violation, BOUNDED_SET,
    SCENARIOS,
};

struct Args {
    bounded: bool,
    list: bool,
    scenario: Option<String>,
    depth: usize,
    max_schedules: usize,
    seed: u64,
    seeds: Option<usize>,
    replay: Option<PathBuf>,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        bounded: false,
        list: false,
        scenario: None,
        depth: Bounds::default().depth,
        max_schedules: Bounds::default().max_schedules,
        seed: 0,
        seeds: None,
        replay: None,
        out_dir: PathBuf::from("target/schedx"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--bounded" => a.bounded = true,
            "--list" => a.list = true,
            "--scenario" => a.scenario = Some(val("--scenario")?),
            "--depth" => a.depth = val("--depth")?.parse().map_err(|e| format!("--depth: {e}"))?,
            "--max" => {
                a.max_schedules = val("--max")?.parse().map_err(|e| format!("--max: {e}"))?
            }
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--seeds" => {
                a.seeds = Some(val("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?)
            }
            "--replay" => a.replay = Some(PathBuf::from(val("--replay")?)),
            "--out" => a.out_dir = PathBuf::from(val("--out")?),
            "--help" | "-h" => {
                println!(
                    "schedx: deterministic schedule explorer\n\
                     --list | --bounded | --scenario NAME [--depth K] [--max N] \
                     [--seed S] [--seeds N] | --replay FILE [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(a)
}

/// Write the artifact, print replay instructions, return the failure exit.
fn report_violation(v: &Violation, out_dir: &PathBuf) -> ExitCode {
    let prefix: Vec<String> = v.spec.forced.iter().map(|c| c.to_string()).collect();
    let file = out_dir.join(format!(
        "{}-s{}-p{}.schedx",
        v.scenario,
        v.spec.seed,
        if prefix.is_empty() {
            "none".to_string()
        } else {
            prefix.join("_")
        }
    ));
    let text = artifact_text(v);
    if let Err(e) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(&file, &text))
    {
        eprintln!("schedx: FAILED to write artifact {}: {e}", file.display());
        eprintln!("--- artifact ---\n{text}----------------");
    } else {
        eprintln!("schedx: replay artifact written to {}", file.display());
    }
    eprintln!(
        "schedx: INVARIANT VIOLATION in scenario '{}':\n  {}\n\
         To re-run this exact interleaving:\n  \
         cargo run --release -p tm-harness --bin schedx -- --replay {}",
        v.scenario,
        v.message,
        file.display()
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("schedx: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for &(name, cores, desc) in SCENARIOS {
            println!("{name:14} ({cores} cores)  {desc}");
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("schedx: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let v = match parse_artifact(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("schedx: bad artifact: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "schedx: replaying scenario '{}' (seed {}, prefix {:?})",
            v.scenario, v.spec.seed, v.spec.forced
        );
        return match run_scenario(&v.scenario, &v.spec) {
            Err(msg) if msg == v.message => {
                println!("schedx: reproduced the recorded failure:\n  {msg}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!(
                    "schedx: failed, but DIFFERENTLY than recorded:\n  recorded: {}\n  now:      {msg}",
                    v.message
                );
                ExitCode::FAILURE
            }
            Ok(_) => {
                eprintln!("schedx: the recorded schedule now PASSES (fixed, or drifted)");
                ExitCode::FAILURE
            }
        };
    }

    let bounds = Bounds {
        depth: args.depth,
        max_schedules: args.max_schedules,
    };

    if args.bounded {
        // The CI gate: bounded-exhaustive exploration + a byte-exact
        // determinism self-check, over every scenario in the CI set.
        for name in BOUNDED_SET {
            let spec = SchedSpec {
                seed: args.seed,
                ..SchedSpec::default()
            };
            let a = run_scenario(name, &spec);
            let b = run_scenario(name, &spec);
            match (&a, &b) {
                (Ok((_, da)), Ok((_, db))) if da == db => {}
                (Ok(_), Ok(_)) => {
                    eprintln!("schedx: NONDETERMINISM in '{name}': identical specs, different digests");
                    return ExitCode::FAILURE;
                }
                (Err(m), _) | (_, Err(m)) => {
                    return report_violation(
                        &Violation {
                            scenario: name.to_string(),
                            spec,
                            message: m.clone(),
                        },
                        &args.out_dir,
                    );
                }
            }
            let out = explore(name, args.seed, bounds);
            if let Some(v) = &out.violation {
                return report_violation(v, &args.out_dir);
            }
            println!(
                "schedx: {name:12} OK — {} schedules explored to depth {}{}",
                out.explored,
                bounds.depth,
                if out.truncated {
                    " (TRUNCATED at --max)"
                } else {
                    ""
                }
            );
        }
        println!("schedx: bounded gate passed");
        return ExitCode::SUCCESS;
    }

    let Some(scenario) = &args.scenario else {
        eprintln!("schedx: need --bounded, --list, --replay or --scenario (try --help)");
        return ExitCode::FAILURE;
    };
    let out = if let Some(n) = args.seeds {
        println!("schedx: sampling {n} seeded schedules of '{scenario}'");
        sample(scenario, args.seed, n)
    } else {
        println!(
            "schedx: exploring '{scenario}' to depth {} (max {} schedules)",
            bounds.depth, bounds.max_schedules
        );
        explore(scenario, args.seed, bounds)
    };
    if let Some(v) = &out.violation {
        return report_violation(v, &args.out_dir);
    }
    println!(
        "schedx: {} schedules, no violations{}",
        out.explored,
        if out.truncated {
            " (TRUNCATED at --max: coverage is partial)"
        } else {
            ""
        }
    );
    ExitCode::SUCCESS
}
