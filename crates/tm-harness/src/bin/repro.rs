//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--threads 1,2,4,8] [--scale 0.5] [--algos part-htm,htm-gl]
//!       [--csv DIR] [--stats] [--reps N] [--adaptive on|off] [--backend tsx|power|limited]
//! ```
//!
//! `--adaptive off` pins the static per-declared-segment plan (the paper's
//! hand-tuned hints); `--adaptive on` forces the abort-profiled planner. The
//! default keeps `TmConfig::default()` (adaptive).
//!
//! `--backend` routes every cell through an explicit HTM capacity model (see
//! docs/backends.md): `tsx` is the differential twin of the default path,
//! `power` models a 64-entry write set with suspend/resume, `limited` a
//! FORTH-style small-set machine with software spill. Omitting the flag keeps
//! the legacy inline path that the recorded figures were produced with.
//!
//! `--csv DIR` additionally writes one `DIR/<experiment>.csv` per figure, ready for
//! plotting.
//!
//! Experiments: table1, fig3a, fig3b, fig3c, fig4a, fig4b, fig5a..fig5i, fig6a,
//! fig6b. See EXPERIMENTS.md for the recorded paper-vs-measured comparison.

use htm_sim::BackendKind;
use tm_harness::algo::Algo;
use tm_harness::experiments::{run_experiment_table, ExpOpts, ALL_IDS};

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--threads 1,2,4] [--scale F] [--algos a,b,c] [--csv DIR] [--stats] [--reps N] [--adaptive on|off] [--backend tsx|power|limited]\n\
         experiments: {}",
        ALL_IDS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let target = args[0].clone();
    let mut opts = ExpOpts::default();
    let mut csv_dir: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                opts.threads = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--algos" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                opts.algos = Some(
                    list.split(',')
                        .map(|s| Algo::parse(s.trim()).unwrap_or_else(|| usage()))
                        .collect(),
                );
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--stats" => {
                opts.stats = true;
            }
            "--reps" => {
                i += 1;
                opts.reps = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--adaptive" => {
                i += 1;
                opts.adaptive = match args.get(i).map(String::as_str) {
                    Some("on") => Some(true),
                    Some("off") => Some(false),
                    _ => usage(),
                };
            }
            "--backend" => {
                i += 1;
                let kind = args
                    .get(i)
                    .and_then(|s| BackendKind::parse(s.trim()))
                    .unwrap_or_else(|| usage());
                opts.backend = Some(kind);
            }
            _ => usage(),
        }
        i += 1;
    }

    let ids: Vec<&str> = if target == "all" {
        ALL_IDS.to_vec()
    } else if ALL_IDS.contains(&target.as_str()) {
        vec![target.as_str()]
    } else {
        usage();
    };

    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("cannot create --csv directory");
    }
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment_table(id, &opts) {
            Some((out, table)) => {
                println!("{out}");
                eprintln!("[{id} took {:.1?}]", started.elapsed());
                if let (Some(dir), Some(t)) = (&csv_dir, table) {
                    let path = format!("{dir}/{id}.csv");
                    std::fs::write(&path, t.to_csv()).expect("cannot write CSV");
                    eprintln!("[wrote {path}]");
                }
            }
            None => eprintln!("unknown experiment {id}"),
        }
    }
}
