//! Developer microprofiler: per-component timings of the simulator and the
//! protocols, used to keep the simulated cost model honest (HTM accesses must be
//! cheaper than STM instrumented accesses). Not part of the reproduction surface.

use part_htm_core::api::spin_work;
use part_htm_core::{PartHtm, TmConfig, TmExecutor, TmRuntime, Workload};
use std::time::Instant;
use tm_baselines::NOrec;
use tm_workloads::micro::{self, NrmwParams};

fn time(label: &str, iters: u64, mut f: impl FnMut()) {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let e = t0.elapsed();
    println!(
        "{label:<40} {:>10.1} ns/iter",
        e.as_nanos() as f64 / iters as f64
    );
}

fn main() {
    // Raw spin cost.
    time("spin_work(600)", 10_000, || spin_work(600));
    time("spin_work(32)", 100_000, || spin_work(32));
    time("spin_work(16)", 100_000, || spin_work(16));

    // Simulator primitive costs.
    let rt = TmRuntime::with_defaults(1, 4096);
    let mut th = part_htm_core::TmThread::new(&rt, 0);
    time("nt_read", 1_000_000, || {
        std::hint::black_box(th.hw.nt_read(rt.app(0)));
    });
    time("nt_write", 1_000_000, || th.hw.nt_write(rt.app(8), 1));
    // Per-op read cost inside a big transaction (register + load + bookkeeping).
    time("htm tx 160 reads (per tx)", 20_000, || {
        th.hw
            .attempt(|tx| {
                let mut acc = 0u64;
                for k in 0..160u32 {
                    acc = acc.wrapping_add(tx.read((k % 500) * 8)?);
                }
                std::hint::black_box(acc);
                Ok(())
            })
            .unwrap();
    });

    let mut i = 0u64;
    time("htm tx: begin+10r+10w+commit", 100_000, || {
        i += 1;
        th.hw
            .attempt(|tx| {
                for k in 0..10u32 {
                    let a = rt.app((k * 8) as usize);
                    let v = tx.read(a)?;
                    tx.write(a + 256, v + i)?;
                }
                Ok(())
            })
            .unwrap();
    });

    // fig3c single transaction under Part-HTM vs NOrec.
    let p = NrmwParams {
        array_len: 2000,
        ..NrmwParams::fig3c()
    };
    let htm = htm_sim::HtmConfig {
        quantum: 40_000,
        ..htm_sim::HtmConfig::default()
    };
    let rt2 = TmRuntime::new(htm, TmConfig::default(), 1, p.app_words());
    let shared = micro::init(&rt2, &p);
    let mut rng = rand::SeedableRng::seed_from_u64(1);

    let mut e = PartHtm::new(&rt2, 0);
    let mut w = micro::Nrmw::new(shared, 0, 1);
    time("fig3c tx Part-HTM", 300, || {
        w.sample(&mut rng);
        e.execute(&mut w);
    });
    let st = &e.thread().stats;
    println!(
        "  commits htm/sub/gl = {}/{}/{}  sub_aborts={} global_aborts={}",
        st.commits_htm, st.commits_subhtm, st.commits_gl, st.sub_aborts, st.global_aborts
    );
    let hw = &e.thread().hw.stats;
    println!(
        "  hw begins={} commits={} conflict={} capacity={} explicit={} other={}",
        hw.begins,
        hw.commits,
        hw.aborts_conflict,
        hw.aborts_capacity,
        hw.aborts_explicit,
        hw.aborts_other()
    );

    // Kmeans cell: sequential vs HTM-GL (calibration of the speed-up denominator).
    {
        use tm_baselines::{HtmGl, Sequential};
        use tm_workloads::stamp::kmeans;
        let p = kmeans::KmeansParams::low_contention();
        let rt3 = TmRuntime::with_defaults(1, p.app_words());
        let sh = kmeans::init(&rt3, &p);
        let mut seq = Sequential::new(&rt3, 0);
        let mut wk = kmeans::Kmeans::new(sh);
        time("kmeans tx sequential", 3000, || {
            wk.sample(&mut seq.thread_mut().rng);
            seq.execute(&mut wk);
        });
        let mut gl = HtmGl::new(&rt3, 0);
        let mut wk2 = kmeans::Kmeans::new(sh);
        time("kmeans tx HTM-GL", 3000, || {
            wk2.sample(&mut gl.thread_mut().rng);
            gl.execute(&mut wk2);
        });
    }

    let mut e2 = NOrec::new(&rt2, 0);
    let mut w2 = micro::Nrmw::new(shared, 0, 1);
    time("fig3c tx NOrec", 300, || {
        w2.sample(&mut rng);
        e2.execute(&mut w2);
    });
}
