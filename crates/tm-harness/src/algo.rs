//! The competitor set of the evaluation and the per-cell dispatcher.

use crate::driver::{run_threads, RunResult};
use htm_sim::HtmConfig;
use part_htm_core::{PartHtm, PartHtmO, TmConfig, TmRuntime, Workload};
use tm_baselines::{Hle, HtmGl, NOrec, NOrecRh, RingStm, Sequential, SpHt};

/// A transactional-memory algorithm under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// RingSTM (STM baseline).
    RingStm,
    /// NOrec (STM baseline).
    NOrec,
    /// Reduced-Hardware NOrec (hybrid baseline).
    NOrecRh,
    /// HTM with global-lock fallback (hardware baseline).
    HtmGl,
    /// Part-HTM (this paper).
    PartHtm,
    /// Part-HTM-O (this paper, opaque).
    PartHtmO,
    /// Part-HTM without the fast path (Fig. 3(b)'s extra series).
    PartHtmNoFast,
    /// Uninstrumented sequential execution (speed-up denominator).
    Sequential,
    /// SpHT (Lev & Maessen): lazy transaction splitting — the §3 comparison point,
    /// available for ablations (not part of the paper's figure legends).
    SpHt,
    /// HLE-style lock elision (§2): one speculative attempt, then the lock.
    Hle,
}

impl Algo {
    /// The competitor set every figure plots (the paper's legend order).
    pub const COMPETITORS: [Algo; 6] = [
        Algo::RingStm,
        Algo::NOrec,
        Algo::NOrecRh,
        Algo::HtmGl,
        Algo::PartHtm,
        Algo::PartHtmO,
    ];

    /// Display name (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            Algo::RingStm => "RingSTM",
            Algo::NOrec => "NOrec",
            Algo::NOrecRh => "NOrecRH",
            Algo::HtmGl => "HTM-GL",
            Algo::PartHtm => "Part-HTM",
            Algo::PartHtmO => "Part-HTM-O",
            Algo::PartHtmNoFast => "Part-HTM-no-fast",
            Algo::Sequential => "Sequential",
            Algo::SpHt => "SpHT",
            Algo::Hle => "HLE",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Algo> {
        let s = s.to_ascii_lowercase();
        Some(match s.as_str() {
            "ringstm" => Algo::RingStm,
            "norec" => Algo::NOrec,
            "norecrh" => Algo::NOrecRh,
            "htm-gl" | "htmgl" => Algo::HtmGl,
            "part-htm" | "parthtm" => Algo::PartHtm,
            "part-htm-o" | "parthtmo" => Algo::PartHtmO,
            "part-htm-no-fast" | "nofast" => Algo::PartHtmNoFast,
            "sequential" | "seq" => Algo::Sequential,
            "spht" => Algo::SpHt,
            "hle" => Algo::Hle,
            _ => return None,
        })
    }
}

/// Run one experiment cell: build a fresh runtime (fresh heap, fresh metadata),
/// initialise the workload's shared state, and drive `threads x ops_per_thread`
/// transactions under `algo`.
///
/// `init` populates the heap and returns a `Copy` shared-layout handle;
/// `make(shared, thread_id)` builds each thread's workload.
#[allow(clippy::too_many_arguments)]
pub fn run_cell<S, W, I, M>(
    algo: Algo,
    threads: usize,
    ops_per_thread: usize,
    htm: HtmConfig,
    tm: TmConfig,
    app_words: usize,
    init: I,
    make: M,
) -> RunResult
where
    S: Copy + Send + Sync,
    W: Workload + Send,
    I: FnOnce(&TmRuntime) -> S,
    M: Fn(S, usize) -> W + Sync,
{
    run_cell_with(
        algo,
        threads,
        ops_per_thread,
        htm,
        tm,
        app_words,
        init,
        make,
        |_, _| (),
    )
    .0
}

/// [`run_cell`] plus a post-run hook that still sees the runtime and the shared
/// layout — for invariant verification after the measured region (e.g. conserved
/// sums), since the runtime is dropped when the cell finishes.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_with<S, W, I, M, F, R>(
    algo: Algo,
    threads: usize,
    ops_per_thread: usize,
    htm: HtmConfig,
    tm: TmConfig,
    app_words: usize,
    init: I,
    make: M,
    finish: F,
) -> (RunResult, R)
where
    S: Copy + Send + Sync,
    W: Workload + Send,
    I: FnOnce(&TmRuntime) -> S,
    M: Fn(S, usize) -> W + Sync,
    F: FnOnce(&TmRuntime, S) -> R,
{
    let tm = TmConfig {
        skip_fast: tm.skip_fast || algo == Algo::PartHtmNoFast,
        ..tm
    };
    let rt = TmRuntime::new(htm, tm, threads, app_words);
    let shared = init(&rt);
    let factory = |t: usize| make(shared, t);
    let result = match algo {
        Algo::RingStm => run_threads::<RingStm, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::NOrec => run_threads::<NOrec, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::NOrecRh => run_threads::<NOrecRh, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::HtmGl => run_threads::<HtmGl, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::PartHtm | Algo::PartHtmNoFast => {
            let mut r = run_threads::<PartHtm, _, _>(&rt, threads, ops_per_thread, factory);
            r.algo = algo.name();
            r
        }
        Algo::PartHtmO => run_threads::<PartHtmO, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::Sequential => {
            assert_eq!(threads, 1, "Sequential is only meaningful single-threaded");
            run_threads::<Sequential, _, _>(&rt, 1, ops_per_thread, factory)
        }
        Algo::SpHt => run_threads::<SpHt, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::Hle => run_threads::<Hle, _, _>(&rt, threads, ops_per_thread, factory),
    };
    let out = finish(&rt, shared);
    (result, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use htm_sim::Addr;
    use part_htm_core::TxCtx;
    use rand::rngs::SmallRng;

    #[derive(Clone, Copy)]
    struct Shared(Addr);

    struct Inc(Addr);
    impl Workload for Inc {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let v = ctx.read(self.0)?;
            ctx.write(self.0, v + 1)
        }
    }

    #[test]
    fn every_algo_commits_the_same_total() {
        for algo in Algo::COMPETITORS {
            let r = run_cell(
                algo,
                2,
                25,
                HtmConfig::default(),
                TmConfig::default(),
                64,
                |rt| Shared(rt.app(0)),
                |s, _t| Inc(s.0),
            );
            assert_eq!(r.commits, 50, "{}", algo.name());
        }
    }

    #[test]
    fn no_fast_variant_renamed() {
        let r = run_cell(
            Algo::PartHtmNoFast,
            1,
            5,
            HtmConfig::default(),
            TmConfig::default(),
            64,
            |rt| Shared(rt.app(0)),
            |s, _t| Inc(s.0),
        );
        assert_eq!(r.algo, "Part-HTM-no-fast");
        assert_eq!(
            r.tm.commits_subhtm, 5,
            "no-fast must commit on the partitioned path"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for a in Algo::COMPETITORS {
            assert_eq!(Algo::parse(a.name()), Some(a));
        }
        assert_eq!(Algo::parse("nope"), None);
    }
}
