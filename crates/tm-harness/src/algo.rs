//! The competitor set of the evaluation and the per-cell dispatcher.

use crate::driver::{run_threads, run_threads_virtual, RunResult};
use htm_sim::vclock::{SchedSpec, VReport};
use htm_sim::HtmConfig;
use part_htm_core::{PartHtm, PartHtmO, StretchHtm, TmConfig, TmRuntime, Workload};
use tm_baselines::{Hle, HtmGl, NOrec, NOrecRh, RingStm, Sequential, SpHt};

/// A transactional-memory algorithm under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// RingSTM (STM baseline).
    RingStm,
    /// NOrec (STM baseline).
    NOrec,
    /// Reduced-Hardware NOrec (hybrid baseline).
    NOrecRh,
    /// HTM with global-lock fallback (hardware baseline).
    HtmGl,
    /// Part-HTM (this paper).
    PartHtm,
    /// Part-HTM-O (this paper, opaque).
    PartHtmO,
    /// Part-HTM without the fast path (Fig. 3(b)'s extra series).
    PartHtmNoFast,
    /// Uninstrumented sequential execution (speed-up denominator).
    Sequential,
    /// SpHT (Lev & Maessen): lazy transaction splitting — the §3 comparison point,
    /// available for ablations (not part of the paper's figure legends).
    SpHt,
    /// HLE-style lock elision (§2): one speculative attempt, then the lock.
    Hle,
    /// Stretch-HTM: whole-transaction capacity *stretching* via suspend/resume
    /// instead of Part-HTM's segment *splitting* — only effective on backends
    /// with suspended regions (the `power` model); degrades to HTM-GL
    /// elsewhere. The `backendbench` ablation's second arm.
    StretchHtm,
}

impl Algo {
    /// The competitor set every figure plots (the paper's legend order).
    pub const COMPETITORS: [Algo; 6] = [
        Algo::RingStm,
        Algo::NOrec,
        Algo::NOrecRh,
        Algo::HtmGl,
        Algo::PartHtm,
        Algo::PartHtmO,
    ];

    /// Display name (matches the paper's legends).
    pub fn name(self) -> &'static str {
        match self {
            Algo::RingStm => "RingSTM",
            Algo::NOrec => "NOrec",
            Algo::NOrecRh => "NOrecRH",
            Algo::HtmGl => "HTM-GL",
            Algo::PartHtm => "Part-HTM",
            Algo::PartHtmO => "Part-HTM-O",
            Algo::PartHtmNoFast => "Part-HTM-no-fast",
            Algo::Sequential => "Sequential",
            Algo::SpHt => "SpHT",
            Algo::Hle => "HLE",
            Algo::StretchHtm => "Stretch-HTM",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Algo> {
        let s = s.to_ascii_lowercase();
        Some(match s.as_str() {
            "ringstm" => Algo::RingStm,
            "norec" => Algo::NOrec,
            "norecrh" => Algo::NOrecRh,
            "htm-gl" | "htmgl" => Algo::HtmGl,
            "part-htm" | "parthtm" => Algo::PartHtm,
            "part-htm-o" | "parthtmo" => Algo::PartHtmO,
            "part-htm-no-fast" | "nofast" => Algo::PartHtmNoFast,
            "sequential" | "seq" => Algo::Sequential,
            "spht" => Algo::SpHt,
            "hle" => Algo::Hle,
            "stretch-htm" | "stretchhtm" => Algo::StretchHtm,
            _ => return None,
        })
    }
}

/// Run one experiment cell: build a fresh runtime (fresh heap, fresh metadata),
/// initialise the workload's shared state, and drive `threads x ops_per_thread`
/// transactions under `algo`.
///
/// `init` populates the heap and returns a `Copy` shared-layout handle;
/// `make(shared, thread_id)` builds each thread's workload.
#[allow(clippy::too_many_arguments)]
pub fn run_cell<S, W, I, M>(
    algo: Algo,
    threads: usize,
    ops_per_thread: usize,
    htm: HtmConfig,
    tm: TmConfig,
    app_words: usize,
    init: I,
    make: M,
) -> RunResult
where
    S: Copy + Send + Sync,
    W: Workload + Send,
    I: FnOnce(&TmRuntime) -> S,
    M: Fn(S, usize) -> W + Sync,
{
    run_cell_with(
        algo,
        threads,
        ops_per_thread,
        htm,
        tm,
        app_words,
        init,
        make,
        |_, _| (),
    )
    .0
}

/// [`run_cell`] plus a post-run hook that still sees the runtime and the shared
/// layout — for invariant verification after the measured region (e.g. conserved
/// sums), since the runtime is dropped when the cell finishes.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_with<S, W, I, M, F, R>(
    algo: Algo,
    threads: usize,
    ops_per_thread: usize,
    htm: HtmConfig,
    tm: TmConfig,
    app_words: usize,
    init: I,
    make: M,
    finish: F,
) -> (RunResult, R)
where
    S: Copy + Send + Sync,
    W: Workload + Send,
    I: FnOnce(&TmRuntime) -> S,
    M: Fn(S, usize) -> W + Sync,
    F: FnOnce(&TmRuntime, S) -> R,
{
    let tm = TmConfig {
        skip_fast: tm.skip_fast || algo == Algo::PartHtmNoFast,
        ..tm
    };
    let rt = TmRuntime::new(htm, tm, threads, app_words);
    let shared = init(&rt);
    let factory = |t: usize| make(shared, t);
    let result = match algo {
        Algo::RingStm => run_threads::<RingStm, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::NOrec => run_threads::<NOrec, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::NOrecRh => run_threads::<NOrecRh, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::HtmGl => run_threads::<HtmGl, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::PartHtm | Algo::PartHtmNoFast => {
            let mut r = run_threads::<PartHtm, _, _>(&rt, threads, ops_per_thread, factory);
            r.algo = algo.name();
            r
        }
        Algo::PartHtmO => run_threads::<PartHtmO, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::Sequential => {
            assert_eq!(threads, 1, "Sequential is only meaningful single-threaded");
            run_threads::<Sequential, _, _>(&rt, 1, ops_per_thread, factory)
        }
        Algo::SpHt => run_threads::<SpHt, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::Hle => run_threads::<Hle, _, _>(&rt, threads, ops_per_thread, factory),
        Algo::StretchHtm => run_threads::<StretchHtm, _, _>(&rt, threads, ops_per_thread, factory),
    };
    let out = finish(&rt, shared);
    (result, out)
}

/// [`run_cell`] under the discrete-event virtual clock (`threads` = simulated
/// cores): scheduling, conflict order and timer aborts are driven by virtual
/// timestamps, so the cell's result — including the returned schedule report —
/// is bit-reproducible from `spec` alone, even on a 1-core host.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_virtual<S, W, I, M>(
    algo: Algo,
    threads: usize,
    ops_per_thread: usize,
    htm: HtmConfig,
    tm: TmConfig,
    app_words: usize,
    spec: SchedSpec,
    init: I,
    make: M,
) -> (RunResult, VReport)
where
    S: Copy + Send + Sync,
    W: Workload + Send,
    I: FnOnce(&TmRuntime) -> S,
    M: Fn(S, usize) -> W + Sync,
{
    let tm = TmConfig {
        skip_fast: tm.skip_fast || algo == Algo::PartHtmNoFast,
        ..tm
    };
    let rt = TmRuntime::new(htm, tm, threads, app_words);
    let shared = init(&rt);
    let factory = |t: usize| make(shared, t);
    let ops = ops_per_thread;
    match algo {
        Algo::RingStm => run_threads_virtual::<RingStm, _, _>(&rt, threads, ops, spec, factory),
        Algo::NOrec => run_threads_virtual::<NOrec, _, _>(&rt, threads, ops, spec, factory),
        Algo::NOrecRh => run_threads_virtual::<NOrecRh, _, _>(&rt, threads, ops, spec, factory),
        Algo::HtmGl => run_threads_virtual::<HtmGl, _, _>(&rt, threads, ops, spec, factory),
        Algo::PartHtm | Algo::PartHtmNoFast => {
            let (mut r, rep) =
                run_threads_virtual::<PartHtm, _, _>(&rt, threads, ops, spec, factory);
            r.algo = algo.name();
            (r, rep)
        }
        Algo::PartHtmO => run_threads_virtual::<PartHtmO, _, _>(&rt, threads, ops, spec, factory),
        Algo::Sequential => {
            assert_eq!(threads, 1, "Sequential is only meaningful single-threaded");
            run_threads_virtual::<Sequential, _, _>(&rt, 1, ops, spec, factory)
        }
        Algo::SpHt => run_threads_virtual::<SpHt, _, _>(&rt, threads, ops, spec, factory),
        Algo::Hle => run_threads_virtual::<Hle, _, _>(&rt, threads, ops, spec, factory),
        Algo::StretchHtm => {
            run_threads_virtual::<StretchHtm, _, _>(&rt, threads, ops, spec, factory)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use htm_sim::Addr;
    use part_htm_core::TxCtx;
    use rand::rngs::SmallRng;

    #[derive(Clone, Copy)]
    struct Shared(Addr);

    struct Inc(Addr);
    impl Workload for Inc {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let v = ctx.read(self.0)?;
            ctx.write(self.0, v + 1)
        }
    }

    #[test]
    fn every_algo_commits_the_same_total() {
        for algo in Algo::COMPETITORS {
            let r = run_cell(
                algo,
                2,
                25,
                HtmConfig::default(),
                TmConfig::default(),
                64,
                |rt| Shared(rt.app(0)),
                |s, _t| Inc(s.0),
            );
            assert_eq!(r.commits, 50, "{}", algo.name());
        }
    }

    #[test]
    fn no_fast_variant_renamed() {
        let r = run_cell(
            Algo::PartHtmNoFast,
            1,
            5,
            HtmConfig::default(),
            TmConfig::default(),
            64,
            |rt| Shared(rt.app(0)),
            |s, _t| Inc(s.0),
        );
        assert_eq!(r.algo, "Part-HTM-no-fast");
        assert_eq!(
            r.tm.commits_subhtm, 5,
            "no-fast must commit on the partitioned path"
        );
    }

    /// Writes 12 one-per-line counters in 4 declared segments — overflows a
    /// tiny L1 write budget, forcing the partitioned path and the planner.
    struct Wide(Addr);
    impl Workload for Wide {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segments(&self) -> usize {
            4
        }
        fn segment<C: TxCtx>(&mut self, s: usize, ctx: &mut C) -> TxResult<()> {
            for i in 0..3u32 {
                let addr = self.0 + (s as u32 * 3 + i) * 8;
                let v = ctx.read(addr)?;
                ctx.write(addr, v + 1)?;
            }
            Ok(())
        }
    }

    /// ISSUE 8 acceptance: perturbing *only* `interrupt_prob` (not capacity,
    /// not quantum) must not move the planner's split/demotion counters —
    /// injected interrupts are transient, not resource failures, so they
    /// must not feed the capacity-class profiles.
    #[test]
    fn planner_counters_ignore_interrupt_prob() {
        use htm_sim::vclock::SchedSpec;
        let run = |prob: f64| {
            let htm = HtmConfig {
                l1_sets: 4,
                l1_ways: 2,
                read_lines_max: 24,
                interrupt_prob: prob,
                ..HtmConfig::tiny()
            };
            let (r, _) = run_cell_virtual(
                Algo::PartHtm,
                1,
                60,
                htm,
                TmConfig::default(),
                12 * 8,
                SchedSpec::default(),
                |rt| Shared(rt.app(0)),
                |s, _t| Wide(s.0),
            );
            r
        };
        let base = run(0.0);
        let pert = run(5e-3);
        assert!(
            base.tm.site_demotions > 0 || base.tm.plan_splits > 0,
            "the workload must actually exercise the planner"
        );
        assert!(
            pert.hw.aborts_interrupt > 0,
            "the perturbation must actually inject interrupts"
        );
        assert_eq!(
            pert.tm.plan_splits, base.tm.plan_splits,
            "plan splits moved on an interrupt_prob-only perturbation"
        );
        assert_eq!(
            pert.tm.site_demotions, base.tm.site_demotions,
            "site demotions moved on an interrupt_prob-only perturbation"
        );
    }

    #[test]
    fn parse_roundtrip() {
        for a in Algo::COMPETITORS {
            assert_eq!(Algo::parse(a.name()), Some(a));
        }
        assert_eq!(Algo::parse("nope"), None);
    }
}
