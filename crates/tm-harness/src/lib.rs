//! # tm-harness — the experiment driver
//!
//! Reproduces every table and figure of the Part-HTM evaluation (§7):
//!
//! * [`driver`] — run a workload on N threads under any executor, with merged
//!   protocol and hardware statistics;
//! * [`algo`] — the competitor set and the per-cell dispatcher;
//! * [`loadgen`] — open-loop arrival plans (Poisson/burst) and log-bucketed
//!   latency histograms for the `tm-server` load harness;
//! * [`report`] — figure-shaped tables (threads x algorithms) and Table-1-shaped
//!   statistics reports;
//! * [`experiments`] — one entry per table/figure, with the paper's workload
//!   parameters (scaled where DESIGN.md says so) and per-experiment HTM geometry.
//!
//! The `repro` binary prints any experiment:
//!
//! ```text
//! repro fig3a            # one experiment
//! repro all --scale 0.2  # everything, 5x fewer transactions per cell
//! ```

pub mod algo;
pub mod driver;
pub mod experiments;
pub mod loadgen;
pub mod report;
pub mod schedx;

pub use algo::{run_cell, run_cell_virtual, run_cell_with, Algo};
pub use driver::{run_threads, run_threads_virtual, RunResult};
pub use loadgen::{ArrivalProcess, LatencyHisto};
pub use report::{StatsReport, Table, Unit};
