//! One entry per table and figure of the paper's evaluation (§7), with the
//! workload parameters and per-experiment HTM geometry.

use crate::algo::{run_cell, run_cell_virtual, Algo};
use crate::report::{StatsReport, Table, Unit};
use htm_sim::vclock::SchedSpec;
use htm_sim::{BackendKind, HtmConfig};
use part_htm_core::{TmConfig, TmRuntime, Workload};
use tm_workloads::stamp::{genome, intruder, kmeans, labyrinth, ssca2, vacation, yada};
use tm_workloads::{eigen, list, micro};

/// Options common to every experiment invocation.
#[derive(Clone, Debug)]
pub struct ExpOpts {
    /// Thread counts to sweep (default: per experiment, as in the paper's x axes).
    pub threads: Option<Vec<usize>>,
    /// Multiplier on the per-cell transaction count (1.0 = defaults; smaller is
    /// faster and noisier).
    pub scale: f64,
    /// Restrict the algorithm set.
    pub algos: Option<Vec<Algo>>,
    /// Also gather a Table-1-style statistics report (abort causes, commit paths)
    /// per algorithm at the sweep's last thread count, rendered under the series.
    pub stats: bool,
    /// Repetitions per cell; cells report the mean throughput ("All data points are
    /// the average of 5 repeated execution", §7). Default 1 for speed.
    pub reps: usize,
    /// Override `TmConfig::adaptive_plan` for the whole sweep: `Some(false)` pins
    /// the static per-declared-segment plan (the paper's hand-tuned hints),
    /// `Some(true)` forces the abort-profiled planner, `None` keeps the default.
    pub adaptive: Option<bool>,
    /// Route the HTM model through an explicit backend (`tsx`, `power`,
    /// `limited`). `None` keeps the legacy inline path — the bit-exact
    /// differential oracle — so default runs reproduce the recorded figures.
    pub backend: Option<BackendKind>,
}

impl Default for ExpOpts {
    fn default() -> Self {
        Self {
            threads: None,
            scale: 1.0,
            algos: None,
            stats: false,
            reps: 1,
            adaptive: None,
            backend: None,
        }
    }
}

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1", "fig3a", "fig3b", "fig3c", "fig4a", "fig4b", "fig5a", "fig5b", "fig5c", "fig5d",
    "fig5e", "fig5f", "fig5g", "fig5h", "fig5i", "fig6a", "fig6b", "vsweep",
];

/// The paper's micro-benchmark thread axis (up to the 18-core Xeon).
const WIDE_THREADS: &[usize] = &[1, 2, 4, 8, 12, 16, 18];
/// The paper's application thread axis (the 4-core/8-thread Haswell).
const APP_THREADS: &[usize] = &[1, 2, 4, 6, 8];

struct FigSpec {
    id: &'static str,
    title: &'static str,
    unit: Unit,
    threads: Vec<usize>,
    ops: usize,
    algos: Vec<Algo>,
    stats: bool,
    reps: usize,
    adaptive: Option<bool>,
    backend: Option<BackendKind>,
}

impl FigSpec {
    fn new(
        id: &'static str,
        title: &'static str,
        unit: Unit,
        opts: &ExpOpts,
        wide: bool,
        base_ops: usize,
    ) -> Self {
        let threads = opts.threads.clone().unwrap_or_else(|| {
            if wide {
                WIDE_THREADS.to_vec()
            } else {
                APP_THREADS.to_vec()
            }
        });
        let algos = opts
            .algos
            .clone()
            .unwrap_or_else(|| Algo::COMPETITORS.to_vec());
        let ops = ((base_ops as f64 * opts.scale) as usize).max(1);
        Self {
            id,
            title,
            unit,
            threads,
            ops,
            algos,
            stats: opts.stats,
            reps: opts.reps.max(1),
            adaptive: opts.adaptive,
            backend: opts.backend,
        }
    }

    fn with_no_fast(mut self) -> Self {
        if !self.algos.contains(&Algo::PartHtmNoFast) {
            self.algos.push(Algo::PartHtmNoFast);
        }
        self
    }
}

/// Generic figure runner: a thread sweep per algorithm, optionally normalised by
/// single-threaded sequential throughput (speed-up figures).
fn figure<S, W>(
    spec: FigSpec,
    htm_for: impl Fn(usize) -> HtmConfig,
    tm: TmConfig,
    app_words_for: impl Fn(usize) -> usize,
    init: impl Fn(&TmRuntime) -> S,
    make: impl Fn(S, usize) -> W + Sync,
) -> Table
where
    S: Copy + Send + Sync,
    W: Workload + Send,
{
    let mut tm = tm;
    if let Some(adaptive) = spec.adaptive {
        tm.adaptive_plan = adaptive;
    }
    // Wrap the per-experiment geometry so `--backend` routes every cell through
    // the selected capacity model (None keeps the legacy bit-exact path).
    let htm_for = |threads: usize| HtmConfig {
        backend: spec.backend.or(htm_for(threads).backend),
        ..htm_for(threads)
    };
    // Mean throughput of one (algo, threads) cell over `reps` fresh runs.
    let mean_cell = |algo: Algo, threads: usize| {
        let mut sum = 0.0;
        let mut last = None;
        for _ in 0..spec.reps {
            let r = run_cell(
                algo,
                threads,
                spec.ops,
                htm_for(threads),
                tm.clone(),
                app_words_for(threads),
                &init,
                &make,
            );
            sum += r.throughput();
            last = Some(r);
        }
        (sum / spec.reps as f64, last.expect("reps >= 1"))
    };

    let denom = if spec.unit == Unit::Speedup {
        mean_cell(Algo::Sequential, 1).0
    } else {
        1.0
    };

    let mut table = Table::new(
        spec.id,
        spec.title,
        spec.unit,
        spec.algos.iter().map(|a| a.name()).collect(),
    );
    let last = *spec.threads.last().expect("at least one thread count");
    for &t in &spec.threads {
        let mut row = Vec::with_capacity(spec.algos.len());
        for &algo in &spec.algos {
            let (mean, last_run) = mean_cell(algo, t);
            row.push(mean / denom);
            if spec.stats && t == last {
                table.reports.push(StatsReport::from_run(&last_run));
            }
        }
        table.push_row(t, row);
    }
    table
}

/// Fig. 3(a): N-Reads-M-Writes, N = M = 10 (everything fits HTM).
pub fn fig3a(opts: &ExpOpts) -> Table {
    let p = micro::NrmwParams::fig3a();
    figure(
        FigSpec::new(
            "fig3a",
            "N-Reads M-Writes, N=M=10, disjoint",
            Unit::Throughput,
            opts,
            true,
            3000,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        |_t| p.app_words(),
        move |rt| micro::init(rt, &p),
        move |s, t| micro::Nrmw::new(s, t, 64),
    )
}

/// Fig. 3(b): N = array, M = 100 — space-limited transactions. The per-thread
/// transactional read budget shrinks with concurrency (shared-cache pressure),
/// which is the paper's explanation for HTM-GL's collapse past 8 threads.
pub fn fig3b(opts: &ExpOpts) -> Table {
    let p = micro::NrmwParams::fig3b();
    figure(
        FigSpec::new(
            "fig3b",
            "N-Reads M-Writes, N=array (10k scaled), M=100",
            Unit::Throughput,
            opts,
            true,
            60,
        )
        .with_no_fast(),
        |t| HtmConfig {
            read_lines_max: (11_000 / t).max(64),
            ..HtmConfig::default()
        },
        TmConfig::default(),
        |_t| p.app_words(),
        move |rt| micro::init(rt, &p),
        move |s, t| micro::Nrmw::new(s, t, 64),
    )
}

/// Fig. 3(c): 100 x (read, FP work, write) — time-limited transactions, 4 sub-HTM
/// segments of 25 iterations.
pub fn fig3c(opts: &ExpOpts) -> Table {
    let p = micro::NrmwParams::fig3c();
    figure(
        FigSpec::new(
            "fig3c",
            "N-Reads M-Writes, N=M=100 with FP work (time-limited)",
            Unit::Throughput,
            opts,
            false,
            300,
        ),
        |_t| HtmConfig {
            quantum: 40_000,
            ..HtmConfig::default()
        },
        TmConfig::default(),
        |_t| p.app_words(),
        move |rt| micro::init(rt, &p),
        move |s, t| micro::Nrmw::new(s, t, 64),
    )
}

fn list_fig(
    id: &'static str,
    title: &'static str,
    p: list::ListParams,
    base_ops: usize,
    opts: &ExpOpts,
) -> Table {
    figure(
        FigSpec::new(id, title, Unit::Throughput, opts, false, base_ops),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| list::init(rt, &p),
        move |s, _t| list::ListWorkload::new(s),
    )
}

/// Fig. 4(a): linked list, 1 K elements, 50 % writes.
pub fn fig4a(opts: &ExpOpts) -> Table {
    list_fig(
        "fig4a",
        "Linked list, 1K elements, 50% writes",
        list::ListParams::fig4a(),
        1500,
        opts,
    )
}

/// Fig. 4(b): linked list, 10 K elements, 50 % writes.
pub fn fig4b(opts: &ExpOpts) -> Table {
    list_fig(
        "fig4b",
        "Linked list, 10K elements, 50% writes",
        list::ListParams::fig4b(),
        120,
        opts,
    )
}

/// Fig. 5(a): Kmeans, low contention (speed-up over sequential).
pub fn fig5a(opts: &ExpOpts) -> Table {
    let p = kmeans::KmeansParams::low_contention();
    figure(
        FigSpec::new(
            "fig5a",
            "Kmeans, low contention",
            Unit::Speedup,
            opts,
            false,
            4000,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| kmeans::init(rt, &p),
        move |s, _t| kmeans::Kmeans::new(s),
    )
}

/// Fig. 5(b): Kmeans, high contention.
pub fn fig5b(opts: &ExpOpts) -> Table {
    let p = kmeans::KmeansParams::high_contention();
    figure(
        FigSpec::new(
            "fig5b",
            "Kmeans, high contention",
            Unit::Speedup,
            opts,
            false,
            4000,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| kmeans::init(rt, &p),
        move |s, _t| kmeans::Kmeans::new(s),
    )
}

/// Fig. 5(c): SSCA2.
pub fn fig5c(opts: &ExpOpts) -> Table {
    let p = ssca2::Ssca2Params::default_scale();
    figure(
        FigSpec::new("fig5c", "SSCA2", Unit::Speedup, opts, false, 8000),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| ssca2::init(rt, &p),
        move |s, _t| ssca2::Ssca2::new(s),
    )
}

/// Fig. 5(d): Labyrinth (the resource-failure-dominated application, cf. Table 1).
pub fn fig5d(opts: &ExpOpts) -> Table {
    let p = labyrinth::LabyrinthParams::default_scale();
    figure(
        FigSpec::new("fig5d", "Labyrinth", Unit::Speedup, opts, false, 40),
        |_t| HtmConfig {
            interrupt_prob: 5e-6,
            ..HtmConfig::default()
        },
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| labyrinth::init(rt, &p),
        move |s, t| labyrinth::Labyrinth::new(s, t as u64 + 1),
    )
}

/// Fig. 5(e): Intruder.
pub fn fig5e(opts: &ExpOpts) -> Table {
    let p = intruder::IntruderParams::default_scale();
    figure(
        FigSpec::new("fig5e", "Intruder", Unit::Speedup, opts, false, 4000),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| intruder::init(rt, &p),
        move |s, _t| intruder::Intruder::new(s),
    )
}

/// Fig. 5(f): Vacation, low contention.
pub fn fig5f(opts: &ExpOpts) -> Table {
    let p = vacation::VacationParams::low_contention();
    figure(
        FigSpec::new(
            "fig5f",
            "Vacation, low contention",
            Unit::Speedup,
            opts,
            false,
            1200,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| vacation::init(rt, &p),
        move |s, _t| vacation::Vacation::new(s),
    )
}

/// Fig. 5(g): Vacation, high contention.
pub fn fig5g(opts: &ExpOpts) -> Table {
    let p = vacation::VacationParams::high_contention();
    figure(
        FigSpec::new(
            "fig5g",
            "Vacation, high contention",
            Unit::Speedup,
            opts,
            false,
            1200,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| vacation::init(rt, &p),
        move |s, _t| vacation::Vacation::new(s),
    )
}

/// Fig. 5(h): Yada.
pub fn fig5h(opts: &ExpOpts) -> Table {
    let p = yada::YadaParams::default_scale();
    figure(
        FigSpec::new("fig5h", "Yada", Unit::Speedup, opts, false, 150),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| yada::init(rt, &p),
        move |s, _t| yada::Yada::new(s),
    )
}

/// Fig. 5(i): Genome.
pub fn fig5i(opts: &ExpOpts) -> Table {
    let p = genome::GenomeParams::default_scale();
    figure(
        FigSpec::new("fig5i", "Genome", Unit::Speedup, opts, false, 3000),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |_t| p.app_words(),
        move |rt| genome::init(rt, &p),
        move |s, _t| genome::Genome::new(s),
    )
}

/// Fig. 6(a): EigenBench, 50 % long / 50 % short transactions.
pub fn fig6a(opts: &ExpOpts) -> Table {
    let p = eigen::EigenParams::fig6a();
    figure(
        FigSpec::new(
            "fig6a",
            "EigenBench, 50% long / 50% short",
            Unit::Speedup,
            opts,
            false,
            400,
        ),
        |_t| HtmConfig {
            quantum: 30_000,
            ..HtmConfig::default()
        },
        TmConfig::default(),
        move |t| p.app_words(t.max(1)),
        move |rt| eigen::init(rt, &p),
        move |s, t| eigen::Eigen::new(s, t, 64),
    )
}

/// Fig. 6(b): EigenBench, high contention.
pub fn fig6b(opts: &ExpOpts) -> Table {
    let p = eigen::EigenParams::fig6b();
    figure(
        FigSpec::new(
            "fig6b",
            "EigenBench, high contention (hot array)",
            Unit::Speedup,
            opts,
            false,
            120,
        ),
        |_t| HtmConfig::default(),
        TmConfig::default(),
        move |t| p.app_words(t.max(1)),
        move |rt| eigen::init(rt, &p),
        move |s, t| eigen::Eigen::new(s, t, 64),
    )
}

/// Table 1: abort-cause and commit-path statistics for HTM-GL (row A) vs Part-HTM
/// (row B) on Labyrinth at 4 threads.
pub fn table1(opts: &ExpOpts) -> String {
    let p = labyrinth::LabyrinthParams::default_scale();
    let ops = ((60.0 * opts.scale) as usize).max(1);
    let threads = opts
        .threads
        .as_ref()
        .and_then(|t| t.first().copied())
        .unwrap_or(4);
    let mut tm = TmConfig::default();
    if let Some(adaptive) = opts.adaptive {
        tm.adaptive_plan = adaptive;
    }
    let mut out = String::new();
    out.push_str(&format!(
        "# table1 — Labyrinth statistics, {threads} threads: HTM-GL (A) vs Part-HTM (B)\n"
    ));
    out.push_str(&StatsReport::header());
    out.push('\n');
    for algo in [Algo::HtmGl, Algo::PartHtm] {
        let r = run_cell(
            algo,
            threads,
            ops,
            // A small per-operation interrupt probability reproduces Table 1's
            // "other" abort column (timer and asynchronous interrupts on long
            // hardware attempts).
            HtmConfig {
                interrupt_prob: 5e-6,
                backend: opts.backend,
                ..HtmConfig::default()
            },
            tm.clone(),
            p.app_words(),
            |rt| labyrinth::init(rt, &p),
            |s, t| labyrinth::Labyrinth::new(s, t as u64 + 1),
        );
        out.push_str(&StatsReport::from_run(&r).render_row());
        out.push('\n');
    }
    out
}

/// `vsweep`: the fig3a workload (N-Reads-M-Writes, N=M=10, disjoint pools) on
/// 1/2/4/8 *simulated* cores under the discrete-event virtual clock. Unlike
/// the wall-clock sweeps — which on a 1-core CI host measure host scheduling
/// noise around a flat line — every cell here is a deterministic function of
/// the schedule spec: conflict resolution, commits and timer aborts happen in
/// virtual-timestamp order, and throughput is commits per million simulated
/// work units. The same numbers reproduce on any host.
pub fn vsweep(opts: &ExpOpts) -> Table {
    let p = micro::NrmwParams::fig3a();
    let threads = opts.threads.clone().unwrap_or_else(|| vec![1, 2, 4, 8]);
    let algos = opts
        .algos
        .clone()
        .unwrap_or_else(|| Algo::COMPETITORS.to_vec());
    let ops = ((150.0 * opts.scale) as usize).max(1);
    let mut tm = TmConfig::default();
    if let Some(adaptive) = opts.adaptive {
        tm.adaptive_plan = adaptive;
    }
    let mut table = Table::new(
        "vsweep",
        "virtual-time scaling, N-Reads M-Writes N=M=10 disjoint (deterministic)",
        Unit::VirtualThroughput,
        algos.iter().map(|a| a.name()).collect(),
    );
    for &t in &threads {
        let mut row = Vec::with_capacity(algos.len());
        for &algo in &algos {
            // One run per cell: the cell is deterministic, repetitions would
            // reproduce the identical number.
            let (r, _) = run_cell_virtual(
                algo,
                t,
                ops,
                HtmConfig {
                    backend: opts.backend,
                    ..HtmConfig::default()
                },
                tm.clone(),
                p.app_words(),
                SchedSpec::default(),
                |rt| micro::init(rt, &p),
                |s, tid| micro::Nrmw::new(s, tid, 64),
            );
            row.push(r.virtual_throughput());
        }
        table.push_row(t, row);
    }
    table
}

/// Run an experiment by id and return its rendered output.
pub fn run_experiment(id: &str, opts: &ExpOpts) -> Option<String> {
    run_experiment_table(id, opts).map(|(out, _)| out)
}

/// Like [`run_experiment`], also returning the figure's [`Table`] (absent for
/// Table 1, whose output is a statistics report rather than a series table).
pub fn run_experiment_table(id: &str, opts: &ExpOpts) -> Option<(String, Option<Table>)> {
    if id == "table1" {
        return Some((table1(opts), None));
    }
    let table = match id {
        "fig3a" => fig3a(opts),
        "fig3b" => fig3b(opts),
        "fig3c" => fig3c(opts),
        "fig4a" => fig4a(opts),
        "fig4b" => fig4b(opts),
        "fig5a" => fig5a(opts),
        "fig5b" => fig5b(opts),
        "fig5c" => fig5c(opts),
        "fig5d" => fig5d(opts),
        "fig5e" => fig5e(opts),
        "fig5f" => fig5f(opts),
        "fig5g" => fig5g(opts),
        "fig5h" => fig5h(opts),
        "fig5i" => fig5i(opts),
        "fig6a" => fig6a(opts),
        "fig6b" => fig6b(opts),
        "vsweep" => vsweep(opts),
        _ => return None,
    };
    Some((table.render(), Some(table)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOpts {
        ExpOpts {
            threads: Some(vec![1, 2]),
            scale: 0.02,
            algos: Some(vec![Algo::HtmGl, Algo::PartHtm]),
            stats: false,
            reps: 1,
            adaptive: None,
            backend: None,
        }
    }

    #[test]
    fn fig3a_quick_produces_values() {
        let t = fig3a(&quick());
        assert_eq!(t.threads, vec![1, 2]);
        assert!(t.value(1, "Part-HTM").unwrap() > 0.0);
        assert!(t.value(2, "HTM-GL").unwrap() > 0.0);
    }

    #[test]
    fn fig3b_includes_no_fast_series() {
        let mut o = quick();
        o.threads = Some(vec![1]);
        let t = fig3b(&o);
        assert!(t.col("Part-HTM-no-fast").is_some());
    }

    #[test]
    fn speedup_figure_normalises() {
        let mut o = quick();
        o.threads = Some(vec![1]);
        o.scale = 0.01;
        let t = fig5c(&o);
        // Single-threaded transactional speedup is below 1 (instrumentation cost).
        let v = t.value(1, "Part-HTM").unwrap();
        assert!(v > 0.0 && v < 3.0, "speedup {v} out of plausible range");
    }

    #[test]
    fn table1_renders_both_rows() {
        let o = ExpOpts {
            threads: Some(vec![2]),
            scale: 0.05,
            algos: None,
            stats: false,
            reps: 1,
            adaptive: None,
            backend: None,
        };
        let s = table1(&o);
        assert!(s.contains("HTM-GL"));
        assert!(s.contains("Part-HTM"));
    }

    #[test]
    fn vsweep_is_deterministic_and_non_flat() {
        let o = ExpOpts {
            threads: Some(vec![1, 2]),
            scale: 0.2,
            algos: Some(vec![Algo::PartHtm]),
            stats: false,
            reps: 1,
            adaptive: None,
            backend: None,
        };
        let a = vsweep(&o);
        let b = vsweep(&o);
        let a1 = a.value(1, "Part-HTM").unwrap();
        let a2 = a.value(2, "Part-HTM").unwrap();
        // Bit-identical across invocations (virtual time, fixed spec)...
        assert_eq!(a1, b.value(1, "Part-HTM").unwrap());
        assert_eq!(a2, b.value(2, "Part-HTM").unwrap());
        // ... and the thread axis does something (not scheduling noise
        // around a flat line: simulated cores genuinely overlap work).
        assert_ne!(a1, a2, "1-core and 2-core cells must differ");
        assert!(a1 > 0.0 && a2 > 0.0);
    }

    #[test]
    fn backend_sweep_runs_all_three_models() {
        // The same quick figure under each explicit capacity model: all must
        // complete with non-zero throughput (the constrained models still make
        // progress via splitting / the global-lock fallback), and the `tsx`
        // route is the differential twin of the legacy path.
        let mut o = quick();
        o.threads = Some(vec![2]);
        o.scale = 0.01;
        o.algos = Some(vec![Algo::PartHtm, Algo::StretchHtm]);
        for kind in [BackendKind::Tsx, BackendKind::Power, BackendKind::Limited] {
            o.backend = Some(kind);
            let t = fig3a(&o);
            for algo in ["Part-HTM", "Stretch-HTM"] {
                let v = t.value(2, algo).unwrap();
                assert!(v > 0.0, "{algo} on {} produced no commits", kind.name());
            }
        }
    }

    #[test]
    fn vsweep_backend_cell_is_deterministic() {
        let o = ExpOpts {
            threads: Some(vec![2]),
            scale: 0.1,
            algos: Some(vec![Algo::PartHtm]),
            stats: false,
            reps: 1,
            adaptive: None,
            backend: Some(BackendKind::Power),
        };
        let a = vsweep(&o);
        let b = vsweep(&o);
        assert_eq!(a.value(2, "Part-HTM"), b.value(2, "Part-HTM"));
        assert!(a.value(2, "Part-HTM").unwrap() > 0.0);
    }

    #[test]
    fn run_experiment_dispatch() {
        assert!(run_experiment("nope", &ExpOpts::default()).is_none());
        for id in ALL_IDS {
            // Only check that ids are known; running everything here would be slow.
            assert!(ALL_IDS.contains(id));
        }
    }
}
