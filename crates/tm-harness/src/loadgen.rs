//! Open-loop load generation and latency recording.
//!
//! A closed-loop driver (every worker issues its next transaction the moment
//! the previous one commits — `run_threads`'s model) cannot observe overload:
//! the offered load self-throttles to the service rate and latency looks
//! flat. Serving "millions of users" means the opposite regime: arrivals
//! keep coming whether or not the server keeps up, and queueing delay —
//! sojourn time, completion minus *scheduled arrival* — is the number users
//! feel. This module supplies the two pieces the server harness needs:
//!
//! * [`ArrivalProcess`]: seeded, precomputed arrival timestamps (Poisson or
//!   on/off burst-modulated Poisson), in abstract time units so the same plan
//!   drives wall-clock nanoseconds and virtual-clock work units;
//! * [`LatencyHisto`]: a log-bucketed histogram (16 sub-buckets per octave,
//!   ≤ 6.25% relative error) with p50/p99/p999 extraction and cross-worker
//!   merge — constant memory no matter how many requests are recorded.
//!
//! Arrivals are *precomputed* rather than drawn inline so that a run's
//! offered load is a pure function of `(process, rate, seed)` — the
//! virtual-time serverbench cell replays the identical arrival plan across
//! batching/admission variants, making their latency tables directly
//! comparable (same comparability rule as `docs/virtual-time.md`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shape of an open-loop arrival stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps with the given
    /// mean (time units per arrival).
    Poisson {
        /// Mean inter-arrival gap in time units.
        mean_gap: f64,
    },
    /// On/off burst modulation: `burst_len` arrivals at `mean_gap / factor`
    /// spacing, then one quiet gap of `mean_gap * factor`, repeating. The
    /// long-run mean rate stays close to `1 / mean_gap` while the short-run
    /// rate inside a burst is `factor` times it — the arrival pattern that
    /// convoys a retry-based fallback path.
    Burst {
        /// Mean inter-arrival gap in time units (long-run average).
        mean_gap: f64,
        /// Arrivals per burst.
        burst_len: u32,
        /// Burst intensity: in-burst rate multiplier and quiet-gap stretch.
        factor: f64,
    },
}

impl ArrivalProcess {
    /// Generate `n` arrival timestamps (time units from the stream start,
    /// non-decreasing), deterministically from `seed`.
    pub fn timestamps(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0A12_17A1_5EED);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let gap = match *self {
                ArrivalProcess::Poisson { mean_gap } => exp_draw(&mut rng, mean_gap),
                ArrivalProcess::Burst {
                    mean_gap,
                    burst_len,
                    factor,
                } => {
                    let pos = i as u32 % (burst_len + 1);
                    if pos == burst_len {
                        // The quiet gap between bursts.
                        exp_draw(&mut rng, mean_gap * factor)
                    } else {
                        exp_draw(&mut rng, mean_gap / factor)
                    }
                }
            };
            t += gap;
            out.push(t as u64);
        }
        out
    }
}

/// Inverse-CDF exponential draw with mean `mean` (clamped away from ln(0)).
fn exp_draw(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    -mean * (1.0 - u).ln()
}

/// Sub-buckets per octave: values ≥ [`SUB`] share a bucket with at most
/// `1/SUB` relative width.
const SUB: usize = 16;
/// log2([`SUB`]).
const SUB_SHIFT: u32 = 4;
/// Bucket count covering the full `u64` range: [`SUB`] exact unit buckets
/// plus `(63 - SUB_SHIFT + 1)` octaves of [`SUB`] sub-buckets.
const BUCKETS: usize = SUB + (64 - SUB_SHIFT as usize) * SUB;

/// Log-bucketed latency histogram: exact below `SUB` (16), ≤ 1/`SUB` relative
/// error above, constant size (`BUCKETS` counters) regardless of sample
/// count. Quantiles report the *upper edge* of the containing bucket, so a
/// reported p999 never understates the observed latency.
#[derive(Clone)]
pub struct LatencyHisto {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
            sum: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let exp = 63 - v.leading_zeros(); // >= SUB_SHIFT
        let sub = ((v >> (exp - SUB_SHIFT)) as usize) & (SUB - 1);
        SUB + (exp - SUB_SHIFT) as usize * SUB + sub
    }

    /// The largest value mapping to `idx`'s bucket (what quantiles report).
    fn bucket_high(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let exp = ((idx - SUB) / SUB) as u32 + SUB_SHIFT;
        let sub = ((idx - SUB) % SUB) as u64;
        // Bucket low edge: (SUB + sub) << (exp - SUB_SHIFT); width: one step.
        let step = 1u64 << (exp - SUB_SHIFT);
        ((SUB as u64 + sub) << (exp - SUB_SHIFT)).saturating_add(step - 1)
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`), as the upper edge of the containing
    /// bucket, capped at the exact observed max; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile — the serverbench gate's tail metric.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another worker's histogram into this one.
    pub fn merge(&mut self, o: &LatencyHisto) {
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
        self.total += o.total;
        self.max = self.max.max(o.max);
        self.sum += o.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_rate_accurate() {
        let p = ArrivalProcess::Poisson { mean_gap: 100.0 };
        let a = p.timestamps(10_000, 42);
        let b = p.timestamps(10_000, 42);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, p.timestamps(10_000, 43), "seed matters");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Long-run rate within 5% of 1/mean_gap.
        let span = *a.last().unwrap() as f64;
        let mean = span / a.len() as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean gap {mean}");
    }

    #[test]
    fn burst_concentrates_arrivals() {
        let p = ArrivalProcess::Burst {
            mean_gap: 100.0,
            burst_len: 8,
            factor: 8.0,
        };
        let a = p.timestamps(9_000, 7);
        // In-burst gaps are ~mean/8; quiet gaps ~mean*8. Median gap must be
        // far below the long-run mean.
        let mut gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        assert!(median < 50, "median in-burst gap {median} not bursty");
        let p95 = gaps[gaps.len() * 95 / 100];
        assert!(p95 > 200, "no quiet gaps (p95 {p95})");
    }

    #[test]
    fn histo_buckets_are_exact_low_and_bounded_high() {
        let mut h = LatencyHisto::new();
        for v in 0..SUB as u64 {
            assert_eq!(LatencyHisto::bucket_high(LatencyHisto::bucket(v)), v);
        }
        for v in [100u64, 1_000, 123_456, u64::MAX / 3] {
            let high = LatencyHisto::bucket_high(LatencyHisto::bucket(v));
            assert!(high >= v, "upper edge {high} below sample {v}");
            assert!(
                (high - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "bucket too wide at {v}: {high}"
            );
        }
        h.record(3);
        h.record(5);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.p50(), 5);
        assert!(h.p999() >= 1000 && h.p999() <= 1000 + 1000 / SUB as u64 + 1);
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = LatencyHisto::new();
        let mut b = LatencyHisto::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.p50();
        assert!((450..=560).contains(&p50), "p50 {p50}");
        let p99 = a.p99();
        assert!((980..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(a.quantile(1.0), 1000);
        assert!((a.mean() - 500.5).abs() < 1.0);
        assert_eq!(LatencyHisto::new().p999(), 0, "empty histogram");
    }
}
