//! `schedx` — the deterministic schedule explorer.
//!
//! Built on [`htm_sim::vclock`]: a scenario is a small multi-core protocol
//! exercise run under the virtual clock with its invariants checked after the
//! run; a schedule is a `(seed, policy, forced-prefix)` spec; the explorer
//! enumerates forced prefixes depth-first to visit **every** schedule that
//! differs from the default in the first `depth` decision points (bounded
//! exhaustive exploration), or samples seeds under the `Seeded` policy.
//!
//! A violated invariant serialises to a tiny replay artifact
//! ([`artifact_text`]) that [`parse_artifact`] + [`run_scenario`] re-run to
//! the exact same interleaving — see `docs/virtual-time.md` for the format.

use htm_sim::vclock::{SchedPolicy, SchedSpec, VClock, VReport};
use htm_sim::{BackendKind, HtmConfig, HtmSystem};
use part_htm_core::{batch_site, PartHtm, StretchHtm, TmConfig, TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use std::fmt::Write as _;

use crate::driver::run_threads_virtual;

/// Exploration bounds (Kani-RFC style: explicit, and reported when hit).
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Decision depth: every schedule differing from the default in the first
    /// `depth` decision points is visited.
    pub depth: usize,
    /// Hard cap on executed schedules; hitting it sets
    /// [`Explored::truncated`].
    pub max_schedules: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Self {
            depth: 3,
            max_schedules: 64,
        }
    }
}

/// A schedule that broke a scenario invariant, with everything needed to
/// re-run it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Scenario name (see [`SCENARIOS`]).
    pub scenario: String,
    /// The exact schedule: re-running the scenario under this spec reproduces
    /// the violation bit-exactly.
    pub spec: SchedSpec,
    /// What broke (one line).
    pub message: String,
}

/// Outcome of an [`explore`] or [`sample`] sweep.
#[derive(Clone, Debug)]
pub struct Explored {
    /// Schedules actually executed.
    pub explored: usize,
    /// True when `max_schedules` stopped the sweep before the frontier was
    /// exhausted — coverage is then partial and the caller must say so.
    pub truncated: bool,
    /// First invariant violation found, if any (the sweep stops at the first).
    pub violation: Option<Violation>,
}

/// The scenario registry: `(name, simulated cores, description)`.
///
/// `order-canary` is deliberately schedule-*dependent* — its "invariant"
/// (core 0 commits first) is false under some interleavings. It exists to
/// prove the explorer finds schedule-sensitive outcomes and to exercise the
/// artifact/replay round trip; it is excluded from the CI `--bounded` set.
pub const SCENARIOS: &[(&str, usize, &str)] = &[
    (
        "counter2",
        2,
        "2-core Part-HTM shared-counter conflict over the packed line table",
    ),
    (
        "planner",
        2,
        "capacity-heavy multi-segment Part-HTM: partitioned path + segment planner",
    ),
    (
        "ring-epoch",
        2,
        "write-heavy Part-HTM on a tiny sharded ring with epoch summary resets",
    ),
    (
        "power-stretch",
        2,
        "Stretch-HTM on the POWER backend: stretched reads + suspended work under the clock",
    ),
    (
        "server-batch",
        2,
        "tm-server-shaped group commit: width-classed batch of per-request segments + hot line",
    ),
    (
        "order-canary",
        2,
        "schedule-dependent canary (commit order); violated by design at depth >= 2",
    ),
];

/// The scenarios the CI `--bounded` gate runs (all invariants must hold on
/// every explored schedule).
pub const BOUNDED_SET: &[&str] = &[
    "counter2",
    "planner",
    "ring-epoch",
    "power-stretch",
    "server-batch",
];

/// Increment `addr` once per transaction (single segment).
struct Inc(htm_sim::Addr);

impl Workload for Inc {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> htm_sim::abort::TxResult<()> {
        let v = ctx.read(self.0)?;
        ctx.write(self.0, v + 1)
    }
}

/// Increment `LINES` one-per-line counters in `SEGS` declared segments —
/// wide enough to blow a tiny L1 write budget and force the partitioned
/// path and the segment planner.
struct WideInc {
    base: htm_sim::Addr,
}

impl WideInc {
    const LINES: u32 = 12;
    const SEGS: usize = 4;
}

impl Workload for WideInc {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        Self::SEGS
    }
    fn segment<C: TxCtx>(&mut self, s: usize, ctx: &mut C) -> htm_sim::abort::TxResult<()> {
        let per = Self::LINES as usize / Self::SEGS;
        for i in 0..per {
            let addr = self.base + ((s * per + i) as u32) * 8;
            let v = ctx.read(addr)?;
            ctx.write(addr, v + 1)?;
        }
        Ok(())
    }
}

/// A group-commit batch shaped like the tm-server batcher's output: `WIDTH`
/// single-request segments against one shard's slot range plus a shared hot
/// line, declared under the same width-classed planner site the server uses
/// ([`batch_site`]). Two cores replay the batch against the *same* shard, so
/// every interleaving of segment commits, hot-line conflicts and planner
/// decisions is a schedule decision point; the invariant is the batch's
/// all-or-nothing arithmetic (per-slot and hot-line sums both conserved).
struct BatchGroup {
    base: htm_sim::Addr,
}

impl BatchGroup {
    /// Requests per group (the serverbench default batch width is 8; 4 keeps
    /// the bounded frontier small while landing in a distinct width class).
    const WIDTH: usize = 4;
}

impl Workload for BatchGroup {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        Self::WIDTH
    }
    fn site(&self) -> u32 {
        batch_site(0, 0, Self::WIDTH as u32)
    }
    fn segment<C: TxCtx>(&mut self, s: usize, ctx: &mut C) -> htm_sim::abort::TxResult<()> {
        // One "request": bump this request's slot, then the shard-hot line.
        let slot = self.base + (s as u32) * 8;
        let v = ctx.read(slot)?;
        ctx.write(slot, v + 1)?;
        let hot = self.base + (Self::WIDTH as u32) * 8;
        let h = ctx.read(hot)?;
        ctx.write(hot, h + 1)
    }
}

/// Read well past the POWER read budget (the tail of the scan goes through
/// suspended loads), burn a suspended non-transactional burst, then increment
/// `HOT` shared counters. Exercises the vclock's suspend/resume accounting:
/// suspended time still advances the virtual clock but cannot be interrupted
/// by the timer, and conflicts on stretched lines are still decision points.
struct StretchRead {
    base: htm_sim::Addr,
}

impl StretchRead {
    /// POWER read budget is 128 lines; 140 guarantees stretched reads.
    const LINES: u32 = 140;
    const HOT: u32 = 4;
}

impl Workload for StretchRead {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> htm_sim::abort::TxResult<()> {
        let mut sum = 0u64;
        for i in 0..Self::LINES {
            sum = sum.wrapping_add(ctx.read(self.base + i * 8)?);
        }
        std::hint::black_box(sum);
        ctx.nt_work(16)?;
        for i in 0..Self::HOT {
            let a = self.base + i * 8;
            let v = ctx.read(a)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

/// Check the post-run invariants common to every Part-HTM scenario: conserved
/// per-word sums, global lock released, no in-flight transactions, no leaked
/// conflict-table entries.
fn check_clean(rt: &TmRuntime, words: &[(usize, u64)], out: &mut Vec<String>) {
    for &(i, expect) in words {
        let got = rt.verify_read(i);
        if got != expect {
            out.push(format!("word {i}: expected {expect}, found {got} (lost or phantom update)"));
        }
    }
    let glock = rt.system().nt_read(rt.glock());
    if glock != 0 {
        out.push(format!("global lock still held (value {glock})"));
    }
    let active = rt.system().nt_read(rt.active_tx());
    if active != 0 {
        out.push(format!("active_tx counter not drained (value {active})"));
    }
    let live = rt.system().live_line_entries();
    if live != 0 {
        out.push(format!("{live} conflict-table entries leaked"));
    }
}

/// Run one scenario under one schedule. `Ok` carries the schedule report and
/// a canonical digest (decision trace + statistics) for byte-exact
/// determinism comparisons; `Err` is a one-line invariant-violation message.
pub fn run_scenario(name: &str, spec: &SchedSpec) -> Result<(VReport, String), String> {
    match name {
        "counter2" => {
            let rt = TmRuntime::new(
                HtmConfig::tiny(),
                TmConfig::default(),
                2,
                64,
            );
            let a0 = rt.app(0);
            let (r, rep) =
                run_threads_virtual::<PartHtm, _, _>(&rt, 2, 6, spec.clone(), |_t| Inc(a0));
            let mut bad = Vec::new();
            if r.commits != 12 {
                bad.push(format!("expected 12 commits, got {}", r.commits));
            }
            check_clean(&rt, &[(0, 12)], &mut bad);
            finish(name, r, rep, bad)
        }
        "planner" => {
            let htm = HtmConfig {
                l1_sets: 4,
                l1_ways: 2,
                read_lines_max: 24,
                ..HtmConfig::tiny()
            };
            let rt = TmRuntime::new(htm, TmConfig::default(), 2, (WideInc::LINES as usize) * 8);
            let base = rt.app(0);
            let (r, rep) =
                run_threads_virtual::<PartHtm, _, _>(&rt, 2, 4, spec.clone(), |_t| WideInc {
                    base,
                });
            let mut bad = Vec::new();
            if r.commits != 8 {
                bad.push(format!("expected 8 commits, got {}", r.commits));
            }
            let words: Vec<(usize, u64)> =
                (0..WideInc::LINES as usize).map(|i| (i * 8, 8)).collect();
            check_clean(&rt, &words, &mut bad);
            finish(name, r, rep, bad)
        }
        "ring-epoch" => {
            let tm = TmConfig {
                ring_entries: 16,
                ring_shards: 2,
                summary_epochs: true,
                summary_check_interval: 4,
                ..TmConfig::default()
            };
            let rt = TmRuntime::new(HtmConfig::tiny(), tm, 2, 64);
            let a0 = rt.app(0);
            let (r, rep) =
                run_threads_virtual::<PartHtm, _, _>(&rt, 2, 8, spec.clone(), |_t| Inc(a0));
            let mut bad = Vec::new();
            if r.commits != 16 {
                bad.push(format!("expected 16 commits, got {}", r.commits));
            }
            check_clean(&rt, &[(0, 16)], &mut bad);
            finish(name, r, rep, bad)
        }
        "power-stretch" => {
            let htm = HtmConfig {
                backend: Some(BackendKind::Power),
                ..HtmConfig::default()
            };
            let rt = TmRuntime::new(htm, TmConfig::default(), 2, (StretchRead::LINES as usize) * 8);
            let base = rt.app(0);
            let (r, rep) =
                run_threads_virtual::<StretchHtm, _, _>(&rt, 2, 3, spec.clone(), |_t| StretchRead {
                    base,
                });
            let mut bad = Vec::new();
            if r.commits != 6 {
                bad.push(format!("expected 6 commits, got {}", r.commits));
            }
            let words: Vec<(usize, u64)> =
                (0..StretchRead::HOT as usize).map(|i| (i * 8, 6)).collect();
            check_clean(&rt, &words, &mut bad);
            finish(name, r, rep, bad)
        }
        "server-batch" => {
            let rt = TmRuntime::new(
                HtmConfig::tiny(),
                TmConfig::default(),
                2,
                (BatchGroup::WIDTH + 1) * 8,
            );
            let base = rt.app(0);
            let (r, rep) =
                run_threads_virtual::<PartHtm, _, _>(&rt, 2, 4, spec.clone(), |_t| BatchGroup {
                    base,
                });
            let mut bad = Vec::new();
            if r.commits != 8 {
                bad.push(format!("expected 8 commits, got {}", r.commits));
            }
            // Each committed group bumps every slot once and the hot line
            // WIDTH times — a torn group shows up as a skewed sum.
            let mut words: Vec<(usize, u64)> =
                (0..BatchGroup::WIDTH).map(|i| (i * 8, 8)).collect();
            words.push((BatchGroup::WIDTH * 8, 8 * BatchGroup::WIDTH as u64));
            check_clean(&rt, &words, &mut bad);
            finish(name, r, rep, bad)
        }
        "order-canary" => {
            // Raw HtmSystem, one single-op commit per core. The "invariant"
            // is that core 0's commit lands first — true under the MinId
            // default, false once the explorer forces the tie the other way
            // at the commit's decision point (depth 2).
            let sys = HtmSystem::new(HtmConfig::tiny(), 64);
            let clock = VClock::new(2, spec.clone());
            std::thread::scope(|s| {
                for t in 0..2usize {
                    let clock = &clock;
                    let sys = &sys;
                    s.spawn(move || {
                        let _g = clock.attach(t);
                        let mut th = sys.thread(t);
                        th.attempt(|tx| tx.write((t as u32) * 8, 1)).unwrap();
                    });
                }
            });
            let rep = clock.report();
            let mut bad = Vec::new();
            match rep.commit_log.first() {
                Some(&(core, _)) if core != 0 => {
                    bad.push(format!("core {core} committed before core 0"));
                }
                None => bad.push("no commits recorded".to_string()),
                _ => {}
            }
            if bad.is_empty() {
                let digest = format!("{}canary", rep.trace_text());
                Ok((rep, digest))
            } else {
                Err(bad.join("; "))
            }
        }
        other => Err(format!("unknown scenario '{other}'")),
    }
}

/// Fold a finished Part-HTM scenario run into the `run_scenario` result shape.
fn finish(
    _name: &str,
    r: crate::driver::RunResult,
    rep: VReport,
    bad: Vec<String>,
) -> Result<(VReport, String), String> {
    if bad.is_empty() {
        let digest = format!(
            "{}makespan={} tm={:?} hw={:?}",
            rep.trace_text(),
            r.makespan,
            r.tm,
            r.hw
        );
        Ok((rep, digest))
    } else {
        Err(bad.join("; "))
    }
}

/// Bounded-depth exhaustive exploration: depth-first over forced prefixes,
/// visiting every schedule that differs from the `MinId` default in the first
/// [`Bounds::depth`] decision points. Stops at the first violation.
pub fn explore(scenario: &str, seed: u64, bounds: Bounds) -> Explored {
    let mut stack: Vec<Vec<u8>> = vec![Vec::new()];
    let mut explored = 0usize;
    while let Some(prefix) = stack.pop() {
        if explored >= bounds.max_schedules {
            return Explored {
                explored,
                truncated: true,
                violation: None,
            };
        }
        let spec = SchedSpec {
            seed,
            policy: SchedPolicy::MinId,
            forced: prefix.clone(),
        };
        explored += 1;
        match run_scenario(scenario, &spec) {
            Err(message) => {
                return Explored {
                    explored,
                    truncated: false,
                    violation: Some(Violation {
                        scenario: scenario.to_string(),
                        spec,
                        message,
                    }),
                }
            }
            Ok((report, _)) => {
                // Children: for every decision index `i` beyond this node's
                // explicit prefix, re-run with the observed choices 0..i
                // pinned and decision `i` flipped to each alternative. Every
                // child ends in a non-default choice and its parent is
                // recovered by stripping it plus trailing defaults, so the
                // stateless DFS visits each bounded-depth schedule exactly
                // once.
                let upto = bounds.depth.min(report.decisions.len());
                for i in prefix.len()..upto {
                    let d = report.decisions[i];
                    for alt in 1..d.candidates {
                        let mut child: Vec<u8> =
                            report.decisions[..i].iter().map(|p| p.chosen).collect();
                        child.push(alt);
                        stack.push(child);
                    }
                }
            }
        }
    }
    Explored {
        explored,
        truncated: false,
        violation: None,
    }
}

/// Seeded schedule sampling: `n` runs under [`SchedPolicy::Seeded`] with
/// seeds `seed0..seed0+n`. Complements [`explore`] past the exhaustive
/// horizon.
pub fn sample(scenario: &str, seed0: u64, n: usize) -> Explored {
    for k in 0..n {
        let spec = SchedSpec {
            seed: seed0.wrapping_add(k as u64),
            policy: SchedPolicy::Seeded,
            forced: Vec::new(),
        };
        if let Err(message) = run_scenario(scenario, &spec) {
            return Explored {
                explored: k + 1,
                truncated: false,
                violation: Some(Violation {
                    scenario: scenario.to_string(),
                    spec,
                    message,
                }),
            };
        }
    }
    Explored {
        explored: n,
        truncated: false,
        violation: None,
    }
}

/// Serialise a violation to the replay artifact format (`schedx-artifact v1`).
pub fn artifact_text(v: &Violation) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "schedx-artifact v1");
    let _ = writeln!(s, "scenario: {}", v.scenario);
    let _ = writeln!(s, "seed: {}", v.spec.seed);
    let _ = writeln!(
        s,
        "policy: {}",
        match v.spec.policy {
            SchedPolicy::MinId => "minid",
            SchedPolicy::Seeded => "seeded",
        }
    );
    let prefix: Vec<String> = v.spec.forced.iter().map(|c| c.to_string()).collect();
    let _ = writeln!(s, "prefix: {}", prefix.join(","));
    let _ = writeln!(s, "violation: {}", v.message);
    s
}

/// Parse a replay artifact produced by [`artifact_text`].
pub fn parse_artifact(text: &str) -> Result<Violation, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some("schedx-artifact v1") {
        return Err("not a schedx-artifact v1 file".to_string());
    }
    let mut scenario = None;
    let mut seed = 0u64;
    let mut policy = SchedPolicy::MinId;
    let mut forced = Vec::new();
    let mut message = String::new();
    for line in lines {
        let Some((key, val)) = line.split_once(':') else {
            continue;
        };
        let val = val.trim();
        match key.trim() {
            "scenario" => scenario = Some(val.to_string()),
            "seed" => seed = val.parse().map_err(|e| format!("bad seed: {e}"))?,
            "policy" => {
                policy = match val {
                    "minid" => SchedPolicy::MinId,
                    "seeded" => SchedPolicy::Seeded,
                    other => return Err(format!("bad policy '{other}'")),
                }
            }
            "prefix" => {
                forced = val
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(|p| p.trim().parse().map_err(|e| format!("bad prefix: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "violation" => message = val.to_string(),
            _ => {}
        }
    }
    Ok(Violation {
        scenario: scenario.ok_or("missing scenario")?,
        spec: SchedSpec {
            seed,
            policy,
            forced,
        },
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE 8 acceptance: two identical invocations produce byte-identical
    /// schedule traces and statistics, for every CI scenario.
    #[test]
    fn same_spec_same_digest_for_every_scenario() {
        for &(name, _, _) in SCENARIOS {
            let spec = SchedSpec::default();
            let a = run_scenario(name, &spec).expect(name);
            let b = run_scenario(name, &spec).expect(name);
            assert_eq!(a.1, b.1, "{name}: digests differ across identical runs");
        }
    }

    /// The tier-1-pinned bounded-depth exhaustive run: a 2-thread
    /// packed-line-table conflict, every schedule to depth 2, all invariants
    /// hold on all of them.
    #[test]
    fn counter2_bounded_exhaustive_holds() {
        let out = explore(
            "counter2",
            0,
            Bounds {
                depth: 2,
                max_schedules: 64,
            },
        );
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(!out.truncated, "depth-2 frontier must fit the budget");
        assert!(
            out.explored > 1,
            "a 2-core conflict must hit schedule decisions (got {})",
            out.explored
        );
    }

    /// Replay round trip: the explorer finds the order-canary's
    /// schedule-dependent violation, the artifact serialises it, and the
    /// parsed artifact re-runs to the *same* failure.
    #[test]
    fn order_canary_violation_replays_exactly() {
        let out = explore("order-canary", 0, Bounds::default());
        let v = out
            .violation
            .expect("depth-3 exploration must flip the canary's commit order");
        let text = artifact_text(&v);
        let parsed = parse_artifact(&text).expect("round trip");
        assert_eq!(parsed.scenario, v.scenario);
        assert_eq!(parsed.spec.forced, v.spec.forced);
        let replayed = run_scenario(&parsed.scenario, &parsed.spec)
            .expect_err("replaying the failing schedule must fail again");
        assert_eq!(replayed, v.message, "replay must reproduce the same failure");
    }

    /// Schedules that pass the canary exist too (the default one), so the
    /// canary is genuinely schedule-dependent, not merely broken.
    #[test]
    fn order_canary_passes_under_default_schedule() {
        assert!(run_scenario("order-canary", &SchedSpec::default()).is_ok());
    }

    #[test]
    fn seeded_sampling_covers_ci_scenarios() {
        for name in BOUNDED_SET {
            let out = sample(name, 100, 3);
            assert!(out.violation.is_none(), "{name}: {:?}", out.violation);
        }
    }

    #[test]
    fn artifact_rejects_garbage() {
        assert!(parse_artifact("hello").is_err());
        assert!(parse_artifact("schedx-artifact v1\nseed: x\n").is_err());
    }
}
