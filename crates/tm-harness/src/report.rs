//! Figure-shaped tables (thread sweep x algorithm) and Table-1-style statistics
//! reports.

use crate::driver::RunResult;
use htm_sim::AbortCode;
use part_htm_core::CommitPath;

/// What a table's cells mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Transactions per second (the paper's "tx/sec" micro-benchmark axes).
    Throughput,
    /// Speed-up over single-threaded sequential execution (the paper's STAMP and
    /// EigenBench axes).
    Speedup,
    /// Commits per million simulated work units (virtual-time sweeps): the
    /// deterministic, host-independent analogue of tx/s under the
    /// discrete-event clock.
    VirtualThroughput,
}

impl Unit {
    fn label(self) -> &'static str {
        match self {
            Unit::Throughput => "tx/s",
            Unit::Speedup => "speedup vs sequential",
            Unit::VirtualThroughput => "commits per Mwu (virtual time)",
        }
    }
}

/// A reproduced figure: one row per thread count, one column per algorithm.
pub struct Table {
    /// Experiment id, e.g. "fig3a".
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// Cell unit.
    pub unit: Unit,
    /// Column headers.
    pub algos: Vec<&'static str>,
    /// Row headers.
    pub threads: Vec<usize>,
    /// `cells[row][col]`.
    pub cells: Vec<Vec<f64>>,
    /// Optional Table-1-style statistics reports (one per algorithm, taken at the
    /// sweep's last thread count) appended below the series when present.
    pub reports: Vec<StatsReport>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &str, title: &str, unit: Unit, algos: Vec<&'static str>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            unit,
            algos,
            threads: Vec::new(),
            cells: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Append one thread-count row.
    pub fn push_row(&mut self, threads: usize, values: Vec<f64>) {
        assert_eq!(values.len(), self.algos.len());
        self.threads.push(threads);
        self.cells.push(values);
    }

    /// The column index of `algo`, if present.
    pub fn col(&self, algo: &str) -> Option<usize> {
        self.algos.iter().position(|a| *a == algo)
    }

    /// Value at (threads, algo) if present.
    pub fn value(&self, threads: usize, algo: &str) -> Option<f64> {
        let r = self.threads.iter().position(|&t| t == threads)?;
        Some(self.cells[r][self.col(algo)?])
    }

    /// Render in the paper's series layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {} [{}]\n",
            self.id,
            self.title,
            self.unit.label()
        ));
        out.push_str(&format!("{:>8}", "threads"));
        for a in &self.algos {
            out.push_str(&format!("  {a:>16}"));
        }
        out.push('\n');
        for (t, row) in self.threads.iter().zip(&self.cells) {
            out.push_str(&format!("{t:>8}"));
            for v in row {
                out.push_str(&format!("  {v:>16.2}"));
            }
            out.push('\n');
        }
        if !self.reports.is_empty() {
            let last = self.threads.last().copied().unwrap_or(0);
            out.push_str(&format!("\n  statistics at {last} threads:\n  "));
            out.push_str(&StatsReport::header());
            out.push('\n');
            for r in &self.reports {
                out.push_str("  ");
                out.push_str(&r.render_row());
                out.push('\n');
            }
            let hot: Vec<String> = self.reports.iter().filter_map(|r| r.render_hot_path()).collect();
            if !hot.is_empty() {
                out.push_str("\n  partitioned-path hot loop:\n");
                for line in hot {
                    out.push_str("  ");
                    out.push_str(&line);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("threads");
        for a in &self.algos {
            out.push(',');
            out.push_str(a);
        }
        out.push('\n');
        for (t, row) in self.threads.iter().zip(&self.cells) {
            out.push_str(&t.to_string());
            for v in row {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// A Table-1-style statistics report: abort breakdown and commit-path breakdown for
/// one run.
pub struct StatsReport {
    /// Algorithm name (the paper's row label).
    pub label: String,
    /// Percent of aborts per cause {conflict, capacity, explicit, other}.
    pub abort_pct: [f64; 4],
    /// Percent of commits per path {GL, HTM, SW}.
    pub commit_pct: [f64; 3],
    /// Raw totals for context.
    pub total_aborts: u64,
    /// Committed transactions.
    pub total_commits: u64,
    /// In-flight validations decided by the ring-summary fast path.
    pub val_fast_hits: u64,
    /// In-flight validations that fell back to the precise per-entry walk.
    pub val_fast_misses: u64,
    /// Fast-pass misses caused by a dirty summary (eager resets cure these).
    pub summary_miss_dirty: u64,
    /// Fast-pass misses caused by transient instability (in-flight publisher,
    /// reset churn; eager resets only create more).
    pub summary_miss_inflight: u64,
    /// Ring-summary resets performed.
    pub summary_resets: u64,
    /// Epoch-mode resets that retired a summary bank.
    pub epoch_retires: u64,
    /// Due epoch resets deferred behind a pinned validator.
    pub epoch_pinned_stalls: u64,
    /// Sub-HTM segment failures rolled back through the signature journal.
    pub journal_rollbacks: u64,
    /// Signature/journal buffers recycled from the per-thread arena.
    pub arena_reuses: u64,
    /// Arena requests served by a fresh allocation.
    pub arena_allocs: u64,
    /// Hot-loop dispatches that fell to the scalar differential oracles
    /// (non-zero only under `TmConfig::scalar_kernels`).
    pub scalar_kernel_falls: u64,
    /// Fast-path attempts the adaptive planner demoted straight to the
    /// partitioned path (learned futility, `TmConfig::adaptive_plan`).
    pub site_demotions: u64,
    /// Clean partitioned commits after which the planner doubled a site's
    /// segment-merge group.
    pub plan_merges: u64,
    /// Merged sub-HTM groups split back to finer segments after a
    /// capacity-class abort.
    pub plan_splits: u64,
    /// Retry attempts skipped because a site's learned budget was below the
    /// configured maximum.
    pub adaptive_retry_saves: u64,
    /// Transactions an admission controller shed straight to the global lock
    /// (a subset of the GL commits).
    pub shed_commits: u64,
    /// Multi-request group commits executed (tm-server batching).
    pub batch_groups: u64,
    /// Requests carried by those group commits.
    pub batch_reqs: u64,
}

impl StatsReport {
    /// Build from a run result. The "SW" column is the partitioned path for Part-HTM
    /// and the STM path for the hybrids, matching Table 1's layout.
    pub fn from_run(r: &RunResult) -> Self {
        let sw = r.tm.commit_pct(CommitPath::SubHtm) + r.tm.commit_pct(CommitPath::Stm);
        Self {
            label: r.algo.to_string(),
            abort_pct: [
                r.hw.abort_pct(AbortCode::Conflict),
                r.hw.abort_pct(AbortCode::Capacity),
                r.hw.abort_pct(AbortCode::Explicit(0)),
                // Table 1 keeps the paper's combined "other" bucket: timer + interrupt.
                r.hw.abort_pct(AbortCode::Timer) + r.hw.abort_pct(AbortCode::Interrupt),
            ],
            commit_pct: [
                r.tm.commit_pct(CommitPath::GlobalLock),
                r.tm.commit_pct(CommitPath::Htm),
                sw,
            ],
            total_aborts: r.hw.aborts_total(),
            total_commits: r.tm.commits_total(),
            val_fast_hits: r.tm.val_fast_hits,
            val_fast_misses: r.tm.val_fast_misses,
            summary_miss_dirty: r.tm.summary_miss_dirty,
            summary_miss_inflight: r.tm.summary_miss_inflight,
            summary_resets: r.tm.summary_resets,
            epoch_retires: r.tm.epoch_retires,
            epoch_pinned_stalls: r.tm.epoch_pinned_stalls,
            journal_rollbacks: r.tm.journal_rollbacks,
            arena_reuses: r.tm.arena_reuses,
            arena_allocs: r.tm.arena_allocs,
            scalar_kernel_falls: r.tm.scalar_kernel_falls,
            site_demotions: r.tm.site_demotions,
            plan_merges: r.tm.plan_merges,
            plan_splits: r.tm.plan_splits,
            adaptive_retry_saves: r.tm.adaptive_retry_saves,
            shed_commits: r.tm.shed_commits,
            batch_groups: r.tm.batch_groups,
            batch_reqs: r.tm.batch_reqs,
        }
    }

    /// The report as one flat JSON object (dependency-free, like the bench
    /// emitters): every counter under its field name, percentages under
    /// `abort_pct_{conflict,capacity,explicit,other}` and
    /// `commit_pct_{gl,htm,sw}`. This is what `tm-server` prints as its stats
    /// snapshot and writes to its periodic dump file, so the admission
    /// controller's decisions (`shed_commits`, `batch_groups`) are observable
    /// without a debugger.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\n  \"label\": \"{}\",", self.label));
        let pcts = [
            ("abort_pct_conflict", self.abort_pct[0]),
            ("abort_pct_capacity", self.abort_pct[1]),
            ("abort_pct_explicit", self.abort_pct[2]),
            ("abort_pct_other", self.abort_pct[3]),
            ("commit_pct_gl", self.commit_pct[0]),
            ("commit_pct_htm", self.commit_pct[1]),
            ("commit_pct_sw", self.commit_pct[2]),
        ];
        for (k, v) in pcts {
            out.push_str(&format!("\n  \"{k}\": {v:.4},"));
        }
        let counters = [
            ("total_aborts", self.total_aborts),
            ("total_commits", self.total_commits),
            ("val_fast_hits", self.val_fast_hits),
            ("val_fast_misses", self.val_fast_misses),
            ("summary_miss_dirty", self.summary_miss_dirty),
            ("summary_miss_inflight", self.summary_miss_inflight),
            ("summary_resets", self.summary_resets),
            ("epoch_retires", self.epoch_retires),
            ("epoch_pinned_stalls", self.epoch_pinned_stalls),
            ("journal_rollbacks", self.journal_rollbacks),
            ("arena_reuses", self.arena_reuses),
            ("arena_allocs", self.arena_allocs),
            ("scalar_kernel_falls", self.scalar_kernel_falls),
            ("site_demotions", self.site_demotions),
            ("plan_merges", self.plan_merges),
            ("plan_splits", self.plan_splits),
            ("adaptive_retry_saves", self.adaptive_retry_saves),
            ("shed_commits", self.shed_commits),
            ("batch_groups", self.batch_groups),
            ("batch_reqs", self.batch_reqs),
        ];
        for (k, v) in counters {
            out.push_str(&format!("\n  \"{k}\": {v},"));
        }
        out.pop(); // trailing comma
        out.push_str("\n}\n");
        out
    }

    /// One-line partitioned-path hot-loop breakdown (validation fast-path hit
    /// rate, summary resets, journal rollbacks), or `None` when the run never
    /// touched those counters (pure-HTM or baseline algorithms).
    pub fn render_hot_path(&self) -> Option<String> {
        let validations = self.val_fast_hits + self.val_fast_misses;
        if validations == 0 && self.summary_resets == 0 && self.journal_rollbacks == 0 {
            return None;
        }
        let hit_pct = if validations == 0 {
            0.0
        } else {
            self.val_fast_hits as f64 * 100.0 / validations as f64
        };
        let mut line = format!(
            "{:<18} | ring-val fast path {:>5.1}% of {} ({} hits, {} misses: {} dirty / {} in-flight) | summary resets {} | journal rollbacks {}",
            self.label,
            hit_pct,
            validations,
            self.val_fast_hits,
            self.val_fast_misses,
            self.summary_miss_dirty,
            self.summary_miss_inflight,
            self.summary_resets,
            self.journal_rollbacks,
        );
        if self.epoch_retires != 0 || self.epoch_pinned_stalls != 0 {
            line.push_str(&format!(
                " | epoch retires {} (deferred {})",
                self.epoch_retires, self.epoch_pinned_stalls
            ));
        }
        if self.arena_reuses != 0 || self.arena_allocs != 0 {
            line.push_str(&format!(
                " | arena {} reused / {} fresh",
                self.arena_reuses, self.arena_allocs
            ));
        }
        if self.scalar_kernel_falls != 0 {
            line.push_str(&format!(
                " | scalar-kernel falls {}",
                self.scalar_kernel_falls
            ));
        }
        if self.site_demotions != 0
            || self.plan_merges != 0
            || self.plan_splits != 0
            || self.adaptive_retry_saves != 0
        {
            line.push_str(&format!(
                " | planner: {} demotions, {} merges, {} splits, {} retry saves",
                self.site_demotions,
                self.plan_merges,
                self.plan_splits,
                self.adaptive_retry_saves
            ));
        }
        if self.shed_commits != 0 || self.batch_groups != 0 {
            line.push_str(&format!(
                " | server: {} shed, {} batches / {} reqs",
                self.shed_commits, self.batch_groups, self.batch_reqs
            ));
        }
        Some(line)
    }

    /// Render one row in Table 1's layout.
    pub fn render_row(&self) -> String {
        format!(
            "{:<18} | {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% | {:>7.1}% {:>7.1}% {:>7.1}% | {:>10} {:>10}",
            self.label,
            self.abort_pct[0],
            self.abort_pct[1],
            self.abort_pct[2],
            self.abort_pct[3],
            self.commit_pct[0],
            self.commit_pct[1],
            self.commit_pct[2],
            self.total_aborts,
            self.total_commits,
        )
    }

    /// Header matching [`StatsReport::render_row`].
    pub fn header() -> String {
        format!(
            "{:<18} | {:>9} {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8} | {:>10} {:>10}",
            "algorithm",
            "conflict",
            "capacity",
            "explicit",
            "other",
            "GL",
            "HTM",
            "SW",
            "aborts",
            "commits"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("figX", "demo", Unit::Throughput, vec!["A", "B"]);
        t.push_row(1, vec![10.0, 20.0]);
        t.push_row(2, vec![15.0, 25.0]);
        assert_eq!(t.value(2, "B"), Some(25.0));
        assert_eq!(t.value(3, "B"), None);
        let txt = t.render();
        assert!(txt.contains("figX"));
        assert!(txt.contains("threads"));
        let csv = t.to_csv();
        assert!(csv.starts_with("threads,A,B"));
        assert!(csv.contains("2,15.0000,25.0000"));
    }

    #[test]
    fn hot_path_line_only_when_counters_fire() {
        let mut r = StatsReport {
            label: "Part-HTM".into(),
            abort_pct: [0.0; 4],
            commit_pct: [0.0; 3],
            total_aborts: 0,
            total_commits: 0,
            val_fast_hits: 0,
            val_fast_misses: 0,
            summary_miss_dirty: 0,
            summary_miss_inflight: 0,
            summary_resets: 0,
            epoch_retires: 0,
            epoch_pinned_stalls: 0,
            journal_rollbacks: 0,
            arena_reuses: 0,
            arena_allocs: 0,
            scalar_kernel_falls: 0,
            site_demotions: 0,
            plan_merges: 0,
            plan_splits: 0,
            adaptive_retry_saves: 0,
            shed_commits: 0,
            batch_groups: 0,
            batch_reqs: 0,
        };
        assert!(r.render_hot_path().is_none());
        r.val_fast_hits = 3;
        r.val_fast_misses = 1;
        let line = r.render_hot_path().unwrap();
        assert!(line.contains("75.0%"));
        assert!(line.contains("3 hits"));
        assert!(!line.contains("planner:"));
        r.plan_merges = 2;
        r.site_demotions = 5;
        let line = r.render_hot_path().unwrap();
        assert!(line.contains("planner: 5 demotions, 2 merges, 0 splits, 0 retry saves"));
        r.shed_commits = 7;
        r.batch_groups = 4;
        r.batch_reqs = 16;
        let line = r.render_hot_path().unwrap();
        assert!(line.contains("server: 7 shed, 4 batches / 16 reqs"));
    }

    #[test]
    fn stats_json_is_flat_and_complete() {
        let r = StatsReport {
            label: "Part-HTM".into(),
            abort_pct: [25.0, 50.0, 12.5, 12.5],
            commit_pct: [10.0, 80.0, 10.0],
            total_aborts: 8,
            total_commits: 100,
            val_fast_hits: 3,
            val_fast_misses: 1,
            summary_miss_dirty: 1,
            summary_miss_inflight: 0,
            summary_resets: 2,
            epoch_retires: 1,
            epoch_pinned_stalls: 0,
            journal_rollbacks: 0,
            arena_reuses: 6,
            arena_allocs: 2,
            scalar_kernel_falls: 0,
            site_demotions: 0,
            plan_merges: 1,
            plan_splits: 0,
            adaptive_retry_saves: 0,
            shed_commits: 9,
            batch_groups: 4,
            batch_reqs: 16,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"label\": \"Part-HTM\""));
        assert!(j.contains("\"abort_pct_capacity\": 50.0000"));
        assert!(j.contains("\"total_commits\": 100"));
        assert!(j.contains("\"shed_commits\": 9"));
        assert!(j.contains("\"batch_reqs\": 16"));
        assert!(!j.contains(",\n}"), "no trailing comma");
        // Every key is unique (flat object).
        let keys: Vec<&str> = j.match_indices('"').map(|(i, _)| &j[i..i + 2]).collect();
        assert!(!keys.is_empty());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", "y", Unit::Speedup, vec!["A"]);
        t.push_row(1, vec![1.0, 2.0]);
    }
}
