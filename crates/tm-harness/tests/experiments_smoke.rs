//! Smoke coverage for every experiment definition: each table/figure runs end to
//! end at miniature scale and produces structurally valid output.

use tm_harness::algo::Algo;
use tm_harness::experiments::{run_experiment, run_experiment_table, ExpOpts, ALL_IDS};

fn tiny_opts() -> ExpOpts {
    ExpOpts {
        threads: Some(vec![1, 2]),
        scale: 0.02,
        algos: Some(vec![Algo::HtmGl, Algo::PartHtm]),
        stats: false,
        reps: 1,
        adaptive: None,
        backend: None,
    }
}

#[test]
fn every_experiment_runs_and_renders() {
    for id in ALL_IDS {
        let out = run_experiment(id, &tiny_opts())
            .unwrap_or_else(|| panic!("experiment {id} unknown"));
        assert!(out.contains(id), "{id}: output must carry its id\n{out}");
        assert!(!out.trim().is_empty());
    }
}

#[test]
fn figures_expose_tables_with_all_cells() {
    let opts = tiny_opts();
    for id in ALL_IDS.iter().filter(|id| **id != "table1") {
        let (_, table) = run_experiment_table(id, &opts).unwrap();
        let t = table.unwrap_or_else(|| panic!("{id}: figure must expose a table"));
        assert_eq!(t.threads, vec![1, 2], "{id}");
        // fig3b appends its extra Part-HTM-no-fast series.
        assert_eq!(&t.algos[..2], ["HTM-GL", "Part-HTM"], "{id}");
        for (row, threads) in t.cells.iter().zip(&t.threads) {
            for (v, algo) in row.iter().zip(&t.algos) {
                assert!(
                    v.is_finite() && *v > 0.0,
                    "{id}: {algo} at {threads} threads produced {v}"
                );
            }
        }
        // CSV round-trips the same data.
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1 + t.threads.len(), "{id}");
    }
}

#[test]
fn table1_exposes_no_table_but_renders_rows() {
    let opts = ExpOpts {
        threads: Some(vec![2]),
        scale: 0.05,
        algos: None,
        stats: false,
        reps: 1,
        adaptive: None,
        backend: None,
    };
    let (out, table) = run_experiment_table("table1", &opts).unwrap();
    assert!(table.is_none());
    assert!(out.contains("HTM-GL"));
    assert!(out.contains("Part-HTM"));
    assert!(out.contains('%'));
}

#[test]
fn fig3b_no_fast_only_commits_partitioned_or_gl() {
    // The PartHtmNoFast series must never record fast-path commits.
    use htm_sim::HtmConfig;
    use part_htm_core::TmConfig;
    use tm_harness::run_cell;
    use tm_workloads::micro::{self, NrmwParams};

    let p = NrmwParams::fig3a();
    let r = run_cell(
        Algo::PartHtmNoFast,
        2,
        20,
        HtmConfig::default(),
        TmConfig::default(),
        p.app_words(),
        |rt| micro::init(rt, &p),
        |s, t| micro::Nrmw::new(s, t, 64),
    );
    assert_eq!(r.tm.commits_htm, 0);
    assert_eq!(r.commits, 40);
}

#[test]
fn extended_algos_run_the_figures_too() {
    // SpHT and HLE are not in the paper's legends but must drive any experiment.
    let opts = ExpOpts {
        threads: Some(vec![2]),
        scale: 0.02,
        algos: Some(vec![Algo::SpHt, Algo::Hle]),
        stats: true,
        reps: 2,
        adaptive: None,
        backend: None,
    };
    for id in ["fig3a", "fig4a"] {
        let (out, table) = run_experiment_table(id, &opts).unwrap();
        let t = table.unwrap();
        assert_eq!(t.algos, vec!["SpHT", "HLE"]);
        assert!(t.cells[0].iter().all(|v| *v > 0.0));
        // --stats mode gathered one report per algorithm and rendered them.
        assert_eq!(t.reports.len(), 2);
        assert!(out.contains("statistics at 2 threads"));
    }
}
