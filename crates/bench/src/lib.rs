//! # tm-bench — Criterion benchmarks regenerating the paper's tables and figures
//!
//! One bench target per experiment group:
//!
//! * `fig3` — N-Reads-M-Writes (Figs. 3(a), 3(b), 3(c))
//! * `fig4` — linked list (Figs. 4(a), 4(b))
//! * `fig5` — STAMP kernels (Figs. 5(a)–5(i))
//! * `fig6` — EigenBench (Figs. 6(a), 6(b))
//! * `table1` — Labyrinth abort/commit statistics (Table 1)
//! * `ablations` — design-choice ablations called out in DESIGN.md (fast path,
//!   in-flight-validation frequency, signature size, retry budgets)
//!
//! Each benchmark measures one *cell* — a fixed number of transactions on a fresh
//! runtime — per algorithm, so Criterion's output directly compares the protocols on
//! that workload. The full thread sweeps (the figures' series) come from the `repro`
//! binary; see EXPERIMENTS.md.
//!
//! This crate's library part hosts shared helpers for the benches and the
//! standalone microbench binaries (`linebench`, `pathbench`, `ringbench`,
//! `membench` under `src/bin/`), whose common CLI/JSON plumbing lives in
//! [`cli`].

pub mod cli;

pub use cli::{baseline_number, emit_json, json_number, BenchArgs};

use part_htm_core::{TmConfig, Workload};
use tm_harness::{run_cell, Algo};

/// Default thread count for a bench cell (the Haswell core count of the paper).
pub const BENCH_THREADS: usize = 4;

/// Run a cell and return committed transactions (sanity output for benches).
pub fn bench_cell<S, W>(
    algo: Algo,
    threads: usize,
    ops: usize,
    htm: htm_sim::HtmConfig,
    app_words: usize,
    init: impl Fn(&part_htm_core::TmRuntime) -> S,
    make: impl Fn(S, usize) -> W + Sync,
) -> u64
where
    S: Copy + Send + Sync,
    W: Workload + Send,
{
    run_cell(
        algo,
        threads,
        ops,
        htm,
        TmConfig::default(),
        app_words,
        init,
        make,
    )
    .commits
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use part_htm_core::TxCtx;
    use rand::rngs::SmallRng;

    struct Inc(htm_sim::Addr);
    impl Workload for Inc {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let v = ctx.read(self.0)?;
            ctx.write(self.0, v + 1)
        }
    }

    #[test]
    fn bench_cell_commits_expected_total() {
        let n = bench_cell(
            Algo::PartHtm,
            2,
            10,
            htm_sim::HtmConfig::default(),
            64,
            |rt| rt.app(0),
            |a, _| Inc(a),
        );
        assert_eq!(n, 20);
    }
}
