//! Memory-layout microbenchmark: the word kernels, cache-line padding and
//! signature arena of the layout speed pass, measured from one binary so the
//! committed before/after numbers (`BENCH_5.json`) are reproducible from this
//! tree alone.
//!
//! Stages:
//!
//! * **kernel ns/word** — the 4-wide-unrolled kernels
//!   (`tm_sig::kernels::unrolled`) against the scalar oracles they replaced
//!   (`tm_sig::kernels::scalar`), at 2048 / 4096 / 8192 signature bits.
//!   The headline row is `intersect_dense` — the signature-intersection walk
//!   behind ring validation and summary probes, over two disjoint dense
//!   signatures (no early exit) — where the 4-wide reduce replaces a branch
//!   per word with a branch per chunk. `fold_full` (the unmasked emptiness
//!   fold) wins even bigger. `or_sparse` and `and_not_sparse` carry a
//!   write-set-shaped operand (a handful of non-zero words); their chunk skip
//!   exists to avoid dirtying destination cache lines, a cost a single-thread
//!   in-cache microbenchmark cannot see — both rows typically show the
//!   unrolled form *losing* to the auto-vectorized scalar loop here, and are
//!   reported so that trade-off stays visible.
//! * **false-sharing A/B** — four threads hammering per-thread counters that
//!   are either packed into one cache line (`[AtomicU64; 4]`, every increment
//!   invalidates the neighbours' line) or padded one-per-line
//!   (`CacheAligned<AtomicU64>`, the layout every per-thread structure in this
//!   tree uses). On a multi-core host the padded layout wins by the coherence
//!   miss cost; on a single-core host (CI) both layouts run at the same speed
//!   and the stage only checks padding costs nothing.
//! * **arena vs fresh allocation** — the per-transaction signature setup
//!   (three mirrors + a journal) served by the thread-local [`SigArena`]
//!   against constructing fresh buffers, at the inline 2048-bit geometry and
//!   the heap-backed 8192-bit geometry (where every fresh mirror is a
//!   `malloc`).
//!
//! Usage: `membench [--smoke] [--json PATH] [--baseline FILE]`
//!   --smoke      ~20x fewer iterations (CI sanity run)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F compare against a previously committed membench JSON;
//!                exit 1 when the unrolled 2048-bit `intersect_dense` kernel
//!                runs >2x the baseline ns/word, or when the padded/packed
//!                counter ratio collapses below half the baseline's (a
//!                false-sharing blow-up in a padded structure)
use htm_sim::CacheAligned;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;
use tm_bench::{baseline_number, emit_json, BenchArgs};
use tm_sig::kernels::{scalar, unrolled};
use tm_sig::{Sig, SigArena, SigJournal, SigSpec};

/// Signature sizes swept by the kernel stage, in bits (words = bits / 64).
/// 2048 is the paper geometry (`SigSpec::PAPER`); 8192 is heap-backed.
const KERNEL_BITS: [usize; 3] = [2048, 4096, 8192];
/// Threads in the false-sharing stage (the paper's Haswell core count).
const FS_THREADS: usize = 4;
/// Non-zero words in the write-set-shaped sparse operand.
const SPARSE_WORDS: usize = 3;

struct Scale {
    kernel_iters: u64,
    fs_iters: u64,
    arena_iters: u64,
}

impl Scale {
    fn full() -> Self {
        Self {
            kernel_iters: 200_000,
            fs_iters: 2_000_000,
            arena_iters: 200_000,
        }
    }
    fn smoke() -> Self {
        Self {
            kernel_iters: 10_000,
            fs_iters: 100_000,
            arena_iters: 10_000,
        }
    }
}

/// Best-of-3 wall time for `f()`, in nanoseconds.
fn best_of<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Dense pattern with every word non-zero; `phase` decorrelates operands.
fn dense(words: usize, phase: u64) -> Vec<u64> {
    (0..words as u64)
        .map(|i| (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | phase)
        .collect()
}

/// Write-set-shaped operand: [`SPARSE_WORDS`] non-zero words spread across the
/// slice (a real partitioned-path write signature hashes a handful of
/// addresses into as many words), everything else zero so whole 4-word chunks
/// qualify for the unrolled kernels' chunk skip.
fn sparse(words: usize) -> Vec<u64> {
    let mut v = vec![0u64; words];
    for k in 0..SPARSE_WORDS {
        let i = (k * (words - 1)) / (SPARSE_WORDS - 1).max(1);
        v[i] = 0x8000_0000_0000_0001u64.rotate_left((k * 17) as u32);
    }
    v
}

struct KernelRow {
    bits: usize,
    kernel: &'static str,
    scalar_ns: f64,
    unrolled_ns: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.unrolled_ns
    }
}

/// One kernel, both flavours, at one geometry. `run(scalar)` executes the
/// whole measured loop body `iters` times. Returns ns/word per flavour.
fn bench_kernel(
    bits: usize,
    kernel: &'static str,
    iters: u64,
    mut run: impl FnMut(bool),
) -> KernelRow {
    let words = (bits / 64) as u64;
    let mut ns = |is_scalar: bool| {
        best_of(|| {
            for _ in 0..iters {
                run(is_scalar);
            }
        }) as f64
            / (iters * words) as f64
    };
    let scalar_ns = ns(true);
    let unrolled_ns = ns(false);
    KernelRow {
        bits,
        kernel,
        scalar_ns,
        unrolled_ns,
    }
}

fn bench_kernels(scale: &Scale) -> Vec<KernelRow> {
    let mut rows = Vec::new();
    for &bits in &KERNEL_BITS {
        eprintln!("  [kernels] {bits} bits...");
        let words = bits / 64;
        let a = dense(words, 0xAAAA_AAAA_AAAA_AAAA);
        let b: Vec<u64> = a.iter().map(|w| !w).collect(); // disjoint, dense
        let sp = sparse(words);
        let iters = scale.kernel_iters;

        let mut dst = dense(words, 0);
        rows.push(bench_kernel(bits, "or_sparse", iters, |s| {
            let (d, src) = (std::hint::black_box(&mut dst), std::hint::black_box(&sp));
            if s {
                scalar::or_into(d, src);
            } else {
                unrolled::or_into(d, src);
            }
        }));

        rows.push(bench_kernel(bits, "intersect_dense", iters, |s| {
            let (x, y) = (std::hint::black_box(&a), std::hint::black_box(&b));
            let hit = if s {
                scalar::intersect_any(x, y)
            } else {
                unrolled::intersect_any(x, y)
            };
            assert!(!std::hint::black_box(hit));
        }));

        let mut dst = dense(words, 0);
        rows.push(bench_kernel(bits, "and_not_sparse", iters, |s| {
            let (d, src) = (std::hint::black_box(&mut dst), std::hint::black_box(&sp));
            let any = if s {
                scalar::and_not_into(d, src)
            } else {
                unrolled::and_not_into(d, src)
            };
            assert!(std::hint::black_box(any) != 0);
        }));

        rows.push(bench_kernel(bits, "fold_full", iters, |s| {
            let w = std::hint::black_box(&a);
            let acc = if s {
                scalar::fold_masked(w, u64::MAX)
            } else {
                unrolled::fold_masked(w, u64::MAX)
            };
            assert!(std::hint::black_box(acc) != 0);
        }));
    }
    rows
}

/// Four threads incrementing per-thread counters `iters` times each; the
/// counters either share one cache line (`padded == false`) or get a line
/// apiece. Returns total increments/sec.
fn bench_false_sharing(scale: &Scale, padded: bool) -> f64 {
    let iters = scale.fs_iters;
    let packed: Vec<AtomicU64> = (0..FS_THREADS).map(|_| AtomicU64::new(0)).collect();
    let lined: Vec<CacheAligned<AtomicU64>> = (0..FS_THREADS)
        .map(|_| CacheAligned::new(AtomicU64::new(0)))
        .collect();
    let mut best_ns = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..FS_THREADS {
                let (packed, lined) = (&packed, &lined);
                s.spawn(move || {
                    if padded {
                        let c = &lined[t];
                        for _ in 0..iters {
                            c.fetch_add(1, Relaxed);
                        }
                    } else {
                        let c = &packed[t];
                        for _ in 0..iters {
                            c.fetch_add(1, Relaxed);
                        }
                    }
                });
            }
        });
        best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
    }
    (FS_THREADS as u64 * iters) as f64 * 1e9 / best_ns as f64
}

struct ArenaRow {
    bits: usize,
    fresh_ns: f64,
    arena_ns: f64,
}

/// Per-transaction signature setup (three mirrors + a journal), touched and
/// torn down, arena-served vs freshly constructed. Returns ns/transaction.
fn bench_arena(scale: &Scale, spec: SigSpec) -> ArenaRow {
    let iters = scale.arena_iters;
    let touch = |r: &mut Sig, w: &mut Sig, j: &mut SigJournal| {
        j.begin(spec);
        for k in 0..4u32 {
            r.add(k * 977);
        }
        w.add(0x5555);
        std::hint::black_box((r.word(0), w.word(0)));
    };

    let fresh_ns = best_of(|| {
        for _ in 0..iters {
            let mut r = Sig::new(spec);
            let mut w = Sig::new(spec);
            let mut a = Sig::new(spec);
            let mut j = SigJournal::new();
            touch(&mut r, &mut w, &mut j);
            std::hint::black_box(&mut a);
        }
    });

    let arena_ns = best_of(|| {
        for _ in 0..iters {
            let (mut r, mut w, mut a, mut j) = SigArena::with(|ar| {
                (
                    ar.take_sig(spec),
                    ar.take_sig(spec),
                    ar.take_sig(spec),
                    ar.take_journal(),
                )
            });
            touch(&mut r, &mut w, &mut j);
            std::hint::black_box(&mut a);
            SigArena::with(|ar| {
                ar.recycle_sig(r);
                ar.recycle_sig(w);
                ar.recycle_sig(a);
                ar.recycle_journal(j);
            });
        }
    });

    ArenaRow {
        bits: spec.bits() as usize,
        fresh_ns: fresh_ns as f64 / iters as f64,
        arena_ns: arena_ns as f64 / iters as f64,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.smoke {
        Scale::smoke()
    } else {
        Scale::full()
    };

    eprintln!("membench: {} run", args.run_kind());

    let kernels = bench_kernels(&scale);

    eprintln!("  [false-sharing] {FS_THREADS} threads, packed line...");
    let packed_ops = bench_false_sharing(&scale, false);
    eprintln!("  [false-sharing] {FS_THREADS} threads, padded lines...");
    let padded_ops = bench_false_sharing(&scale, true);
    let fs_ratio = padded_ops / packed_ops;

    eprintln!("  [arena] inline and heap-backed geometries...");
    let arena_rows = vec![
        bench_arena(&scale, SigSpec::PAPER),
        bench_arena(&scale, SigSpec::new(8192)),
    ];

    println!("membench results ({} run)", args.run_kind());
    println!("                                     scalar     unrolled     speedup");
    for r in &kernels {
        println!(
            "{:<16} {:>5} bits   {:>10.3} ns {:>10.3} ns   {:>6.2}x   (ns/word)",
            r.kernel,
            r.bits,
            r.scalar_ns,
            r.unrolled_ns,
            r.speedup()
        );
    }
    println!(
        "counters {FS_THREADS}t       {packed_ops:>12.3e} op/s {padded_ops:>12.3e} op/s   {fs_ratio:>6.2}x   (packed / padded)"
    );
    for r in &arena_rows {
        println!(
            "sig setup {:>5} bits   {:>10.1} ns {:>10.1} ns   {:>6.2}x   (fresh / arena)",
            r.bits,
            r.fresh_ns,
            r.arena_ns,
            r.fresh_ns / r.arena_ns
        );
    }

    let headline = kernels
        .iter()
        .find(|r| r.kernel == "intersect_dense" && r.bits == 2048)
        .unwrap();

    let kernel_json: Vec<String> = kernels
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"bits\": {}, \"kernel\": \"{}\", \"scalar_ns_per_word\": {:.4}, ",
                    "\"unrolled_ns_per_word\": {:.4}, \"speedup\": {:.3}}}"
                ),
                r.bits,
                r.kernel,
                r.scalar_ns,
                r.unrolled_ns,
                r.speedup()
            )
        })
        .collect();
    let arena_json: Vec<String> = arena_rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"bits\": {}, \"fresh_ns_per_tx\": {:.1}, ",
                    "\"arena_ns_per_tx\": {:.1}, \"speedup\": {:.3}}}"
                ),
                r.bits,
                r.fresh_ns,
                r.arena_ns,
                r.fresh_ns / r.arena_ns
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"membench\",\n",
            "  \"config\": {{\"smoke\": {}, \"fs_threads\": {}, \"sparse_words\": {}}},\n",
            "  \"kernels\": [\n{}\n  ],\n",
            "  \"headline_2048\": {{\"intersect_unrolled_ns_per_word\": {:.4}, ",
            "\"intersect_speedup_2048\": {:.3}}},\n",
            "  \"false_sharing\": {{\"packed_ops_per_sec\": {:.0}, ",
            "\"padded_ops_per_sec\": {:.0}, \"padded_over_packed\": {:.3}}},\n",
            "  \"arena\": [\n{}\n  ]\n",
            "}}\n"
        ),
        args.smoke,
        FS_THREADS,
        SPARSE_WORDS,
        kernel_json.join(",\n"),
        headline.unrolled_ns,
        headline.speedup(),
        packed_ops,
        padded_ops,
        fs_ratio,
        arena_json.join(",\n"),
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let base_ns = baseline_number(path, "intersect_unrolled_ns_per_word");
        let now_ns = headline.unrolled_ns;
        println!(
            "regression gate: intersect_dense 2048-bit {now_ns:.4} ns/word vs baseline {base_ns:.4} ({:.2}x)",
            now_ns / base_ns
        );
        if now_ns > base_ns * 2.0 {
            eprintln!("FAIL: unrolled intersect_dense kernel regressed more than 2x vs {path}");
            std::process::exit(1);
        }
        let base_fs = baseline_number(path, "padded_over_packed");
        println!(
            "regression gate: padded/packed counters {fs_ratio:.3} vs baseline {base_fs:.3}"
        );
        if fs_ratio < base_fs * 0.5 {
            eprintln!("FAIL: padded counters collapsed vs packed (false-sharing blow-up) vs {path}");
            std::process::exit(1);
        }
    }
}
