//! Segment-planner microbenchmark: the adaptive abort-profiled planner
//! (`TmConfig::adaptive_plan`) against pinned static segmentations, from one
//! binary so the committed before/after numbers (`BENCH_6.json`) are
//! reproducible from this tree alone.
//!
//! Rows:
//!
//! * **capacity-heavy, fine-declared** — an N-Reads-M-Writes transaction that
//!   overflows the HTM read budget as a whole, declared at finest granularity
//!   (32 tiny segments, `NrmwParams::fine_grained`). Three plans:
//!   - `static-1`: `adaptive_plan: false`, `plan_group: 1` — every declared
//!     segment is its own sub-HTM transaction (the paper's semantics when the
//!     programmer's segment count is over-cautious);
//!   - `static-tuned`: `adaptive_plan: false`, `plan_group` pinned to the best
//!     hand-tuned merge width for this geometry;
//!   - `adaptive`: the planner learns the group width from capacity-class
//!     aborts and clean commits at runtime.
//! * **hint-optimal** — the Fig. 3(c) time-limited shape, whose declared 4x25
//!   segmentation is already the hand-computed optimum. The static plan *is*
//!   the best plan; the adaptive row measures the cost of learning that
//!   (merge probes that abort and split back).
//!
//! Usage: `partbench [--smoke] [--json PATH] [--baseline FILE]`
//!   --smoke      ~20x fewer iterations (CI sanity run)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F gate against a previously committed partbench JSON:
//!                >10% regression of the adaptive capacity-heavy row, an
//!                adaptive/static-1 merge speed-up below 1.2x, or the
//!                hint-optimal adaptive row falling more than 8% behind the
//!                hand-tuned static plan, fails (exit 1). The acceptance
//!                target on the hint-optimal row is 5% (the committed
//!                `BENCH_6.json` records the measured ratio); the gate's
//!                extra 3 points absorb host noise in unattended runs.

use htm_sim::HtmConfig;
use part_htm_core::{PartHtm, TmConfig, TmRuntime};
use tm_bench::{baseline_number, emit_json, BenchArgs};
use tm_harness::{run_threads, RunResult, StatsReport};
use tm_workloads::micro;

/// Worker threads for every row (matches pathbench's end-to-end stage).
const THREADS: usize = 4;
/// Hand-tuned merge width for the capacity-heavy row: 32 fine segments of
/// ~3 cache lines each against a 64-line read budget — groups of 8 (24 lines
/// plus write lines) fit with margin, groups of 16 flirt with the budget.
const TUNED_GROUP: u32 = 8;

struct Scale {
    cap_ops_per_thread: usize,
    opt_ops_per_thread: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            cap_ops_per_thread: 2_000,
            opt_ops_per_thread: 4_000,
        }
    }
    fn smoke() -> Self {
        Self {
            cap_ops_per_thread: 100,
            opt_ops_per_thread: 200,
        }
    }
}

/// The capacity-heavy workload: Fig. 3(b)'s shape scaled to bench time, then
/// declared at finest granularity. The whole read set (~96 lines) overflows
/// the 64-line budget, so the fast path is futile and the partitioned path
/// carries every transaction; each fine segment alone is ~3 lines.
fn capacity_params() -> micro::NrmwParams {
    micro::NrmwParams {
        array_len: 4_000,
        n_reads: 768,
        m_writes: 16,
        work_per_iter: 0,
        segments: 8,
        stride: 1,
    }
    .fine_grained()
}

fn capacity_htm() -> HtmConfig {
    HtmConfig {
        read_lines_max: 64,
        ..HtmConfig::default()
    }
}

/// The hint-optimal workload: Fig. 3(c)'s time-limited shape at test scale.
/// 25 iterations x ~600 work units per declared segment sit just under the
/// 20k quantum — the declared segmentation is the optimum.
fn optimal_params() -> micro::NrmwParams {
    micro::NrmwParams {
        array_len: 2_000,
        ..micro::NrmwParams::fig3c()
    }
}

fn optimal_htm() -> HtmConfig {
    HtmConfig {
        quantum: 20_000,
        ..HtmConfig::default()
    }
}

/// One (workload, plan) cell: best of three `PartHtm` runs at [`THREADS`]
/// threads (ops/sec = committed transactions per second).
fn bench_cell(
    p: micro::NrmwParams,
    htm: HtmConfig,
    adaptive: bool,
    plan_group: u32,
    ops_per_thread: usize,
) -> RunResult {
    let cfg = TmConfig {
        adaptive_plan: adaptive,
        plan_group,
        ..TmConfig::default()
    };
    (0..3)
        .map(|_| {
            let rt = TmRuntime::new(htm.clone(), cfg.clone(), THREADS, p.app_words());
            let shared = micro::init(&rt, &p);
            run_threads::<PartHtm, _, _>(&rt, THREADS, ops_per_thread, |t| {
                micro::Nrmw::new(shared, t, 64)
            })
        })
        .max_by(|a, b| a.throughput().total_cmp(&b.throughput()))
        .expect("three runs")
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!("partbench: {} run", args.run_kind());

    let cap = capacity_params();
    eprintln!(
        "  [capacity] {} fine segments, static-1 plan...",
        cap.segments
    );
    let cap_static1 = bench_cell(cap, capacity_htm(), false, 1, scale.cap_ops_per_thread);
    eprintln!("  [capacity] static-tuned plan (group {TUNED_GROUP})...");
    let cap_tuned = bench_cell(
        cap,
        capacity_htm(),
        false,
        TUNED_GROUP,
        scale.cap_ops_per_thread,
    );
    eprintln!("  [capacity] adaptive planner...");
    let cap_adaptive = bench_cell(cap, capacity_htm(), true, 1, scale.cap_ops_per_thread);

    let opt = optimal_params();
    eprintln!("  [optimal] {} hand-counted segments, static plan...", opt.segments);
    let opt_static = bench_cell(opt, optimal_htm(), false, 1, scale.opt_ops_per_thread);
    eprintln!("  [optimal] adaptive planner...");
    let opt_adaptive = bench_cell(opt, optimal_htm(), true, 1, scale.opt_ops_per_thread);

    let merge_speedup = cap_adaptive.throughput() / cap_static1.throughput();
    let cap_vs_tuned = cap_adaptive.throughput() / cap_tuned.throughput();
    let opt_ratio = opt_adaptive.throughput() / opt_static.throughput();

    println!("partbench results ({} run)", args.run_kind());
    println!(
        "capacity-heavy   static-1 {:>12.0} tx/s   static-tuned {:>12.0} tx/s   adaptive {:>12.0} tx/s",
        cap_static1.throughput(),
        cap_tuned.throughput(),
        cap_adaptive.throughput()
    );
    println!(
        "                 adaptive vs static-1 {merge_speedup:>6.2}x   vs hand-tuned {cap_vs_tuned:>6.2}x"
    );
    println!(
        "hint-optimal     static   {:>12.0} tx/s   adaptive {:>12.0} tx/s   ratio {opt_ratio:>6.3}",
        opt_static.throughput(),
        opt_adaptive.throughput()
    );
    for (label, r) in [("capacity adaptive", &cap_adaptive), ("optimal adaptive", &opt_adaptive)] {
        let rep = StatsReport::from_run(r);
        if let Some(line) = rep.render_hot_path() {
            println!("[{label}] {line}");
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"partbench\",\n",
            "  \"config\": {{\"smoke\": {}, \"threads\": {}, \"cap_segments\": {}, ",
            "\"tuned_group\": {}, \"opt_segments\": {}}},\n",
            "  \"capacity_heavy\": {{\"static1_ops_per_sec\": {:.0}, ",
            "\"tuned_ops_per_sec\": {:.0}, \"adaptive_ops_per_sec\": {:.0}, ",
            "\"merge_speedup\": {:.3}, \"vs_tuned\": {:.3}, ",
            "\"plan_merges\": {}, \"plan_splits\": {}, \"site_demotions\": {}, ",
            "\"retry_saves\": {}}},\n",
            "  \"hint_optimal\": {{\"static_ops_per_sec\": {:.0}, ",
            "\"adaptive_ops_per_sec\": {:.0}, \"ratio\": {:.3}, ",
            "\"plan_splits\": {}}}\n",
            "}}\n"
        ),
        smoke,
        THREADS,
        cap.segments,
        TUNED_GROUP,
        opt.segments,
        cap_static1.throughput(),
        cap_tuned.throughput(),
        cap_adaptive.throughput(),
        merge_speedup,
        cap_vs_tuned,
        cap_adaptive.tm.plan_merges,
        cap_adaptive.tm.plan_splits,
        cap_adaptive.tm.site_demotions,
        cap_adaptive.tm.adaptive_retry_saves,
        opt_static.throughput(),
        opt_adaptive.throughput(),
        opt_ratio,
        opt_adaptive.tm.plan_splits,
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let base = baseline_number(path, "adaptive_ops_per_sec");
        let now = cap_adaptive.throughput();
        let ratio = now / base;
        println!(
            "regression gate: capacity-heavy adaptive {now:.0} vs baseline {base:.0} ({ratio:.2}x)"
        );
        let mut failed = false;
        if ratio < 0.90 {
            eprintln!("FAIL: adaptive capacity-heavy throughput regressed more than 10% vs {path}");
            failed = true;
        }
        if merge_speedup < 1.2 {
            eprintln!(
                "FAIL: adaptive planner only {merge_speedup:.2}x over static-1 (floor 1.2x)"
            );
            failed = true;
        }
        if opt_ratio < 0.92 {
            eprintln!(
                "FAIL: adaptive planner {opt_ratio:.3} of hand-tuned static on the \
                 hint-optimal row (gate floor 0.92; acceptance target 0.95)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
