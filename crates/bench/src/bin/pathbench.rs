//! Partitioned-path hot-loop microbenchmark: the three stages this tree's
//! zero-clone/summary overhaul targets, each measured against the reference
//! mechanism it replaced, from one binary so the committed before/after numbers
//! (`BENCH_2.json`) are reproducible from this tree alone.
//!
//! Stages:
//!
//! * **segment retry** — saving and rolling back the read/write signature pair
//!   around a failed sub-HTM segment: the clone-based save/restore
//!   (`CloneSaved`, the pre-overhaul mechanism, kept as the test oracle) versus
//!   the word-level `SigJournal`;
//! * **no-conflict ring validation** — in-flight validation of a read signature
//!   against a ring that accumulated a timestamp lag, with no real conflict
//!   (the common case): the precise per-entry walk (`validate_nt`) versus the
//!   summary fast path (`validate_summarized_nt`), at 1–8 validator threads;
//! * **global commit publish** — software ring publication with and without
//!   summary maintenance (the overhaul's added cost on the commit path);
//! * **end-to-end partitioned path** — the real `PartHtm` executor with the
//!   fast path disabled (every transaction runs sub-HTM commit cycles,
//!   validation and a global commit), on the N-Reads-M-Writes workload.
//!
//! Usage: `pathbench [--smoke] [--json PATH] [--baseline FILE] [--shards N]
//!                    [--epochs on|off]`
//!   --smoke      ~20x fewer iterations (CI sanity run)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F compare the end-to-end 4-thread ops/sec against a previously
//!                committed pathbench JSON; exit 1 on a >10% regression
//!   --shards N   ring shard count for the end-to-end stage (default: the
//!                runtime default, 8; `--shards 1` recovers the single-ring
//!                commit protocol, which is how the committed baseline is
//!                re-recorded when the host machine's performance drifts)
//!   --epochs M   summary reset protocol for the end-to-end stage: `on`
//!                (default; epoch banks + adaptive density controller) or
//!                `off` (PR 3's generation seqlock, the differential oracle)

use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};
use part_htm_core::{PartHtm, TmConfig, TmRuntime};
use std::time::Instant;
use tm_bench::{baseline_number, emit_json, BenchArgs};
use tm_harness::{run_threads, StatsReport};
use tm_sig::{CloneSaved, Ring, RingSummary, Sig, SigJournal, SigSlot, SigSpec};
use tm_workloads::micro;

/// Ring entries published before the validation stage (the timestamp lag every
/// precise validation has to walk).
const VALIDATION_LAG: u64 = 48;
/// Validator thread counts swept in the validation stage.
const VALIDATION_THREADS: [usize; 4] = [1, 2, 4, 8];
/// Worker threads of the end-to-end stage (matches linebench).
const E2E_THREADS: usize = 4;

struct Scale {
    retry_iters: u64,
    val_iters: u64,
    publish_iters: u64,
    e2e_ops_per_thread: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            retry_iters: 500_000,
            val_iters: 20_000,
            publish_iters: 100_000,
            e2e_ops_per_thread: 30_000,
        }
    }
    fn smoke() -> Self {
        Self {
            retry_iters: 25_000,
            val_iters: 1_000,
            publish_iters: 5_000,
            e2e_ops_per_thread: 1_500,
        }
    }
}

/// Best-of-3 wall time for `f()`, in nanoseconds.
fn best_of<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// The executor's journaled-add pattern (see `SigPair::add_journaled`).
#[inline]
fn journaled_add(j: &mut SigJournal, sig: &mut Sig, slot: SigSlot, addr: u32) {
    let (w, m) = sig.spec().slot_of(addr);
    let old = sig.word(w);
    if old & m == 0 {
        j.note(slot, w, old);
        sig.add_slot(w, m);
    }
}

/// One aborted sub-HTM segment attempt of a capacity-limited transaction — the
/// partitioned path's target regime: the enclosing transaction has already
/// accumulated a large read set (a mostly-saturated signature), the failing
/// segment touches a handful of lines, and the attempt must restore the
/// mirrors exactly. The snapshot escapes through `black_box`, as it does in the
/// executor (it lives across the hardware-attempt closure), so the clone's
/// allocation cannot be elided. Returns (clone ns/retry, journal ns/retry).
fn bench_segment_retry(scale: &Scale) -> (f64, f64) {
    const SEG_ADDRS: u32 = 8;
    let spec = SigSpec::PAPER;
    let mut r = Sig::new(spec);
    let mut w = Sig::new(spec);
    // ~600 addresses: the read mirror of a fig-3(b)-shaped transaction midway
    // through its segments (most signature words non-zero).
    for i in 0..600u32 {
        r.add(i * 977);
        if i % 4 == 0 {
            w.add((i * 977) ^ 0x5555);
        }
    }
    // 8 reads + 2 writes per segment, read-dominated like the capacity-limited
    // workloads (fig. 3(b): 625 reads, ~6 writes per sub-transaction).
    const SEG_WRITES: u32 = 2;
    let iters = scale.retry_iters;
    // Most segment accesses re-hit lines the transaction already recorded; a
    // couple are new (k chosen so 6 of 8 addresses come from the seeded pool).
    let seg_addr = |i: u64, k: u32| -> u32 {
        if k < 6 {
            ((i as u32).wrapping_mul(131).wrapping_add(k * 149) % 600) * 977
        } else {
            100_000 + (i as u32).wrapping_mul(31).wrapping_add(k * 7919)
        }
    };

    let clone_ns = best_of(|| {
        for i in 0..iters {
            let saved = std::hint::black_box(CloneSaved::save(&r, &w));
            for k in 0..SEG_ADDRS {
                r.add(seg_addr(i, k));
            }
            for k in 0..SEG_WRITES {
                w.add(seg_addr(i, k * 4) ^ 0x5555);
            }
            saved.restore(&mut r, &mut w);
        }
    });

    let mut j = SigJournal::new();
    let journal_ns = best_of(|| {
        for i in 0..iters {
            j.begin(spec);
            std::hint::black_box(&j);
            for k in 0..SEG_ADDRS {
                journaled_add(&mut j, &mut r, SigSlot::Read, seg_addr(i, k));
            }
            for k in 0..SEG_WRITES {
                journaled_add(&mut j, &mut w, SigSlot::Write, seg_addr(i, k * 4) ^ 0x5555);
            }
            j.rollback(&mut r, &mut w);
        }
    });

    (clone_ns as f64 / iters as f64, journal_ns as f64 / iters as f64)
}

/// Shared fixture for the validation stage: a ring carrying `VALIDATION_LAG`
/// published entries, the matching summary, and a read signature guaranteed
/// disjoint from everything published.
struct ValidationFixture {
    sys: HtmSystem,
    ring: Ring,
    summary: RingSummary,
    rsig: Sig,
}

fn validation_fixture() -> ValidationFixture {
    let spec = SigSpec::PAPER;
    let cfg = HtmConfig {
        max_threads: *VALIDATION_THREADS.iter().max().unwrap(),
        ..HtmConfig::default()
    };
    let sys = HtmSystem::new(cfg, 1 << 20);
    let mut b = HeapBuilder::new(1 << 20);
    let ring = Ring::alloc(&mut b, 1024, spec);
    let summary = RingSummary::new(spec);

    let th = sys.thread(0);
    let mut union = Sig::new(spec);
    for i in 0..VALIDATION_LAG {
        let mut sig = Sig::new(spec);
        for k in 0..3u64 {
            sig.add((50_000 + i * 101 + k * 37) as u32);
        }
        union.union_with(&sig);
        ring.publish_software_summarized(&th, &sig, &summary);
    }

    // A reader of three addresses whose bits collide with no published entry, so
    // every validation is conflict-free and both variants return `Ok(lag)`.
    let mut rsig = Sig::new(spec);
    let mut found = 0u32;
    for a in 0u32.. {
        let mut probe = Sig::new(spec);
        probe.add(a);
        if !probe.intersects(&union) && !probe.intersects(&rsig) {
            rsig.add(a);
            found += 1;
            if found == 3 {
                break;
            }
        }
    }
    assert!(!rsig.intersects(&union));

    ValidationFixture {
        sys,
        ring,
        summary,
        rsig,
    }
}

/// No-conflict in-flight validation at `threads` validators. Returns
/// (precise ns/validation, summary ns/validation).
fn bench_validation(f: &ValidationFixture, scale: &Scale, threads: usize) -> (f64, f64) {
    let iters = scale.val_iters;

    // Sanity: the summary fast path must actually decide this workload.
    {
        let th = f.sys.thread(0);
        let (res, fast) = f
            .ring
            .validate_summarized_nt(&th, &f.summary, &f.rsig, 0);
        assert_eq!(res, Ok(VALIDATION_LAG));
        assert!(fast, "summary fast path missed a conflict-free validation");
        assert_eq!(f.ring.validate_nt(&th, &f.rsig, 0), Ok(VALIDATION_LAG));
    }

    let run = |summarized: bool| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let (sys, ring, summary, rsig) = (&f.sys, &f.ring, &f.summary, &f.rsig);
                    s.spawn(move || {
                        let th = sys.thread(t);
                        for _ in 0..iters {
                            let ok = if summarized {
                                ring.validate_summarized_nt(&th, summary, rsig, 0).0
                            } else {
                                ring.validate_nt(&th, rsig, 0)
                            };
                            assert_eq!(std::hint::black_box(ok), Ok(VALIDATION_LAG));
                        }
                    });
                }
            });
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
        best
    };

    let precise_ns = run(false);
    let summary_ns = run(true);
    (
        precise_ns as f64 / iters as f64,
        summary_ns as f64 / iters as f64,
    )
}

/// Software ring publication with and without summary maintenance. Returns
/// (plain ns/publish, summarized ns/publish).
fn bench_publish(scale: &Scale) -> (f64, f64) {
    let spec = SigSpec::PAPER;
    let sys = HtmSystem::new(HtmConfig::default(), 1 << 20);
    let mut b = HeapBuilder::new(1 << 20);
    let ring = Ring::alloc(&mut b, 1024, spec);
    let summary = RingSummary::new(spec);
    let th = sys.thread(0);

    let sigs: Vec<Sig> = (0..16u32)
        .map(|i| {
            let mut s = Sig::new(spec);
            for k in 0..3 {
                s.add(i * 1013 + k * 37);
            }
            s
        })
        .collect();
    let iters = scale.publish_iters;

    let plain_ns = best_of(|| {
        for i in 0..iters {
            ring.publish_software(&th, &sigs[(i % 16) as usize]);
        }
    });
    let summarized_ns = best_of(|| {
        for i in 0..iters {
            ring.publish_software_summarized(&th, &sigs[(i % 16) as usize], &summary);
        }
    });

    (
        plain_ns as f64 / iters as f64,
        summarized_ns as f64 / iters as f64,
    )
}

/// End-to-end partitioned-path throughput: `PartHtm` with the fast path
/// disabled on the Fig. 3(a)-shaped N-Reads-M-Writes workload. Best of three
/// runs (the stage is scheduler-noise-bound on an oversubscribed host);
/// returns the fastest run's result (ops/sec = committed transactions per
/// second).
fn bench_end_to_end(
    scale: &Scale,
    threads: usize,
    shards: Option<usize>,
    epochs: Option<bool>,
) -> tm_harness::RunResult {
    let p = micro::NrmwParams::fig3a();
    let mut cfg = TmConfig {
        skip_fast: true,
        ..TmConfig::default()
    };
    if let Some(s) = shards {
        cfg.ring_shards = s;
    }
    if let Some(e) = epochs {
        cfg.summary_epochs = e;
    }
    (0..3)
        .map(|_| {
            let rt = TmRuntime::new(HtmConfig::default(), cfg.clone(), threads, p.app_words());
            let shared = micro::init(&rt, &p);
            run_threads::<PartHtm, _, _>(&rt, threads, scale.e2e_ops_per_thread, |t| {
                micro::Nrmw::new(shared, t, 64)
            })
        })
        .max_by(|a, b| a.throughput().total_cmp(&b.throughput()))
        .expect("three runs")
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let shards: Option<usize> = args.parsed("--shards");
    let epochs: Option<bool> = args.value("--epochs").map(|m| match m {
        "on" => true,
        "off" => false,
        _ => panic!("--epochs requires on|off"),
    });
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!("pathbench: {} run", args.run_kind());

    eprintln!("  [retry] clone vs journal segment rollback...");
    let (clone_ns, journal_ns) = bench_segment_retry(&scale);
    let retry_speedup = clone_ns / journal_ns;

    eprintln!("  [validate] precise vs summary, no-conflict...");
    let fixture = validation_fixture();
    let val: Vec<(usize, f64, f64)> = VALIDATION_THREADS
        .iter()
        .map(|&t| {
            eprintln!("  [validate] {t} thread(s)...");
            let (p, s) = bench_validation(&fixture, &scale, t);
            (t, p, s)
        })
        .collect();

    eprintln!("  [publish] plain vs summarized software publish...");
    let (pub_plain_ns, pub_sum_ns) = bench_publish(&scale);
    let publish_overhead_pct = (pub_sum_ns / pub_plain_ns - 1.0) * 100.0;

    eprintln!("  [e2e] partitioned path, 1 thread...");
    let e2e_1t = bench_end_to_end(&scale, 1, shards, epochs);
    eprintln!("  [e2e] partitioned path, {E2E_THREADS} threads...");
    let e2e_mt = bench_end_to_end(&scale, E2E_THREADS, shards, epochs);

    println!("pathbench results ({} run)", if smoke { "smoke" } else { "full" });
    println!(
        "segment retry           {:>10.1} ns {:>10.1} ns   {:>6.2}x   (clone / journal)",
        clone_ns, journal_ns, retry_speedup
    );
    for &(t, p, s) in &val {
        println!(
            "validation {}t           {:>10.1} ns {:>10.1} ns   {:>6.2}x   (precise / summary)",
            t,
            p,
            s,
            p / s
        );
    }
    println!(
        "sw publish              {:>10.1} ns {:>10.1} ns   {:>+5.1}%   (plain / summarized)",
        pub_plain_ns, pub_sum_ns, publish_overhead_pct
    );
    println!(
        "end-to-end 1t: {:.2e} tx/s   {E2E_THREADS}t: {:.2e} tx/s",
        e2e_1t.throughput(),
        e2e_mt.throughput()
    );
    let report = StatsReport::from_run(&e2e_mt);
    println!("{}", StatsReport::header());
    println!("{}", report.render_row());
    if let Some(line) = report.render_hot_path() {
        println!("{line}");
    }

    let val_json: Vec<String> = val
        .iter()
        .map(|&(t, p, s)| {
            format!(
                concat!(
                    "    {{\"threads\": {}, \"precise_ns_per_val\": {:.1}, ",
                    "\"summary_ns_per_val\": {:.1}, \"speedup\": {:.3}}}"
                ),
                t,
                p,
                s,
                p / s
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pathbench\",\n",
            "  \"config\": {{\"smoke\": {}, \"sig_bits\": {}, \"validation_lag\": {}, ",
            "\"e2e_threads\": {}}},\n",
            "  \"segment_retry\": {{\"clone_ns_per_retry\": {:.1}, ",
            "\"journal_ns_per_retry\": {:.1}, \"speedup\": {:.3}}},\n",
            "  \"validation_no_conflict\": [\n{}\n  ],\n",
            "  \"publish\": {{\"plain_ns_per_op\": {:.1}, \"summarized_ns_per_op\": {:.1}, ",
            "\"overhead_pct\": {:.2}}},\n",
            "  \"end_to_end_partitioned\": {{\"ops_per_sec_1t\": {:.0}, ",
            "\"ops_per_sec_{}t\": {:.0}, \"val_fast_hits\": {}, \"val_fast_misses\": {}, ",
            "\"summary_resets\": {}, \"journal_rollbacks\": {}}}\n",
            "}}\n"
        ),
        smoke,
        SigSpec::PAPER.bits(),
        VALIDATION_LAG,
        E2E_THREADS,
        clone_ns,
        journal_ns,
        retry_speedup,
        val_json.join(",\n"),
        pub_plain_ns,
        pub_sum_ns,
        publish_overhead_pct,
        e2e_1t.throughput(),
        E2E_THREADS,
        e2e_mt.throughput(),
        e2e_mt.tm.val_fast_hits,
        e2e_mt.tm.val_fast_misses,
        e2e_mt.tm.summary_resets,
        e2e_mt.tm.journal_rollbacks,
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let key = format!("ops_per_sec_{E2E_THREADS}t");
        let base = baseline_number(path, &key);
        let now = e2e_mt.throughput();
        let ratio = now / base;
        println!("regression gate: end-to-end {E2E_THREADS}t {now:.0} vs baseline {base:.0} ({ratio:.2}x)");
        if ratio < 0.90 {
            eprintln!("FAIL: end-to-end throughput regressed more than 10% vs {path}");
            std::process::exit(1);
        }
    }
}
