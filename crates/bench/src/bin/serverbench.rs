//! Server-scale microbenchmark: group commit and admission control under
//! open-loop load, emitting `BENCH_8.json`.
//!
//! Rows:
//!
//! * **small-tx (wall)** — a saturated stream of small single-shard KV/queue
//!   requests on 4 workers, `batch_max: 8` against the unbatched
//!   `batch_max: 1` differential oracle. Group commit amortizes the fixed
//!   per-transaction costs (HTM begin/commit, glock check, ring publish)
//!   across the batch; the acceptance floor is a 1.3x goodput gain.
//! * **small-tx (virtual)** — the same comparison under the deterministic
//!   virtual clock: goodput in requests per million work units plus
//!   p50/p99/p999 sojourn latency, bit-reproducible from the spec (the cell
//!   CI can diff exactly).
//! * **overload (wall)** — a hot-key transfer-heavy mix. First a saturated
//!   run with the controller on measures the sustainable service rate
//!   ("saturation"); then a 2x-overload Poisson stream runs with admission
//!   control on and off. The controller sheds excess to the serialized
//!   slow path and must keep goodput within 0.8x of saturation; the
//!   no-controller baseline shows the speculative retry convoy (lower
//!   goodput, inflated p999).
//!
//! Usage: `serverbench [--smoke] [--json PATH] [--baseline FILE]`
//!   --smoke      ~20x fewer requests (CI sanity run)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F gate against a committed serverbench JSON: batched
//!                goodput regressing >10%, batch speed-up below 1.3x,
//!                overload goodput below 0.8x saturation, the controller
//!                not beating the no-controller baseline, or overload p999
//!                blowing up >3x over the committed value, fails (exit 1).

use htm_sim::vclock::SchedSpec;
use htm_sim::HtmConfig;
use part_htm_core::{PartHtm, TmConfig, TmRuntime};
use tm_bench::{baseline_number, emit_json, BenchArgs};
use tm_harness::loadgen::ArrivalProcess;
use tm_harness::StatsReport;
use tm_server::service::{
    gen_requests, run_server, Request, ServeMode, ServeOpts, ServerReport, ServerSpec, ServerState,
};
use tm_server::{AdmissionSpec, TrafficMix};

/// Worker threads (matches the other benches' 4-core cells).
const WORKERS: usize = 4;

/// Service geometry: 8 shards, room for the preloaded balances plus churn.
const SPEC: ServerSpec = ServerSpec {
    shards: 8,
    slots_per_shard: 1024,
    queue_cap: 64,
};

struct Scale {
    small_n: usize,
    overload_n: usize,
}

impl Scale {
    fn full() -> Self {
        Self {
            small_n: 80_000,
            overload_n: 24_000,
        }
    }
    fn smoke() -> Self {
        Self {
            small_n: 4_000,
            overload_n: 1_200,
        }
    }
}

/// The hot-key transfer mix of the overload row: almost every request moves
/// balance between two of four hot keys, so speculative execution at 4
/// workers is conflict-bound.
fn overload_mix() -> TrafficMix {
    TrafficMix {
        tenants: 2,
        keys: 64,
        kv_weight: 1,
        queue_weight: 0,
        transfer_weight: 8,
        hot_pct: 90,
        hot_keys: 4,
    }
}

/// Balances for the transfer mix (large enough that transfers rarely no-op
/// on insufficient funds).
fn preload_items(mix: &TrafficMix) -> Vec<(u32, u32, u64)> {
    (0..mix.tenants)
        .flat_map(|t| (0..mix.keys).map(move |k| (t, k, 1_000_000)))
        .collect()
}

/// HTM geometry for the overload row: a tight timer quantum makes the
/// transfer mix genuinely resource-limited (capacity-class trouble), the
/// regime the admission controller exists for. The small-tx rows keep the
/// default geometry (batching is measured on *healthy* hardware).
fn overload_htm() -> HtmConfig {
    HtmConfig {
        quantum: 6,
        ..HtmConfig::default()
    }
}

/// One server cell on a fresh runtime.
fn run_cell(
    htm: &HtmConfig,
    mix: &TrafficMix,
    requests: &[Request],
    batch_max: usize,
    admission: AdmissionSpec,
    mode: &ServeMode,
) -> ServerReport {
    let rt = TmRuntime::new(
        htm.clone(),
        TmConfig::default(),
        WORKERS,
        SPEC.app_words(),
    );
    let state = ServerState::new(&rt, SPEC);
    state.preload(&rt, &preload_items(mix));
    let opts = ServeOpts {
        batch_max,
        admission,
        ..ServeOpts::default()
    };
    run_server::<PartHtm>(&rt, &state, WORKERS, requests, mode, &opts)
}

/// Best-of-3 wall-clock goodput cell (host noise discipline of the other
/// benches).
fn best_of_3(
    htm: &HtmConfig,
    mix: &TrafficMix,
    requests: &[Request],
    batch_max: usize,
    admission: AdmissionSpec,
) -> ServerReport {
    (0..3)
        .map(|_| run_cell(htm, mix, requests, batch_max, admission, &ServeMode::Wall))
        .max_by(|a, b| a.goodput_wall().total_cmp(&b.goodput_wall()))
        .expect("three runs")
}

fn main() {
    let args = BenchArgs::parse();
    let scale = if args.smoke {
        Scale::smoke()
    } else {
        Scale::full()
    };
    eprintln!("serverbench: {} run", args.run_kind());

    // ---- Row 1: small-transaction batching, wall clock ------------------
    // 4 tenants x 512 keys = 2048 distinct keys over 8x1024 slots: ~25%
    // table occupancy (open addressing needs headroom).
    let small_mix = TrafficMix {
        keys: 512,
        ..TrafficMix::small_only()
    };
    // Saturated: everything due at t=0, so goodput measures service capacity.
    let small_reqs = gen_requests(&small_mix, &vec![0u64; scale.small_n], 8001);
    eprintln!("  [small-tx] batch_max 8 (wall)...");
    let htm = HtmConfig::default();
    let batched = best_of_3(&htm, &small_mix, &small_reqs, 8, AdmissionSpec::off());
    eprintln!("  [small-tx] batch_max 1 oracle (wall)...");
    let unbatched = best_of_3(&htm, &small_mix, &small_reqs, 1, AdmissionSpec::off());
    let batch_speedup = batched.goodput_wall() / unbatched.goodput_wall();

    // ---- Row 1v: the same comparison under the deterministic virtual clock
    let varrivals = ArrivalProcess::Poisson { mean_gap: 2.0 }
        .timestamps(scale.small_n / 4, 8002);
    let vreqs = gen_requests(&small_mix, &varrivals, 8002);
    let vmode = ServeMode::Virtual(SchedSpec::default());
    eprintln!("  [small-tx] batch_max 8 (virtual)...");
    let vbatched = run_cell(&htm, &small_mix, &vreqs, 8, AdmissionSpec::off(), &vmode);
    eprintln!("  [small-tx] batch_max 1 oracle (virtual)...");
    let vunbatched = run_cell(&htm, &small_mix, &vreqs, 1, AdmissionSpec::off(), &vmode);
    let vbatch_speedup = vbatched.goodput_virtual() / vunbatched.goodput_virtual();

    // ---- Row 2: overload admission control, wall clock -------------------
    let omix = overload_mix();
    eprintln!("  [overload] saturation probe (controller on)...");
    let sat_reqs = gen_requests(&omix, &vec![0u64; scale.overload_n], 8003);
    let ohtm = overload_htm();
    let sat = best_of_3(&ohtm, &omix, &sat_reqs, 8, AdmissionSpec::default());
    let saturation = sat.goodput_wall();

    // 2x overload: Poisson arrivals at twice the saturation rate.
    let mean_gap_ns = 1e9 / (2.0 * saturation);
    let oarrivals =
        ArrivalProcess::Poisson { mean_gap: mean_gap_ns }.timestamps(scale.overload_n, 8004);
    let oreqs = gen_requests(&omix, &oarrivals, 8004);
    eprintln!("  [overload] 2x rate, admission on...");
    let ov_on = best_of_3(&ohtm, &omix, &oreqs, 8, AdmissionSpec::default());
    eprintln!("  [overload] 2x rate, admission off (baseline)...");
    let ov_off = best_of_3(&ohtm, &omix, &oreqs, 8, AdmissionSpec::off());

    let sat_frac = ov_on.goodput_wall() / saturation;
    let controller_gain = ov_on.goodput_wall() / ov_off.goodput_wall();
    let p999_on = ov_on.latency.p999();
    let p999_off = ov_off.latency.p999();

    // ---- Report ----------------------------------------------------------
    println!("serverbench results ({} run)", args.run_kind());
    println!(
        "small-tx (wall)  batched {:>12.0} req/s   unbatched {:>12.0} req/s   speedup {batch_speedup:>5.2}x",
        batched.goodput_wall(),
        unbatched.goodput_wall()
    );
    println!(
        "small-tx (virt)  batched {:>12.2} req/Mu  unbatched {:>12.2} req/Mu  speedup {vbatch_speedup:>5.2}x",
        vbatched.goodput_virtual(),
        vunbatched.goodput_virtual()
    );
    println!(
        "                 virtual latency (units): batched p50/p99/p999 {}/{}/{}  unbatched {}/{}/{}",
        vbatched.latency.p50(),
        vbatched.latency.p99(),
        vbatched.latency.p999(),
        vunbatched.latency.p50(),
        vunbatched.latency.p99(),
        vunbatched.latency.p999()
    );
    println!(
        "overload (wall)  saturation {saturation:>10.0} req/s   2x-overload on {:>10.0} req/s ({:.2} of sat)   off {:>10.0} req/s",
        ov_on.goodput_wall(),
        sat_frac,
        ov_off.goodput_wall()
    );
    println!(
        "                 controller gain {controller_gain:>5.2}x   p999 on {:.2} ms / off {:.2} ms   shed {} of {}",
        p999_on as f64 / 1e6,
        p999_off as f64 / 1e6,
        ov_on.run.tm.shed_commits,
        ov_on.served
    );
    for (label, r) in [
        ("small batched", &batched),
        ("overload on", &ov_on),
        ("overload off", &ov_off),
    ] {
        let rep = StatsReport::from_run(&r.run);
        if let Some(line) = rep.render_hot_path() {
            println!("[{label}] {line}");
        }
        if std::env::var_os("SERVERBENCH_DEBUG").is_some() {
            eprint!("[{label}] {}", rep.to_json());
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serverbench\",\n",
            "  \"config\": {{\"smoke\": {}, \"workers\": {}, \"shards\": {}, ",
            "\"small_n\": {}, \"overload_n\": {}}},\n",
            "  \"small_tx\": {{\"batched_ops_per_sec\": {:.0}, ",
            "\"unbatched_ops_per_sec\": {:.0}, \"batch_speedup\": {:.3}, ",
            "\"batch_groups\": {}, \"batch_reqs\": {}}},\n",
            "  \"small_tx_virtual\": {{\"batched_req_per_mu\": {:.4}, ",
            "\"unbatched_req_per_mu\": {:.4}, \"virtual_speedup\": {:.3}, ",
            "\"batched_p999_units\": {}, \"unbatched_p999_units\": {}}},\n",
            "  \"overload\": {{\"saturation_ops_per_sec\": {:.0}, ",
            "\"on_ops_per_sec\": {:.0}, \"off_ops_per_sec\": {:.0}, ",
            "\"sat_frac\": {:.3}, \"controller_gain\": {:.3}, ",
            "\"p999_on_ns\": {}, \"p999_off_ns\": {}, ",
            "\"shed_commits\": {}}}\n",
            "}}\n"
        ),
        args.smoke,
        WORKERS,
        SPEC.shards,
        scale.small_n,
        scale.overload_n,
        batched.goodput_wall(),
        unbatched.goodput_wall(),
        batch_speedup,
        batched.run.tm.batch_groups,
        batched.run.tm.batch_reqs,
        vbatched.goodput_virtual(),
        vunbatched.goodput_virtual(),
        vbatch_speedup,
        vbatched.latency.p999(),
        vunbatched.latency.p999(),
        saturation,
        ov_on.goodput_wall(),
        ov_off.goodput_wall(),
        sat_frac,
        controller_gain,
        p999_on,
        p999_off,
        ov_on.run.tm.shed_commits,
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let base_batched = baseline_number(path, "batched_ops_per_sec");
        let base_p999 = baseline_number(path, "p999_on_ns");
        let ratio = batched.goodput_wall() / base_batched;
        println!(
            "regression gate: batched small-tx {:.0} vs baseline {base_batched:.0} ({ratio:.2}x)",
            batched.goodput_wall()
        );
        let mut failed = false;
        if ratio < 0.90 {
            eprintln!("FAIL: batched small-tx goodput regressed more than 10% vs {path}");
            failed = true;
        }
        if batch_speedup < 1.3 {
            eprintln!("FAIL: group commit only {batch_speedup:.2}x over unbatched (floor 1.3x)");
            failed = true;
        }
        if sat_frac < 0.8 {
            eprintln!(
                "FAIL: 2x-overload goodput {sat_frac:.2} of saturation with the controller \
                 on (floor 0.8)"
            );
            failed = true;
        }
        if controller_gain < 1.0 {
            eprintln!(
                "FAIL: controller {controller_gain:.2}x vs the no-controller baseline \
                 under 2x overload (must not lose)"
            );
            failed = true;
        }
        if (p999_on as f64) > 3.0 * base_p999 {
            eprintln!(
                "FAIL: overload p999 {p999_on} ns blew up >3x over the committed \
                 {base_p999:.0} ns"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
