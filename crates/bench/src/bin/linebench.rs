//! Conflict-table microbenchmark: the lock-free packed-word `LineTable` versus
//! the mutex-based reference `MutexLineTable`, measured from one binary so the
//! committed before/after numbers (`BENCH_1.json`) are reproducible from this
//! tree alone.
//!
//! Measures, for both implementations:
//!
//! * single-thread transactional access cycle (register reads + write upgrades +
//!   commit-path unregistration) — the simulator's hottest path;
//! * abort-path cleanup cost (bulk unregistration of a large read set);
//! * strongly atomic non-transactional write throughput;
//! * multi-thread throughput on disjoint lines (scalability of independent
//!   accesses) and on read-shared lines (the lock vs CAS contention case);
//!
//! plus end-to-end transaction throughput on the real `HtmSystem` (packed table
//! only — the system always uses the packed table).
//!
//! Usage: `linebench [--smoke] [--json PATH]`
//!   --smoke   ~20x fewer iterations (CI sanity run)
//!   --json P  write machine-readable results to P ("-" for stdout)

use htm_sim::heap::Line;
use htm_sim::line_table::{AccessOutcome, LineTable};
use htm_sim::line_table_ref::MutexLineTable;
use htm_sim::registry::{Requester, ThreadId, TxRegistry};
use htm_sim::{HtmConfig, HtmSystem};
use std::time::Instant;
use tm_bench::{emit_json, BenchArgs};

/// Common surface of the two table implementations.
trait Table: Sync {
    const NAME: &'static str;
    fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome;
    fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome;
    fn nt_write(&self, reg: &TxRegistry, line: Line, by: Requester) -> AccessOutcome;
    fn unregister(&self, line: Line, t: ThreadId);
}

impl Table for LineTable {
    const NAME: &'static str = "packed";
    fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        LineTable::tx_read(self, reg, line, t)
    }
    fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        LineTable::tx_write(self, reg, line, t)
    }
    fn nt_write(&self, reg: &TxRegistry, line: Line, by: Requester) -> AccessOutcome {
        LineTable::nt_access(self, reg, line, true, by)
    }
    fn unregister(&self, line: Line, t: ThreadId) {
        LineTable::unregister(self, line, t)
    }
}

impl Table for MutexLineTable {
    const NAME: &'static str = "mutex";
    fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        MutexLineTable::tx_read(self, reg, line, t)
    }
    fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        MutexLineTable::tx_write(self, reg, line, t)
    }
    fn nt_write(&self, reg: &TxRegistry, line: Line, by: Requester) -> AccessOutcome {
        MutexLineTable::nt_access(self, reg, line, true, by)
    }
    fn unregister(&self, line: Line, t: ThreadId) {
        MutexLineTable::unregister(self, line, t)
    }
}

const LINES: usize = 512;
const THREADS: usize = 4;
/// Lines per simulated transaction in the cycle benches.
const TX_LINES: u32 = 16;

struct Scale {
    cycle_iters: u64,
    abort_iters: u64,
    nt_iters: u64,
    mt_iters: u64,
    e2e_iters: u64,
}

impl Scale {
    fn full() -> Self {
        Self {
            cycle_iters: 200_000,
            abort_iters: 100_000,
            nt_iters: 2_000_000,
            mt_iters: 50_000,
            e2e_iters: 200_000,
        }
    }
    fn smoke() -> Self {
        Self {
            cycle_iters: 10_000,
            abort_iters: 5_000,
            nt_iters: 100_000,
            mt_iters: 2_500,
            e2e_iters: 10_000,
        }
    }
}

/// Best-of-3 wall time for `f()`, in nanoseconds.
fn best_of<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

/// Single-thread transactional access cycle: begin, register `TX_LINES` reads,
/// upgrade them all to writes, unregister (commit path), finish. Returns
/// ns per *access operation* (read + write registrations + unregister each
/// count as one op).
fn bench_cycle<T: Table>(table: &T, scale: &Scale) -> f64 {
    let reg = TxRegistry::new(THREADS);
    let iters = scale.cycle_iters;
    let ns = best_of(|| {
        for i in 0..iters {
            let base = ((i as u32) * TX_LINES) % LINES as u32;
            reg.begin(0);
            for k in 0..TX_LINES {
                assert_eq!(table.tx_read(&reg, base + k, 0), AccessOutcome::Ok);
            }
            for k in 0..TX_LINES {
                assert_eq!(table.tx_write(&reg, base + k, 0), AccessOutcome::Ok);
            }
            reg.start_commit(0).unwrap();
            for k in 0..TX_LINES {
                table.unregister(base + k, 0);
            }
            reg.finish(0);
        }
    });
    ns as f64 / (iters * 3 * TX_LINES as u64) as f64
}

/// Abort-path cleanup: register a 64-line read set, then time only the bulk
/// unregistration walk (the rollback loop). Returns ns per released line.
fn bench_abort_cleanup<T: Table>(table: &T, scale: &Scale) -> f64 {
    const SET: u32 = 64;
    let reg = TxRegistry::new(THREADS);
    let iters = scale.abort_iters;
    let mut cleanup_ns = u64::MAX;
    for _ in 0..3 {
        let mut total = 0u64;
        for _ in 0..iters {
            reg.begin(0);
            for k in 0..SET {
                table.tx_read(&reg, k, 0);
            }
            let t0 = Instant::now();
            for k in 0..SET {
                table.unregister(k, 0);
            }
            total += t0.elapsed().as_nanos() as u64;
            reg.finish(0);
        }
        cleanup_ns = cleanup_ns.min(total);
    }
    cleanup_ns as f64 / (iters * SET as u64) as f64
}

/// Strongly atomic non-transactional writes to unowned lines. Returns ns/op.
fn bench_nt<T: Table>(table: &T, scale: &Scale) -> f64 {
    let reg = TxRegistry::new(THREADS);
    let iters = scale.nt_iters;
    let ns = best_of(|| {
        for i in 0..iters {
            let line = (i % LINES as u64) as u32;
            assert_eq!(
                table.nt_write(&reg, line, Requester::External),
                AccessOutcome::Ok
            );
        }
    });
    ns as f64 / iters as f64
}

/// Multi-thread cycle throughput. With `disjoint`, each thread works a private
/// line range (pure scalability); otherwise all threads register *reads* on the
/// same `TX_LINES` lines (read sharing is conflict-free, so this isolates
/// lock/CAS contention on the table words). Returns total ops/sec.
fn bench_mt<T: Table>(table: &T, scale: &Scale, disjoint: bool) -> f64 {
    let reg = TxRegistry::new(THREADS);
    let iters = scale.mt_iters;
    let mut best_ns = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let reg = &reg;
                s.spawn(move || {
                    let t = t as ThreadId;
                    let span = (LINES / THREADS) as u32;
                    for i in 0..iters {
                        let base = if disjoint {
                            t as u32 * span + ((i as u32 * TX_LINES) % span)
                        } else {
                            0
                        };
                        reg.begin(t);
                        for k in 0..TX_LINES {
                            table.tx_read(reg, base + k, t);
                        }
                        reg.start_commit(t).unwrap();
                        for k in 0..TX_LINES {
                            table.unregister(base + k, t);
                        }
                        reg.finish(t);
                    }
                });
            }
        });
        best_ns = best_ns.min(t0.elapsed().as_nanos() as u64);
    }
    let total_ops = (THREADS as u64) * iters * 2 * TX_LINES as u64;
    total_ops as f64 * 1e9 / best_ns as f64
}

/// End-to-end transaction throughput on the real `HtmSystem` (packed table):
/// a read-modify-write transaction over 4 lines, single- or multi-threaded.
/// Returns (ops/sec, abort fraction).
fn bench_end_to_end(scale: &Scale, threads: usize) -> (f64, f64) {
    let sys = HtmSystem::new(HtmConfig::default(), LINES * 8);
    let iters = scale.e2e_iters;
    let aborts = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let sys = &sys;
            let aborts = &aborts;
            s.spawn(move || {
                let mut th = sys.thread(t);
                let mut local_aborts = 0u64;
                for i in 0..iters {
                    // Disjoint-ish slices keep the abort rate low but non-zero.
                    let base = (((i as u32).wrapping_mul(7) + t as u32 * 97) % 480) * 8;
                    loop {
                        let r = th.attempt(|tx| {
                            for k in 0..4u32 {
                                let a = base + k * 8;
                                let v = tx.read(a)?;
                                tx.write(a, v + 1)?;
                            }
                            Ok(())
                        });
                        match r {
                            Ok(()) => break,
                            Err(_) => local_aborts += 1,
                        }
                    }
                }
                aborts.fetch_add(local_aborts, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let ns = t0.elapsed().as_nanos() as u64;
    // 4 reads + 4 writes per committed transaction.
    let ops = threads as u64 * iters * 8;
    let commits = threads as u64 * iters;
    let ab = aborts.load(std::sync::atomic::Ordering::Relaxed);
    (
        ops as f64 * 1e9 / ns as f64,
        ab as f64 / (commits + ab) as f64,
    )
}

struct TableResults {
    cycle_ns_per_op: f64,
    abort_cleanup_ns_per_line: f64,
    nt_write_ns_per_op: f64,
    mt_disjoint_ops_per_sec: f64,
    mt_read_shared_ops_per_sec: f64,
}

fn run_table<T: Table>(table: &T, scale: &Scale) -> TableResults {
    eprintln!("  [{}] single-thread cycle...", T::NAME);
    let cycle = bench_cycle(table, scale);
    eprintln!("  [{}] abort cleanup...", T::NAME);
    let cleanup = bench_abort_cleanup(table, scale);
    eprintln!("  [{}] nt write...", T::NAME);
    let nt = bench_nt(table, scale);
    eprintln!("  [{}] {}-thread disjoint...", T::NAME, THREADS);
    let disjoint = bench_mt(table, scale, true);
    eprintln!("  [{}] {}-thread read-shared...", T::NAME, THREADS);
    let shared = bench_mt(table, scale, false);
    TableResults {
        cycle_ns_per_op: cycle,
        abort_cleanup_ns_per_line: cleanup,
        nt_write_ns_per_op: nt,
        mt_disjoint_ops_per_sec: disjoint,
        mt_read_shared_ops_per_sec: shared,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!("linebench: {} run", args.run_kind());
    let mutex_table = MutexLineTable::new(LINES);
    let packed_table = LineTable::new(LINES);
    let before = run_table(&mutex_table, &scale);
    let after = run_table(&packed_table, &scale);
    eprintln!("  [system] end-to-end 1 thread...");
    let (e2e_1t, ab_1t) = bench_end_to_end(&scale, 1);
    eprintln!("  [system] end-to-end {THREADS} threads...");
    let (e2e_mt, ab_mt) = bench_end_to_end(&scale, THREADS);

    let speedup_cycle = before.cycle_ns_per_op / after.cycle_ns_per_op;
    let speedup_cleanup = before.abort_cleanup_ns_per_line / after.abort_cleanup_ns_per_line;
    let speedup_nt = before.nt_write_ns_per_op / after.nt_write_ns_per_op;
    let speedup_disjoint = after.mt_disjoint_ops_per_sec / before.mt_disjoint_ops_per_sec;
    let speedup_shared = after.mt_read_shared_ops_per_sec / before.mt_read_shared_ops_per_sec;

    println!("linebench results ({} run)", if smoke { "smoke" } else { "full" });
    println!("                               mutex        packed     speedup");
    println!(
        "single-thread cycle     {:>10.1} ns {:>10.1} ns   {:>6.2}x",
        before.cycle_ns_per_op, after.cycle_ns_per_op, speedup_cycle
    );
    println!(
        "abort cleanup/line      {:>10.1} ns {:>10.1} ns   {:>6.2}x",
        before.abort_cleanup_ns_per_line, after.abort_cleanup_ns_per_line, speedup_cleanup
    );
    println!(
        "nt write                {:>10.1} ns {:>10.1} ns   {:>6.2}x",
        before.nt_write_ns_per_op, after.nt_write_ns_per_op, speedup_nt
    );
    println!(
        "{}t disjoint ops/s       {:>10.2e} {:>10.2e}      {:>6.2}x",
        THREADS, before.mt_disjoint_ops_per_sec, after.mt_disjoint_ops_per_sec, speedup_disjoint
    );
    println!(
        "{}t read-shared ops/s    {:>10.2e} {:>10.2e}      {:>6.2}x",
        THREADS,
        before.mt_read_shared_ops_per_sec,
        after.mt_read_shared_ops_per_sec,
        speedup_shared
    );
    println!("end-to-end 1t: {e2e_1t:.2e} ops/s (abort rate {ab_1t:.4})");
    println!("end-to-end {THREADS}t: {e2e_mt:.2e} ops/s (abort rate {ab_mt:.4})");

    if let Some(path) = &args.json {
        let fmt_table = |r: &TableResults| {
            format!(
                concat!(
                    "{{\"cycle_ns_per_op\": {:.2}, \"abort_cleanup_ns_per_line\": {:.2}, ",
                    "\"nt_write_ns_per_op\": {:.2}, \"mt_disjoint_ops_per_sec\": {:.0}, ",
                    "\"mt_read_shared_ops_per_sec\": {:.0}}}"
                ),
                r.cycle_ns_per_op,
                r.abort_cleanup_ns_per_line,
                r.nt_write_ns_per_op,
                r.mt_disjoint_ops_per_sec,
                r.mt_read_shared_ops_per_sec
            )
        };
        let json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"linebench\",\n",
                "  \"config\": {{\"smoke\": {}, \"threads\": {}, \"lines\": {}, \"tx_lines\": {}}},\n",
                "  \"mutex\": {},\n",
                "  \"packed\": {},\n",
                "  \"speedup\": {{\"single_thread_cycle\": {:.3}, \"abort_cleanup\": {:.3}, ",
                "\"nt_write\": {:.3}, \"mt_disjoint\": {:.3}, \"mt_read_shared\": {:.3}}},\n",
                "  \"end_to_end_packed\": {{\"ops_per_sec_1t\": {:.0}, \"abort_rate_1t\": {:.4}, ",
                "\"ops_per_sec_{}t\": {:.0}, \"abort_rate_{}t\": {:.4}}}\n",
                "}}\n"
            ),
            smoke,
            THREADS,
            LINES,
            TX_LINES,
            fmt_table(&before),
            fmt_table(&after),
            speedup_cycle,
            speedup_cleanup,
            speedup_nt,
            speedup_disjoint,
            speedup_shared,
            e2e_1t,
            ab_1t,
            THREADS,
            e2e_mt,
            THREADS,
            ab_mt,
        );
        emit_json(path, &json);
    }
}
