//! Sharded-ring microbenchmark: the global-commit publish throughput that the
//! address-region sharding of PR 4 targets, measured against the single global
//! ring it replaced, from one binary so the committed before/after numbers
//! (`BENCH_3.json`) are reproducible from this tree alone.
//!
//! Stages:
//!
//! * **mixed publish throughput** (the headline) — committers with *disjoint*
//!   write sets (thread `t`'s addresses all hash into shard `t` of the 8-shard
//!   geometry): one software committer (a partitioned-path global commit,
//!   which holds the ring lock) beside hardware committers (fast-path commits,
//!   which subscribe the ring lock and retry on abort with the standard
//!   lock-elision spin). On the **single** ring every hardware committer
//!   subscribes *the* lock, so whenever the software committer parks inside
//!   its critical section (on a 1-core host: whenever it is preempted there)
//!   all hardware publishers burn their time slices on doomed attempts; on the
//!   **sharded** ring disjoint committers touch disjoint shard locks and the
//!   dooming disappears. This is the protocol's coexistence cost — fast-path
//!   and partitioned-path commits sharing one serialisation point — which is
//!   exactly what the sharding removes;
//! * **software-only publish** — the same sweep with every committer
//!   publishing in software. Reported for transparency: the ring lock spins
//!   with `yield_now`, so on a 1-core host lock hand-off costs almost nothing
//!   and this stage shows ~1.0x regardless of sharding (the win needs either
//!   real parallelism or lock-subscribing hardware committers);
//! * **no-conflict validation** — in-flight validation of a disjoint read
//!   signature against rings carrying a timestamp lag: the sharded validator
//!   pays one timestamp read per shard plus a summary probe per *touched*
//!   shard, the single ring pays one of each — the sharding tax on the
//!   validation path, reported so regressions are visible next to the publish
//!   win.
//!
//! Usage: `ringbench [--smoke] [--mode seqlock|epoch] [--density N/D]
//!                    [--interval K] [--json PATH] [--baseline FILE]`
//!   --smoke      ~20x fewer iterations (CI sanity run)
//!   --mode M     summary reset protocol: `seqlock` (default; PR 3's
//!                generation seqlock, reproduces BENCH_3 semantics) or
//!                `epoch` (epoch banks + adaptive density controller; the
//!                validation stage then measures the grouped
//!                `validate_touched_nt` fast pass both fixtures would run in
//!                production, writing the BENCH_4 numbers)
//!   --density N/D  initial density threshold of the summary controller
//!                  (default 1/3 — the legacy constant)
//!   --interval K initial publishes-between-density-checks (default 256)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F compare the sharded 4-thread mixed publish ops/sec (and, if
//!                the baseline records it, the no-conflict validation
//!                overhead) against a previously committed ringbench JSON;
//!                exit 1 on a >10% publish regression or a >2x validation-
//!                overhead blow-up

use htm_sim::{HeapBuilder, HtmConfig, HtmSystem};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;
use tm_bench::{emit_json, json_number, BenchArgs};
use tm_sig::{ResetMode, ShardTimes, ShardedRing, ShardedSummary, Sig, SigSpec, SummaryTuning};

/// Shard count of the sharded configuration (the `TmConfig::ring_shards`
/// default).
const SHARDS: usize = 8;
/// Committer thread counts swept in the publish stages.
const PUB_THREADS: [usize; 3] = [1, 2, 4];
/// Addresses per published write signature. Sized like a partitioned-path
/// write set that saw a handful of sub-transactions (cf. Fig. 3's workloads);
/// also sets how long a software publish holds its shard lock.
const ADDRS_PER_SIG: usize = 12;
/// Distinct signatures each publisher rotates through (spreads the entry/
/// summary traffic like real commits do, instead of re-publishing one sig).
const SIGS_PER_THREAD: usize = 16;
/// Published entries of timestamp lag the validation stage walks past.
const VALIDATION_LAG: u64 = 48;
/// Shared heap: two ring variants at 1024 entries/shard (~320 B/entry for the
/// 2048-bit geometry) plus scratch.
const HEAP: usize = 1 << 22;

struct Scale {
    /// Total publishes per thread count (shared across the threads).
    pub_target: u64,
    val_iters: u64,
}

impl Scale {
    fn full() -> Self {
        Self {
            pub_target: 240_000,
            val_iters: 100_000,
        }
    }
    fn smoke() -> Self {
        Self {
            pub_target: 12_000,
            val_iters: 5_000,
        }
    }
}

/// Both ring configurations in one heap, plus their summaries.
struct Fixture {
    sys: HtmSystem,
    single: ShardedRing,
    sharded: ShardedRing,
    single_sum: ShardedSummary,
    sharded_sum: ShardedSummary,
}

fn fixture(tuning: SummaryTuning) -> Fixture {
    let cfg = HtmConfig {
        max_threads: *PUB_THREADS.iter().max().unwrap(),
        ..HtmConfig::default()
    };
    let sys = HtmSystem::new(cfg, HEAP);
    let mut b = HeapBuilder::new(HEAP);
    let single = ShardedRing::alloc(&mut b, 1, 1024, SigSpec::PAPER);
    let sharded = ShardedRing::alloc(&mut b, SHARDS, 1024, SigSpec::PAPER);
    let single_sum = single.new_summary_tuned(tuning);
    let sharded_sum = sharded.new_summary_tuned(tuning);
    Fixture {
        sys,
        single,
        sharded,
        single_sum,
        sharded_sum,
    }
}

/// Per-thread write signatures whose addresses all hash into shard
/// `t` of `ring` — the disjoint-write-set regime where sharding should win.
fn disjoint_sigs(ring: &ShardedRing, threads: usize) -> Vec<Vec<Sig>> {
    let spec = ring.spec();
    let mut addr = 0u32;
    let mut next_in_shard = |s: usize| -> u32 {
        loop {
            addr += 1;
            if ring.shard_of_word(spec.bit_of(addr) / 64) == s {
                return addr;
            }
        }
    };
    (0..threads)
        .map(|t| {
            (0..SIGS_PER_THREAD)
                .map(|_| {
                    let mut sig = Sig::new(spec);
                    for _ in 0..ADDRS_PER_SIG {
                        sig.add(next_in_shard(t));
                    }
                    sig
                })
                .collect()
        })
        .collect()
}

/// One hardware publish, retried with the standard lock-elision spin until it
/// commits: attempt, and on any abort (a software committer holding a
/// subscribed shard lock, or a timestamp-line conflict with a concurrent
/// hardware publisher) cancel the announcement if one was made and retry.
fn publish_hw(
    th: &mut htm_sim::HtmThread<'_>,
    ring: &ShardedRing,
    summaries: &ShardedSummary,
    sig: &Sig,
) {
    loop {
        let mut announced = 0u32;
        let res = th.attempt(|tx| {
            announced = 0;
            let (mask, times) = ring.publish_tx_summarized(tx, sig, summaries)?;
            announced = mask;
            Ok((mask, times))
        });
        match res {
            Ok((mask, times)) => {
                ring.complete_publish(sig, mask, &times, summaries);
                return;
            }
            Err(_) => {
                if announced != 0 {
                    ring.cancel_publish(announced, summaries);
                }
                std::hint::spin_loop();
            }
        }
    }
}

/// Publish throughput (total publishes/sec across `threads` committers, best
/// of 3) of `ring` under the given per-thread signature sets. With `mixed`,
/// thread 0 commits in software (the partitioned path's global commit) and
/// threads 1.. commit in hardware (fast-path commits subscribing the shard
/// locks); otherwise every thread commits in software. All threads share one
/// publish budget of `target` total operations so the measurement window ends
/// for everyone at once.
fn bench_publish(
    f: &Fixture,
    ring: &ShardedRing,
    summaries: &ShardedSummary,
    sigs: &[Vec<Sig>],
    threads: usize,
    target: u64,
    mixed: bool,
) -> f64 {
    let mut best = u64::MAX;
    // Rep 0 is a warm-up (first touch of the ring's heap pages, scheduler
    // settling) and is not counted.
    for rep in 0..4 {
        let done = AtomicU64::new(if rep == 0 { target - target / 8 } else { 0 });
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for (t, my_sigs) in sigs.iter().enumerate().take(threads) {
                let (sys, done) = (&f.sys, &done);
                s.spawn(move || {
                    let mut th = sys.thread(t);
                    let mut i = 0usize;
                    while done.fetch_add(1, Relaxed) < target {
                        let sig = &my_sigs[i % SIGS_PER_THREAD];
                        i += 1;
                        if mixed && t > 0 {
                            publish_hw(&mut th, ring, summaries, sig);
                        } else {
                            ring.publish_software_summarized(&th, sig, summaries);
                        }
                    }
                });
            }
        });
        if rep > 0 {
            best = best.min(t0.elapsed().as_nanos() as u64);
        }
    }
    target as f64 / (best as f64 / 1e9)
}

/// No-conflict validation cost (ns/validation, single validator, best of 3)
/// after `VALIDATION_LAG` publishes landed in `ring`. With `touched`, the
/// measured path is the non-advancing `validate_touched_nt` (the grouped
/// epoch-mode fast pass the partitioned path runs in production: zero
/// simulated-heap reads, window restarting from 0 every iteration so the
/// Bloom/group probe actually decides each call); otherwise the
/// timestamp-advancing `validate_summarized_nt` measured by BENCH_3.
fn bench_validation(
    f: &Fixture,
    ring: &ShardedRing,
    summaries: &ShardedSummary,
    iters: u64,
    touched: bool,
) -> f64 {
    let th = f.sys.thread(0);
    // Lag publishes spread across the whole geometry so every shard of the
    // sharded configuration carries entries.
    let mut union = Sig::new(ring.spec());
    for i in 0..VALIDATION_LAG {
        let mut sig = Sig::new(ring.spec());
        for k in 0..3u64 {
            sig.add((50_000 + i * 101 + k * 37) as u32);
        }
        union.union_with(&sig);
        ring.publish_software_summarized(&th, &sig, summaries);
    }
    // A reader of three addresses colliding with no published entry, so every
    // validation is conflict-free (the common case the fast path serves).
    let mut rsig = Sig::new(ring.spec());
    let mut found = 0u32;
    for a in 0u32.. {
        let mut probe = Sig::new(ring.spec());
        probe.add(a);
        if !probe.intersects(&union) && !probe.intersects(&rsig) {
            rsig.add(a);
            found += 1;
            if found == 3 {
                break;
            }
        }
    }

    // Sanity: the summary fast path must decide this workload on every shard.
    {
        let mut times = ShardTimes::new();
        let v = if touched {
            ring.validate_touched_nt(&th, summaries, &rsig, &mut times)
        } else {
            ring.validate_summarized_nt(&th, summaries, &rsig, &mut times)
        };
        assert!(v.result.is_ok());
        assert_eq!(v.walked_shards, 0, "summary fast path missed");
    }

    let mut best = u64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        if touched {
            for _ in 0..iters {
                let mut times = ShardTimes::new();
                let v = ring.validate_touched_nt(&th, summaries, &rsig, &mut times);
                assert!(std::hint::black_box(v).result.is_ok());
            }
        } else {
            for _ in 0..iters {
                let mut times = ShardTimes::new();
                let v = ring.validate_summarized_nt(&th, summaries, &rsig, &mut times);
                assert!(std::hint::black_box(v).result.is_ok());
            }
        }
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best as f64 / iters as f64
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let mode = args
        .value("--mode")
        .map(|m| match m {
            "seqlock" => ResetMode::Seqlock,
            "epoch" => ResetMode::Epoch,
            other => panic!("--mode {other}: expected seqlock or epoch"),
        })
        .unwrap_or(ResetMode::Seqlock);
    let mut tuning = SummaryTuning {
        mode,
        ..SummaryTuning::default()
    };
    if let Some(spec) = args.value("--density") {
        let (n, d) = spec
            .split_once('/')
            .unwrap_or_else(|| panic!("--density {spec}: expected N/D"));
        tuning.density_num = n.parse().expect("--density numerator");
        tuning.density_den = d.parse().expect("--density denominator");
    }
    if let Some(interval) = args.parsed("--interval") {
        tuning.check_interval = interval;
    }
    let epochs = mode == ResetMode::Epoch;
    let mode_name = if epochs { "epoch" } else { "seqlock" };
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!(
        "ringbench: {} run, {mode_name} summaries (density {}/{}, interval {})",
        args.run_kind(),
        tuning.density_num,
        tuning.density_den,
        tuning.check_interval
    );

    let f = fixture(tuning);
    let max_threads = *PUB_THREADS.iter().max().unwrap();
    let sigs = disjoint_sigs(&f.sharded, max_threads);

    // Sanity: the per-thread shard sets really are disjoint singletons.
    for (t, my_sigs) in sigs.iter().enumerate() {
        for sig in my_sigs {
            assert_eq!(f.sharded.shard_mask(sig), 1 << t, "thread {t} sig leaked");
            assert_eq!(f.single.shard_mask(sig), 1, "single ring has one shard");
        }
    }

    let run_sweep = |mixed: bool| -> Vec<(usize, f64, f64)> {
        let kind = if mixed { "mixed sw+hw" } else { "software" };
        PUB_THREADS
            .iter()
            .map(|&t| {
                eprintln!("  [publish/{kind}] {t} thread(s), single ring...");
                let single = bench_publish(
                    &f,
                    &f.single,
                    &f.single_sum,
                    &sigs,
                    t,
                    scale.pub_target,
                    mixed,
                );
                eprintln!("  [publish/{kind}] {t} thread(s), {SHARDS}-shard ring...");
                let sharded = bench_publish(
                    &f,
                    &f.sharded,
                    &f.sharded_sum,
                    &sigs,
                    t,
                    scale.pub_target,
                    mixed,
                );
                (t, single, sharded)
            })
            .collect()
    };

    let mixed = run_sweep(true);
    let sw_only = run_sweep(false);

    eprintln!("  [validate] no-conflict ({mode_name}), single vs sharded...");
    let vf = fixture(tuning);
    let val_single = bench_validation(&vf, &vf.single, &vf.single_sum, scale.val_iters, epochs);
    let val_sharded = bench_validation(&vf, &vf.sharded, &vf.sharded_sum, scale.val_iters, epochs);

    println!("ringbench results ({} run)", if smoke { "smoke" } else { "full" });
    for &(t, single, sharded) in &mixed {
        println!(
            "publish mixed {t}t        {single:>12.3e} op/s {sharded:>12.3e} op/s   {:>6.2}x   (single / {SHARDS}-shard)",
            sharded / single
        );
    }
    for &(t, single, sharded) in &sw_only {
        println!(
            "publish sw-only {t}t      {single:>12.3e} op/s {sharded:>12.3e} op/s   {:>6.2}x   (single / {SHARDS}-shard)",
            sharded / single
        );
    }
    println!(
        "validation 1t           {val_single:>10.1} ns {val_sharded:>10.1} ns   {:>+5.1}%   (single / {SHARDS}-shard)",
        (val_sharded / val_single - 1.0) * 100.0
    );

    let sharded_4t = mixed
        .iter()
        .find(|&&(t, _, _)| t == max_threads)
        .map(|&(_, _, s)| s)
        .unwrap();

    let sweep_json = |rows: &[(usize, f64, f64)]| -> String {
        rows.iter()
            .map(|&(t, single, sharded)| {
                format!(
                    concat!(
                        "    {{\"threads\": {}, \"single_ops_per_sec\": {:.0}, ",
                        "\"sharded_ops_per_sec\": {:.0}, \"speedup\": {:.3}}}"
                    ),
                    t,
                    single,
                    sharded,
                    sharded / single
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ringbench\",\n",
            "  \"config\": {{\"smoke\": {}, \"mode\": \"{}\", \"sig_bits\": {}, \"shards\": {}, ",
            "\"addrs_per_sig\": {}, \"sigs_per_thread\": {}, \"validation_lag\": {}}},\n",
            "  \"publish_mixed_disjoint\": [\n{}\n  ],\n",
            "  \"publish_software_disjoint\": [\n{}\n  ],\n",
            "  \"validation_no_conflict\": {{\"single_ns_per_val\": {:.1}, ",
            "\"sharded_ns_per_val\": {:.1}, \"overhead_pct\": {:.2}}},\n",
            "  \"sharded_{}t_ops_per_sec\": {:.0}\n",
            "}}\n"
        ),
        smoke,
        mode_name,
        SigSpec::PAPER.bits(),
        SHARDS,
        ADDRS_PER_SIG,
        SIGS_PER_THREAD,
        VALIDATION_LAG,
        sweep_json(&mixed),
        sweep_json(&sw_only),
        val_single,
        val_sharded,
        (val_sharded / val_single - 1.0) * 100.0,
        max_threads,
        sharded_4t,
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let blob =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
        let key = format!("sharded_{max_threads}t_ops_per_sec");
        let base = json_number(&blob, &key)
            .unwrap_or_else(|| panic!("--baseline {path}: no \"{key}\" field"));
        let ratio = sharded_4t / base;
        println!(
            "regression gate: sharded mixed publish {max_threads}t {sharded_4t:.0} vs baseline {base:.0} ({ratio:.2}x)"
        );
        if ratio < 0.90 {
            eprintln!("FAIL: sharded publish throughput regressed more than 10% vs {path}");
            std::process::exit(1);
        }
        // Validation-overhead gate: only when the baseline recorded the same
        // stage (older BENCH files predate it at this key granularity).
        if let (Some(base_single), Some(base_sharded)) = (
            json_number(&blob, "single_ns_per_val"),
            json_number(&blob, "sharded_ns_per_val"),
        ) {
            let base_ratio = base_sharded / base_single;
            let now_ratio = val_sharded / val_single;
            println!(
                "regression gate: sharded/single validation {now_ratio:.2}x vs baseline {base_ratio:.2}x"
            );
            if now_ratio > base_ratio * 2.0 {
                eprintln!(
                    "FAIL: sharded validation overhead blew up more than 2x vs {path}"
                );
                std::process::exit(1);
            }
        }
    }
}
