//! Splitting-vs-stretching ablation across HTM capacity models: the same
//! capacity-heavy transaction under each [`htm_sim::BackendKind`], rescued
//! either by Part-HTM's **segment splitting** (partitioned sub-HTM path) or by
//! Stretch-HTM's **capacity stretching** (suspend/resume resource stretching,
//! `docs/backends.md`). The committed numbers live in `BENCH_7.json` so the
//! ablation is reproducible from this tree alone.
//!
//! Every cell runs under the **virtual clock** ([`htm_sim::vclock`]) and
//! reports commits per million simulated work units. Wall-clock throughput
//! would mislead here: the global-lock fallback executes uninstrumented and
//! therefore *fast* in simulator wall-clock, even though it serialises the
//! cores — virtual time prices that serialisation the way real hardware
//! would (the makespan is the slowest core's finish time). Virtual cells are
//! also deterministic: the committed baseline reproduces bit-exactly on any
//! host, so the regression gate tracks code changes, not host noise.
//!
//! The workload is an N-Reads-M-Writes transaction whose read set (~150 cache
//! lines) overflows every backend's read budget (TSX pinned to 64 lines here,
//! POWER 128, limited-set 64), with a write set small enough (2–3 lines) to
//! fit even the limited-set write budget. Per backend, two rows:
//!
//! * **split** — `PartHtm`, adaptive planner with the backend's capacity-class
//!   group cap ([`part_htm_core::backend_group_cap`]);
//! * **stretch** — `StretchHtm`, whole-transaction attempts with stretched
//!   reads. Only the POWER model supports suspended regions, so this row
//!   degrades to HTM-GL (global-lock serialisation) on `tsx` and `limited`.
//!
//! What the committed `BENCH_7.json` shows (see EXPERIMENTS.md for caveats):
//! on **POWER**, stretching roughly doubles splitting — ~30 suspended loads
//! per transaction are far cheaper than re-running 32 sub-HTM segments under
//! software metadata. On **TSX** the stretch row is pure glock, and even that
//! outruns the partitioned path on this shape at 4 cores: with a 64-line
//! budget the planner is forced to tiny groups and the per-access software
//! instrumentation eats the parallelism — an honest negative result for
//! splitting on deeply over-budget read sets. On **limited**, the model's
//! software-managed overflow spill absorbs the whole read set in the fast
//! path, so both rows coincide and neither rescue mechanism runs.
//!
//! Usage: `backendbench [--smoke] [--json PATH] [--baseline FILE]`
//!   --smoke      ~10x fewer transactions (CI sanity run)
//!   --json P     write machine-readable results to P ("-" for stdout)
//!   --baseline F gate against a previously committed backendbench JSON
//!                (exit 1 on failure): >10% regression of the POWER split or
//!                POWER stretch row, or POWER stretching falling below 1.5x
//!                POWER splitting (the committed baseline records ~2x;
//!                the gap to 1.5 absorbs legitimate cost-model shifts, and
//!                a fall below it means capacity stretching lost its point
//!                on the one backend that supports it).

use htm_sim::vclock::SchedSpec;
use htm_sim::{BackendKind, HtmConfig};
use part_htm_core::{PartHtm, StretchHtm, TmConfig, TmRuntime};
use tm_bench::{baseline_number, emit_json, BenchArgs};
use tm_harness::{run_threads_virtual, RunResult, StatsReport};
use tm_workloads::micro;

/// Simulated cores for every row (matches partbench / pathbench's thread count).
const THREADS: usize = 4;

struct Scale {
    ops_per_thread: usize,
}

impl Scale {
    fn full() -> Self {
        Self { ops_per_thread: 60 }
    }
    fn smoke() -> Self {
        Self { ops_per_thread: 6 }
    }
}

/// The capacity-heavy shape: 1200 contiguous word reads (~150 lines) against
/// read budgets of 64/128/64 lines, 16 word writes (2–3 lines) fitting every
/// write budget, declared at fine granularity so the adaptive planner picks
/// the per-backend group width.
fn params() -> micro::NrmwParams {
    micro::NrmwParams {
        array_len: 4_000,
        n_reads: 1_200,
        m_writes: 16,
        work_per_iter: 0,
        segments: 8,
        stride: 1,
    }
    .fine_grained()
}

fn htm(kind: BackendKind) -> HtmConfig {
    HtmConfig {
        backend: Some(kind),
        // Pins the TSX read budget to 64 lines so the workload is
        // capacity-heavy on every backend (POWER and limited-set geometries
        // are fixed by their models and ignore this).
        read_lines_max: 64,
        ..HtmConfig::default()
    }
}

/// One (backend, executor) cell under the default deterministic schedule.
fn bench_cell(kind: BackendKind, stretch: bool, ops_per_thread: usize) -> RunResult {
    let p = params();
    let rt = TmRuntime::new(htm(kind), TmConfig::default(), THREADS, p.app_words());
    let shared = micro::init(&rt, &p);
    let (r, _) = if stretch {
        run_threads_virtual::<StretchHtm, _, _>(
            &rt,
            THREADS,
            ops_per_thread,
            SchedSpec::default(),
            |t| micro::Nrmw::new(shared, t, 64),
        )
    } else {
        run_threads_virtual::<PartHtm, _, _>(
            &rt,
            THREADS,
            ops_per_thread,
            SchedSpec::default(),
            |t| micro::Nrmw::new(shared, t, 64),
        )
    };
    r
}

fn main() {
    let args = BenchArgs::parse();
    let smoke = args.smoke;
    let scale = if smoke { Scale::smoke() } else { Scale::full() };

    eprintln!("backendbench: {} run (virtual time, deterministic)", args.run_kind());

    let kinds = [BackendKind::Tsx, BackendKind::Power, BackendKind::Limited];
    let mut rows = Vec::new();
    for kind in kinds {
        eprintln!("  [{}] Part-HTM (splitting)...", kind.name());
        let split = bench_cell(kind, false, scale.ops_per_thread);
        eprintln!("  [{}] Stretch-HTM (stretching)...", kind.name());
        let stretch = bench_cell(kind, true, scale.ops_per_thread);
        rows.push((kind, split, stretch));
    }

    println!("backendbench results ({} run, commits per 1M virtual units)", args.run_kind());
    for (kind, split, stretch) in &rows {
        let ratio = stretch.virtual_throughput() / split.virtual_throughput();
        println!(
            "{:<8} split {:>10.2}   stretch {:>10.2}   stretch/split {ratio:>6.2}x",
            kind.name(),
            split.virtual_throughput(),
            stretch.virtual_throughput(),
        );
        for (label, r) in [("split", split), ("stretch", stretch)] {
            let rep = StatsReport::from_run(r);
            if let Some(line) = rep.render_hot_path() {
                println!("  [{} {label}] {line}", kind.name());
            }
        }
    }

    let by = |k: BackendKind| rows.iter().find(|(kind, _, _)| *kind == k).expect("row");
    let (_, power_split, power_stretch) = by(BackendKind::Power);
    let power_ratio = power_stretch.virtual_throughput() / power_split.virtual_throughput();

    let mut row_json = String::new();
    for (i, (kind, split, stretch)) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        row_json.push_str(&format!(
            "    \"{k}_split_vtp\": {:.3},\n    \"{k}_stretch_vtp\": {:.3}{sep}\n",
            split.virtual_throughput(),
            stretch.virtual_throughput(),
            k = kind.name(),
        ));
    }
    let p = params();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"backendbench\",\n",
            "  \"config\": {{\"smoke\": {}, \"threads\": {}, \"n_reads\": {}, ",
            "\"m_writes\": {}, \"segments\": {}}},\n",
            "  \"rows\": {{\n{}  }},\n",
            "  \"power_stretch_vs_split\": {:.3}\n",
            "}}\n"
        ),
        smoke,
        THREADS,
        p.n_reads,
        p.m_writes,
        p.segments,
        row_json,
        power_ratio,
    );

    if let Some(path) = &args.json {
        emit_json(path, &json);
    }

    if let Some(path) = &args.baseline {
        let mut failed = false;
        for (key, now) in [
            ("power_split_vtp", power_split.virtual_throughput()),
            ("power_stretch_vtp", power_stretch.virtual_throughput()),
        ] {
            let base = baseline_number(path, key);
            let ratio = now / base;
            println!("regression gate: {key} {now:.2} vs baseline {base:.2} ({ratio:.2}x)");
            if ratio < 0.90 {
                eprintln!("FAIL: {key} regressed more than 10% vs {path}");
                failed = true;
            }
        }
        if power_ratio < 1.5 {
            eprintln!(
                "FAIL: POWER stretching only {power_ratio:.2}x of splitting (floor 1.5x; \
                 suspended-read stretching should beat partitioning on this read-heavy shape)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}
