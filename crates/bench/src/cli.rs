//! Shared command-line and JSON plumbing for the standalone bench binaries.
//!
//! `linebench`, `pathbench`, `ringbench` and `membench` all follow the same
//! shape: a `--smoke` scale switch, `--json PATH` machine-readable output
//! ("-" for stdout), an optional `--baseline FILE` regression gate that reads
//! a previously committed JSON blob, plus a few bench-specific flags. The
//! parsing and the no-dependency JSON handling used to be copy-pasted per
//! binary; this module is the single copy.

use std::str::FromStr;

/// Parsed common flags plus raw access for bench-specific ones.
///
/// All four binaries accept `--smoke`, `--json PATH` and (where they gate)
/// `--baseline FILE`; anything else is looked up through [`BenchArgs::flag`] /
/// [`BenchArgs::value`] / [`BenchArgs::parsed`].
pub struct BenchArgs {
    raw: Vec<String>,
    /// `--smoke`: ~20x fewer iterations (CI sanity run).
    pub smoke: bool,
    /// `--json PATH`: write machine-readable results to PATH ("-" for stdout).
    pub json: Option<String>,
    /// `--baseline FILE`: compare against a previously committed JSON blob.
    pub baseline: Option<String>,
}

impl BenchArgs {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Self::from_vec(std::env::args().collect())
    }

    fn from_vec(raw: Vec<String>) -> Self {
        let mut a = Self {
            raw,
            smoke: false,
            json: None,
            baseline: None,
        };
        a.smoke = a.flag("--smoke");
        a.json = a.value("--json").map(str::to_owned);
        a.baseline = a.value("--baseline").map(str::to_owned);
        a
    }

    /// True if the bare flag `name` (e.g. `"--smoke"`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The operand following `name`. Panics if the flag is present without one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw.iter().position(|a| a == name).map(|i| {
            self.raw
                .get(i + 1)
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .as_str()
        })
    }

    /// The operand following `name`, parsed. Panics on a missing or
    /// unparseable operand.
    pub fn parsed<T: FromStr>(&self, name: &str) -> Option<T> {
        self.value(name).map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("{name}: cannot parse {s:?}"))
        })
    }

    /// `"smoke"` or `"full"`, for banners.
    pub fn run_kind(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// Write `json` to `path` ("-" means stdout), announcing the file on stderr.
pub fn emit_json(path: &str, json: &str) {
    if path == "-" {
        print!("{json}");
    } else {
        std::fs::write(path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// Pull `"key": <number>` out of a bench JSON blob without a JSON parser
/// (the workspace is offline; this mirrors how tier1.sh consumes the files).
pub fn json_number(blob: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = blob.find(&pat)? + pat.len();
    let rest = &blob[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Read a committed baseline blob and extract `key`, with errors that name the
/// offending file (gates run unattended under tier1.sh).
pub fn baseline_number(path: &str, key: &str) -> f64 {
    let blob =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--baseline {path}: {e}"));
    json_number(&blob, key)
        .unwrap_or_else(|| panic!("--baseline {path}: no \"{key}\" field"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> BenchArgs {
        BenchArgs::from_vec(v.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn parses_common_flags() {
        let a = args(&["bin", "--smoke", "--json", "-", "--baseline", "B.json"]);
        assert!(a.smoke);
        assert_eq!(a.json.as_deref(), Some("-"));
        assert_eq!(a.baseline.as_deref(), Some("B.json"));
        assert_eq!(a.run_kind(), "smoke");
    }

    #[test]
    fn defaults_absent() {
        let a = args(&["bin"]);
        assert!(!a.smoke);
        assert!(a.json.is_none());
        assert!(a.baseline.is_none());
        assert_eq!(a.run_kind(), "full");
    }

    #[test]
    fn bench_specific_flags() {
        let a = args(&["bin", "--shards", "4", "--mode", "epoch"]);
        assert_eq!(a.parsed::<usize>("--shards"), Some(4));
        assert_eq!(a.value("--mode"), Some("epoch"));
        assert_eq!(a.parsed::<usize>("--interval"), None);
    }

    #[test]
    #[should_panic(expected = "--json requires a value")]
    fn missing_operand_panics() {
        args(&["bin", "--json"]);
    }

    #[test]
    fn json_number_extracts() {
        let blob = "{\n  \"a\": {\"ops_per_sec_4t\": 123456, \"x\": 1.5e3},\n  \"neg\": -2.25\n}";
        assert_eq!(json_number(blob, "ops_per_sec_4t"), Some(123456.0));
        assert_eq!(json_number(blob, "x"), Some(1500.0));
        assert_eq!(json_number(blob, "neg"), Some(-2.25));
        assert_eq!(json_number(blob, "missing"), None);
    }
}
