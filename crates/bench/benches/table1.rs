//! Criterion bench for Table 1: the Labyrinth workload at 4 threads under HTM-GL
//! (the paper's row A) and Part-HTM (row B). The statistics themselves — abort
//! percentages by cause, commit percentages by path — come from `repro table1`;
//! this bench times the underlying cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use std::time::Duration;
use tm_bench::{bench_cell, BENCH_THREADS};
use tm_harness::Algo;
use tm_workloads::stamp::labyrinth::{self, LabyrinthParams};

fn table1(c: &mut Criterion) {
    let p = LabyrinthParams::default_scale();
    let mut g = c.benchmark_group("table1_labyrinth");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for algo in [Algo::HtmGl, Algo::PartHtm] {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    bench_cell(
                        algo,
                        BENCH_THREADS,
                        6,
                        HtmConfig::default(),
                        p.app_words(),
                        |rt| labyrinth::init(rt, &p),
                        |s, t| labyrinth::Labyrinth::new(s, t as u64 + 1),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(t1, table1);
criterion_main!(t1);
