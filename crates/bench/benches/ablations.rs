//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **fast path** on/off (the Fig. 3(b) Part-HTM-no-fast observation);
//! * **in-flight-validation frequency**: after every sub-HTM commit (the paper's
//!   §5.3.6 choice) vs only before the global commit (the serializability minimum);
//! * **signature size**: 512 / 2048 (paper) / 8192 bits — false-conflict rate vs
//!   HTM capacity cost;
//! * **sub-HTM retry budget**: 1 / 5 (paper) / 20 attempts before aborting the
//!   global transaction.
//!
//! All run Part-HTM on a space-limited N-Reads-M-Writes cell at 4 threads, where
//! the partitioned path does the work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use part_htm_core::TmConfig;
use std::time::Duration;
use tm_bench::BENCH_THREADS;
use tm_harness::{run_cell, Algo};
use tm_sig::SigSpec;
use tm_workloads::micro::{self, NrmwParams};

fn partitioned_cell(tm: TmConfig, ops: usize) -> u64 {
    let p = NrmwParams::fig3b();
    let htm = HtmConfig {
        read_lines_max: 11_000 / BENCH_THREADS,
        ..HtmConfig::default()
    };
    run_cell(
        Algo::PartHtm,
        BENCH_THREADS,
        ops,
        htm,
        tm,
        p.app_words(),
        |rt| micro::init(rt, &p),
        |s, t| micro::Nrmw::new(s, t, 64),
    )
    .commits
}

fn group<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

fn ablate_fast_path(c: &mut Criterion) {
    let mut g = group(c, "ablation_fast_path");
    for (label, skip) in [("with-fast-path", false), ("no-fast-path", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &skip, |b, &skip| {
            b.iter(|| {
                partitioned_cell(
                    TmConfig {
                        skip_fast: skip,
                        ..TmConfig::default()
                    },
                    8,
                )
            })
        });
    }
    g.finish();
}

fn ablate_validation_frequency(c: &mut Criterion) {
    let mut g = group(c, "ablation_inflight_validation");
    for (label, every) in [("every-sub-htm", true), ("only-before-commit", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &every, |b, &every| {
            b.iter(|| {
                partitioned_cell(
                    TmConfig {
                        validate_every_sub: every,
                        ..TmConfig::default()
                    },
                    8,
                )
            })
        });
    }
    g.finish();
}

fn ablate_signature_size(c: &mut Criterion) {
    let mut g = group(c, "ablation_signature_bits");
    for bits in [512u32, 2048, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| {
                partitioned_cell(
                    TmConfig {
                        sig_spec: SigSpec::new(bits),
                        ..TmConfig::default()
                    },
                    8,
                )
            })
        });
    }
    g.finish();
}

fn ablate_sub_retries(c: &mut Criterion) {
    let mut g = group(c, "ablation_sub_retries");
    for retries in [1u32, 5, 20] {
        g.bench_with_input(
            BenchmarkId::from_parameter(retries),
            &retries,
            |b, &retries| {
                b.iter(|| {
                    partitioned_cell(
                        TmConfig {
                            sub_retries: retries,
                            ..TmConfig::default()
                        },
                        8,
                    )
                })
            },
        );
    }
    g.finish();
}

/// Eager (Part-HTM) vs lazy (SpHT) transaction splitting, §3 of the paper:
/// on a *time*-limited workload both rescue the transaction; on a *space*-limited
/// workload SpHT's grown redo log defeats it and it falls back to the global lock.
fn ablate_eager_vs_lazy(c: &mut Criterion) {
    use tm_workloads::micro::NrmwParams;

    // Time-limited: both split schemes work.
    let mut g = group(c, "ablation_split_time_limited");
    for algo in [Algo::PartHtm, Algo::SpHt] {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            let p = NrmwParams::fig3c();
            let htm = HtmConfig { quantum: 40_000, ..HtmConfig::default() };
            b.iter(|| {
                run_cell(
                    algo,
                    BENCH_THREADS,
                    8,
                    htm.clone(),
                    TmConfig::default(),
                    p.app_words(),
                    |rt| tm_workloads::micro::init(rt, &p),
                    |s, t| tm_workloads::micro::Nrmw::new(s, t, 64),
                )
                .commits
            })
        });
    }
    g.finish();

    // Space-limited: eager splitting commits in hardware, lazy cannot.
    let mut g = group(c, "ablation_split_space_limited");
    for algo in [Algo::PartHtm, Algo::SpHt] {
        g.bench_with_input(BenchmarkId::from_parameter(algo.name()), &algo, |b, &algo| {
            let p = NrmwParams::fig3b();
            let htm = HtmConfig { read_lines_max: 11_000 / BENCH_THREADS, ..HtmConfig::default() };
            b.iter(|| {
                run_cell(
                    algo,
                    BENCH_THREADS,
                    6,
                    htm.clone(),
                    TmConfig::default(),
                    p.app_words(),
                    |rt| tm_workloads::micro::init(rt, &p),
                    |s, t| tm_workloads::micro::Nrmw::new(s, t, 64),
                )
                .commits
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_fast_path,
    ablate_validation_frequency,
    ablate_signature_size,
    ablate_sub_retries,
    ablate_eager_vs_lazy
);
criterion_main!(ablations);
