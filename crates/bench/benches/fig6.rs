//! Criterion benches for Fig. 6 (EigenBench): one cell per algorithm per
//! configuration. The speed-up series come from `repro fig6a|fig6b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use std::time::Duration;
use tm_bench::{bench_cell, BENCH_THREADS};
use tm_harness::Algo;
use tm_workloads::eigen::{self, EigenParams};

fn bench_eigen(c: &mut Criterion, group: &str, p: EigenParams, htm: HtmConfig, ops: usize) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for algo in Algo::COMPETITORS {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    bench_cell(
                        algo,
                        BENCH_THREADS,
                        ops,
                        htm.clone(),
                        p.app_words(BENCH_THREADS),
                        |rt| eigen::init(rt, &p),
                        |s, t| eigen::Eigen::new(s, t, 64),
                    )
                })
            },
        );
    }
    g.finish();
}

fn fig6a(c: &mut Criterion) {
    bench_eigen(
        c,
        "fig6a_long_short_mix",
        EigenParams::fig6a(),
        HtmConfig {
            quantum: 30_000,
            ..HtmConfig::default()
        },
        40,
    );
}

fn fig6b(c: &mut Criterion) {
    bench_eigen(
        c,
        "fig6b_high_contention",
        EigenParams::fig6b(),
        HtmConfig::default(),
        15,
    );
}

criterion_group!(fig6, fig6a, fig6b);
criterion_main!(fig6);
