//! Criterion benches for Fig. 4 (sorted linked list, 50 % writes): one cell per
//! algorithm per list size. The full thread sweeps come from `repro fig4a|fig4b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use std::time::Duration;
use tm_bench::{bench_cell, BENCH_THREADS};
use tm_harness::Algo;
use tm_workloads::list::{self, ListParams};

fn bench_list(c: &mut Criterion, group: &str, p: ListParams, ops: usize) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for algo in Algo::COMPETITORS {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    bench_cell(
                        algo,
                        BENCH_THREADS,
                        ops,
                        HtmConfig::default(),
                        p.app_words(),
                        |rt| list::init(rt, &p),
                        |s, _t| list::ListWorkload::new(s),
                    )
                })
            },
        );
    }
    g.finish();
}

fn fig4a(c: &mut Criterion) {
    bench_list(c, "fig4a", ListParams::fig4a(), 200);
}

fn fig4b(c: &mut Criterion) {
    bench_list(c, "fig4b", ListParams::fig4b(), 20);
}

criterion_group!(fig4, fig4a, fig4b);
criterion_main!(fig4);
