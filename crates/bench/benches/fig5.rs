//! Criterion benches for Fig. 5 (STAMP-profile kernels): one cell per algorithm per
//! application. The speed-up-vs-sequential series come from `repro fig5a..fig5i`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use std::time::Duration;
use tm_bench::{bench_cell, BENCH_THREADS};
use tm_harness::Algo;
use tm_workloads::stamp::{genome, intruder, kmeans, labyrinth, ssca2, vacation, yada};

fn group<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

macro_rules! stamp_bench {
    ($fn_name:ident, $group:literal, $module:ident, $params:expr, $ops:literal, $make:expr) => {
        fn $fn_name(c: &mut Criterion) {
            let p = $params;
            let mut g = group(c, $group);
            for algo in Algo::COMPETITORS {
                g.bench_with_input(
                    BenchmarkId::from_parameter(algo.name()),
                    &algo,
                    |b, &algo| {
                        b.iter(|| {
                            bench_cell(
                                algo,
                                BENCH_THREADS,
                                $ops,
                                HtmConfig::default(),
                                p.app_words(),
                                |rt| $module::init(rt, &p),
                                $make,
                            )
                        })
                    },
                );
            }
            g.finish();
        }
    };
}

stamp_bench!(
    fig5a,
    "fig5a_kmeans_low",
    kmeans,
    kmeans::KmeansParams::low_contention(),
    400,
    |s, _t| { kmeans::Kmeans::new(s) }
);
stamp_bench!(
    fig5b,
    "fig5b_kmeans_high",
    kmeans,
    kmeans::KmeansParams::high_contention(),
    400,
    |s, _t| { kmeans::Kmeans::new(s) }
);
stamp_bench!(
    fig5c,
    "fig5c_ssca2",
    ssca2,
    ssca2::Ssca2Params::default_scale(),
    800,
    |s, _t| { ssca2::Ssca2::new(s) }
);
stamp_bench!(
    fig5d,
    "fig5d_labyrinth",
    labyrinth,
    labyrinth::LabyrinthParams::default_scale(),
    6,
    |s, t| { labyrinth::Labyrinth::new(s, t as u64 + 1) }
);
stamp_bench!(
    fig5e,
    "fig5e_intruder",
    intruder,
    intruder::IntruderParams::default_scale(),
    400,
    |s, _t| { intruder::Intruder::new(s) }
);
stamp_bench!(
    fig5f,
    "fig5f_vacation_low",
    vacation,
    vacation::VacationParams::low_contention(),
    150,
    |s, _t| { vacation::Vacation::new(s) }
);
stamp_bench!(
    fig5g,
    "fig5g_vacation_high",
    vacation,
    vacation::VacationParams::high_contention(),
    150,
    |s, _t| { vacation::Vacation::new(s) }
);
stamp_bench!(
    fig5h,
    "fig5h_yada",
    yada,
    yada::YadaParams::default_scale(),
    20,
    |s, _t| { yada::Yada::new(s) }
);
stamp_bench!(
    fig5i,
    "fig5i_genome",
    genome,
    genome::GenomeParams::default_scale(),
    300,
    |s, _t| { genome::Genome::new(s) }
);

criterion_group!(fig5, fig5a, fig5b, fig5c, fig5d, fig5e, fig5f, fig5g, fig5h, fig5i);
criterion_main!(fig5);
