//! Criterion benches for Fig. 3 (N-Reads-M-Writes): one cell (fixed transactions at
//! 4 threads) per algorithm per configuration. The full thread-sweep series come
//! from `repro fig3a|fig3b|fig3c`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm_sim::HtmConfig;
use std::time::Duration;
use tm_bench::{bench_cell, BENCH_THREADS};
use tm_harness::Algo;
use tm_workloads::micro::{self, NrmwParams};

fn bench_nrmw(c: &mut Criterion, group: &str, p: NrmwParams, htm: HtmConfig, ops: usize) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut algos = Algo::COMPETITORS.to_vec();
    if group == "fig3b" {
        algos.push(Algo::PartHtmNoFast);
    }
    for algo in algos {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    bench_cell(
                        algo,
                        BENCH_THREADS,
                        ops,
                        htm.clone(),
                        p.app_words(),
                        |rt| micro::init(rt, &p),
                        |s, t| micro::Nrmw::new(s, t, 64),
                    )
                })
            },
        );
    }
    g.finish();
}

fn fig3a(c: &mut Criterion) {
    bench_nrmw(c, "fig3a", NrmwParams::fig3a(), HtmConfig::default(), 400);
}

fn fig3b(c: &mut Criterion) {
    bench_nrmw(
        c,
        "fig3b",
        NrmwParams::fig3b(),
        HtmConfig {
            read_lines_max: 11_000 / BENCH_THREADS,
            ..HtmConfig::default()
        },
        8,
    );
}

fn fig3c(c: &mut Criterion) {
    bench_nrmw(
        c,
        "fig3c",
        NrmwParams::fig3c(),
        HtmConfig {
            quantum: 40_000,
            ..HtmConfig::default()
        },
        12,
    );
}

criterion_group!(fig3, fig3a, fig3b, fig3c);
criterion_main!(fig3);
