//! Multi-threaded stress of the lock-free conflict table at the raw table level:
//! concurrent `tx_read` / `tx_write` / `nt_execute` / `unregister` with the
//! requester-wins protocol driven by hand, checking that no doom and no
//! registration is ever lost.
//!
//! The oracle is a counter argument: each worker repeatedly runs the canonical
//! read-modify-write transaction protocol (register read -> load -> register
//! write -> start_commit -> store -> unregister -> finish) against a handful of
//! contended lines, while interferer threads apply non-transactional increments
//! through the strong-atomicity claim. If the table ever lost a registration
//! (a committed transaction whose read was invisible to a conflicting writer) or
//! lost a doom (a victim that commits anyway), two increments would overlap and
//! the final counter values would undercount the successful operations.

use htm_sim::heap::Heap;
use htm_sim::line_table::{AccessOutcome, LineTable};
use htm_sim::registry::{Requester, ThreadId, TxRegistry, TxStatus};
use htm_sim::util::Backoff;
use std::sync::atomic::{AtomicU64, Ordering};

const LINES: u32 = 4;
const WORDS_PER_LINE: u32 = 8;

struct Machine {
    table: LineTable,
    reg: TxRegistry,
    heap: Heap,
}

impl Machine {
    fn new(threads: usize) -> Self {
        Self {
            table: LineTable::new(LINES as usize),
            reg: TxRegistry::new(threads),
            heap: Heap::new((LINES * WORDS_PER_LINE) as usize),
        }
    }

    /// One transactional increment of `line`'s counter word, retried until it
    /// commits. Returns the number of aborted attempts.
    fn tx_increment(&self, t: ThreadId, line: u32) -> u64 {
        let addr = line * WORDS_PER_LINE;
        let mut aborts = 0u64;
        let mut backoff = Backoff::new();
        loop {
            self.reg.begin(t);
            match self.try_increment(t, line, addr) {
                Ok(()) => return aborts,
                Err(()) => {
                    self.table.unregister(line, t);
                    self.reg.finish(t);
                    aborts += 1;
                    backoff.snooze();
                }
            }
        }
    }

    fn try_increment(&self, t: ThreadId, line: u32, addr: u32) -> Result<(), ()> {
        if self.table.tx_read(&self.reg, line, t) != AccessOutcome::Ok {
            return Err(());
        }
        let v = self.heap.load(addr);
        if self.reg.is_doomed(t) {
            return Err(());
        }
        if self.table.tx_write(&self.reg, line, t) != AccessOutcome::Ok {
            return Err(());
        }
        if self.reg.start_commit(t).is_err() {
            return Err(());
        }
        // Committing: peers now MustWait; the publish cannot be invalidated.
        self.heap.store(addr, v + 1);
        self.table.unregister(line, t);
        self.reg.finish(t);
        Ok(())
    }

    /// One strongly atomic non-transactional increment (load + store inside the
    /// claim window, mutually exclusive with registrations and other claims).
    fn nt_increment(&self, line: u32) {
        let addr = line * WORDS_PER_LINE;
        let mut backoff = Backoff::new();
        loop {
            let r = self
                .table
                .nt_execute(&self.reg, line, true, Requester::External, || {
                    let v = self.heap.load(addr);
                    self.heap.store(addr, v + 1);
                });
            match r {
                Ok(()) => return,
                Err(()) => backoff.snooze(),
            }
        }
    }
}

#[test]
fn no_lost_dooms_or_registrations_under_contention() {
    const TX_THREADS: usize = 4;
    const NT_THREADS: usize = 2;
    const OPS: usize = 400;

    let m = Machine::new(TX_THREADS);
    let nt_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..TX_THREADS {
            let m = &m;
            s.spawn(move || {
                for i in 0..OPS {
                    let line = ((i + t) % LINES as usize) as u32;
                    m.tx_increment(t as ThreadId, line);
                }
            });
        }
        for n in 0..NT_THREADS {
            let m = &m;
            let nt_done = &nt_done;
            s.spawn(move || {
                for i in 0..OPS {
                    let line = ((i + n) % LINES as usize) as u32;
                    m.nt_increment(line);
                    nt_done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let expected = (TX_THREADS * OPS) as u64 + nt_done.load(Ordering::Relaxed);
    let total: u64 = (0..LINES).map(|l| m.heap.load(l * WORDS_PER_LINE)).sum();
    assert_eq!(total, expected, "lost increment: doom or registration dropped");
    assert_eq!(m.table.live_entries(), 0, "leaked line registrations");
    for t in 0..TX_THREADS {
        assert_eq!(m.reg.status(t as ThreadId), TxStatus::Inactive);
    }
}

/// Hammer a single line with writer-upgrades from every thread plus external
/// reads: the word must stay internally consistent (a writer byte only for a
/// thread that registered it, reader bits only below the thread count) and end
/// empty.
#[test]
fn single_line_ownership_word_stays_consistent() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 500;

    let m = Machine::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = &m;
            s.spawn(move || {
                let t = t as ThreadId;
                let mut backoff = Backoff::new();
                for _ in 0..ROUNDS {
                    self_check(m);
                    m.reg.begin(t);
                    let mut registered = false;
                    if m.table.tx_read(&m.reg, 0, t) == AccessOutcome::Ok {
                        registered = true;
                        if m.table.tx_write(&m.reg, 0, t) != AccessOutcome::Ok {
                            backoff.snooze();
                        }
                    }
                    if registered {
                        m.table.unregister(0, t);
                    }
                    m.reg.finish(t);
                }
            });
        }
    });
    assert_eq!(m.table.live_entries(), 0);
}

fn self_check(m: &Machine) {
    let word = m.table.raw_word(0);
    let readers = word & ((1u64 << 56) - 1);
    let writer = word >> 56;
    assert!(
        readers >> 6 == 0,
        "reader bit above thread count: {readers:#x}"
    );
    assert!(
        writer == 0 || writer == 0xFE || writer <= 6,
        "invalid writer byte {writer:#x}"
    );
}
