//! Property-based tests of the HTM simulator's core guarantees.

use htm_sim::{AbortCode, HtmConfig, HtmSystem};
use proptest::prelude::*;

/// A tiny transactional program over 8 one-line counters.
#[derive(Clone, Debug)]
enum Op {
    Read(u8),
    Add(u8, u8),
    Work(u16),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..8).prop_map(Op::Read),
            (0u8..8, 1u8..20).prop_map(|(c, d)| Op::Add(c, d)),
            (1u16..50).prop_map(Op::Work),
        ],
        1..30,
    )
}

fn addr(counter: u8) -> u32 {
    u32::from(counter) * 8
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Single-threaded: a committed transaction behaves exactly like the direct
    /// sequential execution of its program; an aborted one leaves no trace.
    #[test]
    fn committed_tx_matches_sequential_oracle(ops in arb_ops()) {
        let sys = HtmSystem::new(HtmConfig::default(), 1024);
        let mut th = sys.thread(0);

        // Oracle.
        let mut oracle = [0u64; 8];
        for op in &ops {
            if let Op::Add(c, d) = op {
                oracle[*c as usize] += u64::from(*d);
            }
        }

        let r = th.attempt(|tx| {
            for op in &ops {
                match op {
                    Op::Read(c) => {
                        tx.read(addr(*c))?;
                    }
                    Op::Add(c, d) => {
                        let v = tx.read(addr(*c))?;
                        tx.write(addr(*c), v + u64::from(*d))?;
                    }
                    Op::Work(u) => tx.work(u64::from(*u))?,
                }
            }
            Ok(())
        });
        prop_assert!(r.is_ok(), "no conflicts, ample resources: must commit");
        for c in 0..8u8 {
            prop_assert_eq!(sys.nt_read(addr(c)), oracle[c as usize]);
        }
        prop_assert_eq!(sys.live_line_entries(), 0);
    }

    /// An explicitly aborted transaction publishes nothing, regardless of program.
    #[test]
    fn aborted_tx_leaves_no_trace(ops in arb_ops()) {
        let sys = HtmSystem::new(HtmConfig::default(), 1024);
        let mut th = sys.thread(0);
        let r = th.attempt(|tx| -> Result<(), AbortCode> {
            for op in &ops {
                match op {
                    Op::Read(c) => {
                        tx.read(addr(*c))?;
                    }
                    Op::Add(c, d) => {
                        let v = tx.read(addr(*c))?;
                        tx.write(addr(*c), v + u64::from(*d))?;
                    }
                    Op::Work(u) => tx.work(u64::from(*u))?,
                }
            }
            Err(tx.xabort(1))
        });
        prop_assert_eq!(r, Err(AbortCode::Explicit(1)));
        for c in 0..8u8 {
            prop_assert_eq!(sys.nt_read(addr(c)), 0);
        }
        prop_assert_eq!(sys.live_line_entries(), 0);
    }

    /// Capacity is a hard wall: a transaction writing `n` distinct lines commits iff
    /// `n` fits the configured geometry (uniform sets here, so the bound is exact).
    #[test]
    fn capacity_wall_is_exact(lines in 1usize..64) {
        let cfg = HtmConfig { l1_sets: 8, l1_ways: 4, ..HtmConfig::default() };
        let sys = HtmSystem::new(cfg, 64 * 8 + 8);
        let mut th = sys.thread(0);
        let r = th.attempt(|tx| {
            for i in 0..lines {
                tx.write((i * 8) as u32, 1)?;
            }
            Ok(())
        });
        // Consecutive lines spread uniformly: exactly sets*ways = 32 lines fit.
        if lines <= 32 {
            prop_assert!(r.is_ok(), "{} lines must fit", lines);
        } else {
            prop_assert_eq!(r, Err(AbortCode::Capacity));
        }
    }

    /// The quantum is a hard wall too.
    #[test]
    fn quantum_wall_is_exact(work in 1u64..3000) {
        let cfg = HtmConfig { quantum: 1000, ..HtmConfig::default() };
        let sys = HtmSystem::new(cfg, 64);
        let mut th = sys.thread(0);
        let r = th.attempt(|tx| tx.work(work));
        // The timer fires once cumulative work *reaches* the quantum.
        if work < 1000 {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(r, Err(AbortCode::Timer));
        }
    }

    /// Two threads running random increment programs concurrently never lose an
    /// update: final counters equal the sum of both threads' committed adds.
    #[test]
    fn concurrent_adds_never_lost(ops_a in arb_ops(), ops_b in arb_ops()) {
        let sys = HtmSystem::new(HtmConfig::default(), 1024);
        let run = |tid: usize, ops: Vec<Op>| {
            let sys = &sys;
            move || {
                let mut th = sys.thread(tid);
                let mut committed = [0u64; 8];
                for _round in 0..10 {
                    let mut adds = [0u64; 8];
                    let r = th.attempt(|tx| {
                        for op in &ops {
                            match op {
                                Op::Read(c) => {
                                    tx.read(addr(*c))?;
                                }
                                Op::Add(c, d) => {
                                    let v = tx.read(addr(*c))?;
                                    tx.write(addr(*c), v + u64::from(*d))?;
                                    adds[*c as usize] += u64::from(*d);
                                }
                                Op::Work(u) => tx.work(u64::from(*u))?,
                            }
                        }
                        Ok(())
                    });
                    if r.is_ok() {
                        for c in 0..8 {
                            committed[c] += adds[c];
                        }
                    } else {
                        std::thread::yield_now();
                    }
                }
                committed
            }
        };
        let (done_a, done_b) = std::thread::scope(|s| {
            let ha = s.spawn(run(0, ops_a.clone()));
            let hb = s.spawn(run(1, ops_b.clone()));
            (ha.join().unwrap(), hb.join().unwrap())
        });
        for c in 0..8u8 {
            prop_assert_eq!(
                sys.nt_read(addr(c)),
                done_a[c as usize] + done_b[c as usize],
                "counter {} lost updates", c
            );
        }
        prop_assert_eq!(sys.live_line_entries(), 0);
    }
}
