//! Backend conformance suite: every [`BackendKind`] must uphold the contract
//! Part-HTM's soundness rests on (see `docs/backends.md`):
//!
//! 1. **Serializability under concurrent stress** — committed transactions
//!    behave as if executed atomically: per-word sums are conserved by
//!    4-thread increment storms, including shapes that overflow the hardware
//!    budgets (exercising the limited-set backend's software spill), and no
//!    conflict-table entries leak.
//! 2. **Capacity-abort determinism under the virtual clock** — the same
//!    `SchedSpec` reproduces the identical statistics (including capacity
//!    and spill counts) bit for bit.
//! 3. **Suspend/resume nesting rules** — suspended regions do not nest,
//!    resume requires suspend, transactional operations and commit inside a
//!    suspended region panic, and backends without suspended regions reject
//!    `suspend()` outright; same for rollback-only transactions.

use htm_sim::vclock::SchedSpec;
use htm_sim::{AbortCode, BackendKind, HtmConfig, HtmStats, HtmSystem, HtmThread, VClock};

/// A per-backend test configuration (tiny quantum so timer paths stay live).
fn cfg(kind: BackendKind) -> HtmConfig {
    HtmConfig {
        backend: Some(kind),
        quantum: 10_000,
        max_threads: 8,
        ..HtmConfig::default()
    }
}

/// Increment `lines` one-word-per-line counters starting at line `base` in
/// one transaction, retrying on aborts until committed, `rounds` times.
fn increment_storm(th: &mut HtmThread<'_>, base: usize, lines: usize, rounds: usize) {
    for _ in 0..rounds {
        let mut tries = 0u32;
        loop {
            let r = th.attempt(|tx| {
                for l in base..base + lines {
                    let a = (l * 8) as u32;
                    let v = tx.read(a)?;
                    tx.write(a, v + 1)?;
                }
                Ok(())
            });
            match r {
                Ok(()) => break,
                Err(AbortCode::Capacity) => panic!(
                    "{}-line transaction must fit backend capacity (or spill)",
                    lines
                ),
                Err(_) => {
                    tries += 1;
                    assert!(tries < 1_000_000, "livelocked");
                }
            }
        }
    }
}

/// Serializability: 4 threads x `rounds` committed transactions over `lines`
/// shared counters — every counter must end at exactly 4 x rounds, and the
/// conflict table must be empty.
fn stress(kind: BackendKind, lines: usize, rounds: usize) {
    let sys = HtmSystem::new(cfg(kind), lines * 8 + 8);
    std::thread::scope(|s| {
        for t in 0..4 {
            let sys = &sys;
            s.spawn(move || increment_storm(&mut sys.thread(t), 0, lines, rounds));
        }
    });
    for l in 0..lines {
        assert_eq!(
            sys.nt_read((l * 8) as u32),
            4 * rounds as u64,
            "{}: counter {l} lost updates",
            kind.name()
        );
    }
    assert_eq!(
        sys.live_line_entries(),
        0,
        "{}: conflict-table entries leaked",
        kind.name()
    );
}

#[test]
fn serializable_under_stress_within_capacity() {
    // 8 lines fit every backend's hardware write budget.
    for kind in BackendKind::ALL {
        stress(kind, 8, 40);
    }
}

#[test]
fn serializable_under_stress_with_spill() {
    // 24 written lines: over the limited-set hardware budget (16), inside its
    // spill budget — the software overflow path must stay serializable. Also
    // a healthy load for TSX (512) and POWER (64).
    for kind in BackendKind::ALL {
        stress(kind, 24, 25);
    }
    // The spill path must actually have been exercised on Limited.
    let sys = HtmSystem::new(cfg(BackendKind::Limited), 24 * 8 + 8);
    let mut th = sys.thread(0);
    th.attempt(|tx| {
        for l in 0..24 {
            tx.write((l * 8) as u32, 1)?;
        }
        Ok(())
    })
    .unwrap();
    assert!(
        th.stretch.spilled_lines >= 8,
        "24 written lines on a 16-line budget must spill, got {}",
        th.stretch.spilled_lines
    );
}

#[test]
fn capacity_overflow_code_is_capacity() {
    // Past every budget (hardware + spill), all backends abort with
    // AbortCode::Capacity — the code Part-HTM's resource-failure rescue keys
    // on.
    for kind in BackendKind::ALL {
        let sys = HtmSystem::new(cfg(kind), 1024 * 8);
        let model = sys.capacity_model();
        let over = model.write_lines_max() + model.spill_budget + 1;
        assert!(over <= 1024, "test heap too small for {}", kind.name());
        let mut th = sys.thread(0);
        let r = th.attempt(|tx| {
            for l in 0..over {
                tx.write((l * 8) as u32, 1)?;
            }
            Ok(())
        });
        assert_eq!(
            r,
            Err(AbortCode::Capacity),
            "{}: overflow must be a capacity abort",
            kind.name()
        );
        assert_eq!(th.stats.aborts_capacity, 1);
        assert_eq!(sys.live_line_entries(), 0);
    }
}

/// One virtual-clock run: 2 cores on disjoint line ranges, each doing wide
/// (spill-exercising) increments plus one deliberately over-budget attempt
/// that must abort with `Capacity`. Returns the per-core (stats,
/// spilled-line count) pairs plus the makespan as a determinism digest.
fn vclock_digest(kind: BackendKind) -> (Vec<(HtmStats, u64)>, u64) {
    let sys = HtmSystem::new(cfg(kind), 2048 * 8);
    let over = {
        let m = sys.capacity_model();
        m.write_lines_max() + m.spill_budget + 1
    };
    assert!(over <= 1024, "per-core line range too small");
    let clock = VClock::new(2, SchedSpec::default());
    let per_core: Vec<(HtmStats, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|t| {
                let clock = &clock;
                let sys = &sys;
                s.spawn(move || {
                    let _g = clock.attach(t);
                    let mut th = sys.thread(t);
                    let base = t * 1024;
                    increment_storm(&mut th, base, 24, 10);
                    let r = th.attempt(|tx| {
                        for l in base..base + over {
                            tx.write((l * 8) as u32, 1)?;
                        }
                        Ok(())
                    });
                    assert_eq!(r, Err(AbortCode::Capacity));
                    ((*th.stats).clone(), th.stretch.spilled_lines)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (per_core, clock.report().makespan)
}

#[test]
fn capacity_aborts_deterministic_under_vclock() {
    for kind in BackendKind::ALL {
        let a = vclock_digest(kind);
        let b = vclock_digest(kind);
        assert_eq!(a, b, "{}: virtual-clock run not reproducible", kind.name());
        assert!(a.1 > 0, "{}: virtual time must advance", kind.name());
    }
}

// ---------------------------------------------------------------------------
// Suspend/resume + ROT rules
// ---------------------------------------------------------------------------

fn power_sys() -> HtmSystem {
    // 512 lines: room for the read budget (128) plus stretched reads.
    HtmSystem::new(cfg(BackendKind::Power), 4096)
}

#[test]
fn suspend_resume_happy_path() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.write(0, 42).unwrap();
    tx.suspend();
    assert!(tx.is_suspended());
    // Suspended loads see the pre-transactional value, not the buffered write.
    assert_eq!(tx.suspended_read(0), 0);
    tx.suspended_work(500);
    tx.resume().unwrap();
    assert!(!tx.is_suspended());
    tx.commit().unwrap();
    assert_eq!(sys.nt_read(0), 42);
    assert_eq!(th.stretch.suspends, 1);
    assert_eq!(th.stretch.resumes, 1);
    assert_eq!(th.stretch.suspended_reads, 1);
    assert_eq!(th.stretch.suspended_work, 500);
}

#[test]
fn suspended_work_is_quantum_immune() {
    let sys = power_sys(); // quantum 10_000
    let mut th = sys.thread(0);
    let r = th.attempt(|tx| {
        tx.write(0, 1)?;
        tx.suspend();
        tx.suspended_work(1_000_000); // far past the quantum: survives
        tx.resume()?;
        Ok(())
    });
    assert_eq!(r, Ok(()));
    assert_eq!(th.stats.aborts_timer, 0);

    // The same work transactionally fires the timer.
    let r = th.attempt(|tx| {
        tx.write(0, 2)?;
        tx.work(1_000_000)
    });
    assert_eq!(r, Err(AbortCode::Timer));
}

#[test]
fn conflict_while_suspended_observed_at_resume() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.write(0, 5).unwrap();
    tx.suspend();
    // A peer commits over our write line while we are suspended.
    sys.nt_write(0, 9);
    assert_eq!(tx.resume(), Err(AbortCode::Conflict));
    drop(tx);
    assert_eq!(th.stats.aborts_conflict, 1);
    assert_eq!(sys.nt_read(0), 9, "our buffered write must not publish");
}

#[test]
fn stretched_reads_exceed_read_budget_but_stay_tracked() {
    let sys = power_sys();
    let model = sys.capacity_model();
    let budget = model.read_lines_max;
    let mut th = sys.thread(0);
    // Fill the hardware read budget, then stretch well past it.
    let r = th.attempt(|tx| {
        for l in 0..budget {
            tx.read((l * 8) as u32)?;
        }
        for l in budget..budget + 16 {
            tx.read_stretched((l * 8) as u32)?;
        }
        Ok(())
    });
    assert_eq!(r, Ok(()), "stretched reads must not hit the read budget");
    assert_eq!(th.stretch.stretched_reads, 16);
    assert_eq!(th.stats.aborts_capacity, 0);

    // ... and a stretched line is still conflict-tracked: a peer write to it
    // dooms the transaction (serializability is never traded away).
    let mut tx = th.begin();
    tx.read_stretched(0).unwrap();
    sys.nt_write(0, 1);
    assert_eq!(tx.read(8), Err(AbortCode::Conflict));
    drop(tx);
}

#[test]
fn rot_reads_are_invisible_to_conflict_detection() {
    let sys = power_sys();
    let mut writer = sys.thread(0);
    let mut rot = sys.thread(1);

    // A normal transaction holds line 0 in its write set; a ROT read of that
    // line neither dooms the writer (requester-wins would) nor registers.
    let mut wtx = writer.begin();
    wtx.write(0, 5).unwrap();
    let mut rtx = rot.begin_rot();
    assert_eq!(rtx.read(0), Ok(0), "ROT read sees the committed value");
    rtx.commit().unwrap();
    // The writer survived the ROT read.
    assert_eq!(wtx.read(8), Ok(0));
    wtx.commit().unwrap();
    assert_eq!(sys.nt_read(0), 5);

    // ROT writes are still conflict-tracked and buffered.
    let mut rtx = rot.begin_rot();
    rtx.write(16, 7).unwrap();
    assert_eq!(rtx.read(16), Ok(7), "ROT sees its own buffered write");
    sys.nt_write(16, 1); // peer write dooms the ROT via its write set
    assert!(rtx.read(24).is_err());
    drop(rtx);
    assert_eq!(sys.nt_read(16), 1, "doomed ROT publishes nothing");
    assert_eq!(rot.stretch.rot_begins, 2);
}

#[test]
#[should_panic(expected = "nested suspend")]
fn nested_suspend_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
    tx.suspend();
}

#[test]
#[should_panic(expected = "resume outside a suspended region")]
fn resume_without_suspend_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    let _ = tx.resume();
}

#[test]
#[should_panic(expected = "transactional read inside a suspended region")]
fn transactional_read_while_suspended_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
    let _ = tx.read(0);
}

#[test]
#[should_panic(expected = "transactional write inside a suspended region")]
fn transactional_write_while_suspended_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
    let _ = tx.write(0, 1);
}

#[test]
#[should_panic(expected = "commit inside a suspended region")]
fn commit_while_suspended_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
    let _ = tx.commit();
}

#[test]
#[should_panic(expected = "suspended_read outside a suspended region")]
fn suspended_read_outside_region_panics() {
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    let _ = tx.suspended_read(0);
}

#[test]
#[should_panic(expected = "backend has no suspended regions")]
fn suspend_on_tsx_panics() {
    let sys = HtmSystem::new(cfg(BackendKind::Tsx), 1024);
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
}

#[test]
#[should_panic(expected = "backend has no suspended regions")]
fn suspend_on_limited_panics() {
    let sys = HtmSystem::new(cfg(BackendKind::Limited), 1024);
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
}

#[test]
#[should_panic(expected = "backend has no suspended regions")]
fn suspend_on_legacy_path_panics() {
    let sys = HtmSystem::new(HtmConfig::default(), 1024);
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.suspend();
}

#[test]
#[should_panic(expected = "backend has no rollback-only transactions")]
fn rot_on_tsx_panics() {
    let sys = HtmSystem::new(cfg(BackendKind::Tsx), 1024);
    let mut th = sys.thread(0);
    let _ = th.begin_rot();
}

#[test]
fn abort_inside_suspended_region_cleans_up() {
    // xabort is legal while suspended (POWER's tabort. works in suspended
    // state) and must roll everything back, clearing the suspension.
    let sys = power_sys();
    let mut th = sys.thread(0);
    let mut tx = th.begin();
    tx.write(0, 3).unwrap();
    tx.suspend();
    assert_eq!(tx.xabort(9), AbortCode::Explicit(9));
    drop(tx);
    assert_eq!(th.stats.aborts_explicit, 1);
    assert_eq!(sys.nt_read(0), 0);
    assert_eq!(sys.live_line_entries(), 0);
}
