//! Differential oracle for the backend trait extraction: `backend: None`
//! (the legacy inline capacity path) and `backend: Some(BackendKind::Tsx)`
//! (the same geometry routed through the [`htm_sim::HtmBackend`] trait) must
//! be **bit-exact** — same per-operation results, same abort codes, same
//! statistics, same final heap — on arbitrary transactional programs and
//! arbitrary geometries. This is the repo's standing convention: every fast
//! path keeps a slower differential oracle pinned by a proptest; here the
//! legacy path *is* the oracle for the trait routing.

use htm_sim::{AbortCode, BackendKind, HtmConfig, HtmSystem};
use proptest::prelude::*;

/// A transactional program over 48 one-line counters: wide enough to hit the
/// capacity walls of the small geometries below.
#[derive(Clone, Debug)]
enum Op {
    Read(u8),
    Add(u8, u8),
    Work(u16),
    Private(u8),
    Abort(u8),
    Commit,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..48).prop_map(Op::Read),
            (0u8..48, 1u8..20).prop_map(|(c, d)| Op::Add(c, d)),
            (1u16..400).prop_map(Op::Work),
            (0u8..48).prop_map(Op::Private),
            (1u8..200).prop_map(Op::Abort),
            Just(Op::Commit),
        ],
        1..60,
    )
}

/// Small geometries that make every abort class reachable.
fn arb_geometry() -> impl Strategy<Value = HtmConfig> {
    (
        prop_oneof![Just(2usize), Just(4), Just(8)],
        1usize..4,
        4usize..40,
        prop_oneof![Just(0usize), Just(4), Just(8)],
        1usize..4,
        200u64..2000,
    )
        .prop_map(|(l1_sets, l1_ways, read_lines_max, l2_sets, l2_ways, quantum)| {
            HtmConfig {
                l1_sets,
                l1_ways,
                read_lines_max,
                l2_sets,
                l2_ways,
                quantum,
                ..HtmConfig::tiny()
            }
        })
}

fn addr(counter: u8) -> u32 {
    u32::from(counter) * 8
}

/// Run `programs` (each a transaction) single-threaded, recording every
/// operation's result, and return (per-op results, final heap, stats).
fn run(cfg: HtmConfig, programs: &[Vec<Op>]) -> (Vec<String>, Vec<u64>, htm_sim::HtmStats) {
    let sys = HtmSystem::new(cfg, 48 * 8);
    let mut th = sys.thread(0);
    let mut log = Vec::new();
    for prog in programs {
        let mut tx = th.begin();
        let mut aborted = false;
        let mut early_commit = false;
        for op in prog {
            if matches!(op, Op::Commit) {
                early_commit = true;
                break;
            }
            let r: Result<u64, AbortCode> = match op {
                Op::Read(c) => tx.read(addr(*c)),
                Op::Add(c, d) => {
                    let v = tx.read(addr(*c));
                    match v {
                        Ok(v) => tx.write(addr(*c), v + u64::from(*d)).map(|()| v),
                        Err(e) => Err(e),
                    }
                }
                Op::Work(u) => tx.work(u64::from(*u)).map(|()| 0),
                Op::Private(c) => tx.write_private(addr(*c), 7).map(|()| 0),
                Op::Abort(code) => Err(tx.xabort(*code)),
                Op::Commit => unreachable!(),
            };
            log.push(format!(
                "{op:?}:{r:?} rl={} wl={}",
                tx.read_lines(),
                tx.write_lines()
            ));
            if r.is_err() {
                aborted = true;
                break;
            }
        }
        if !aborted {
            let kind = if early_commit { "commit" } else { "final-commit" };
            log.push(format!("{kind}:{:?}", tx.commit()));
        }
    }
    let heap: Vec<u64> = (0..48).map(|c| sys.nt_read(addr(c))).collect();
    (log, heap, (*th.stats).clone())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The TSX backend routed through the trait is bit-exact with the legacy
    /// inline path: identical op results, abort codes, stats and heap.
    #[test]
    fn tsx_trait_routing_matches_legacy(
        geometry in arb_geometry(),
        programs in proptest::collection::vec(arb_ops(), 1..6),
    ) {
        let legacy_cfg = geometry.clone();
        prop_assert_eq!(legacy_cfg.backend, None);
        let trait_cfg = HtmConfig { backend: Some(BackendKind::Tsx), ..geometry };

        let (log_a, heap_a, stats_a) = run(legacy_cfg, &programs);
        let (log_b, heap_b, stats_b) = run(trait_cfg, &programs);

        prop_assert_eq!(log_a, log_b, "per-operation results diverged");
        prop_assert_eq!(heap_a, heap_b, "published heap diverged");
        prop_assert_eq!(stats_a, stats_b, "hardware statistics diverged");
    }
}

/// The capacity model synthesized for a backend-less system matches the
/// geometry the TSX backend publishes — core/planner code plans against
/// [`HtmSystem::capacity_model`] and must see the same numbers either way.
#[test]
fn capacity_model_agrees_across_routing() {
    let cfg = HtmConfig::default();
    let legacy = HtmSystem::new(cfg.clone(), 64).capacity_model();
    let routed = HtmSystem::new(
        HtmConfig {
            backend: Some(BackendKind::Tsx),
            ..cfg
        },
        64,
    )
    .capacity_model();
    assert_eq!(legacy.write_lines_max(), routed.write_lines_max());
    assert_eq!(legacy.read_lines_max, routed.read_lines_max);
    assert_eq!(legacy.l2_sets, routed.l2_sets);
    assert_eq!(legacy.supports_suspend, routed.supports_suspend);
    assert_eq!(legacy.spill_budget, routed.spill_budget);
}
