//! Multi-threaded stress tests for the HTM simulator: atomicity and isolation of
//! hardware transactions under contention.

use htm_sim::{AbortCode, HtmConfig, HtmSystem};

/// N threads increment a set of counters transactionally with retry; the final sum
/// must equal the number of committed increments (no lost updates).
#[test]
fn no_lost_updates_under_contention() {
    let sys = HtmSystem::new(HtmConfig::default(), 4096);
    const THREADS: usize = 4;
    const OPS: usize = 500;
    const COUNTERS: u32 = 4; // all in distinct lines

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let sys = &sys;
            s.spawn(move || {
                let mut th = sys.thread(t);
                for i in 0..OPS {
                    let ctr = ((i + t) % COUNTERS as usize) as u32 * 8;
                    loop {
                        let r = th.attempt(|tx| {
                            let v = tx.read(ctr)?;
                            tx.work(5)?;
                            tx.write(ctr, v + 1)
                        });
                        match r {
                            Ok(()) => break,
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                }
            });
        }
    });

    let total: u64 = (0..COUNTERS).map(|c| sys.nt_read(c * 8)).sum();
    assert_eq!(total, (THREADS * OPS) as u64);
    assert_eq!(sys.live_line_entries(), 0, "no leaked line registrations");
}

/// Transactions maintain the invariant x + y == 0 (transfer between two words).
/// Concurrent readers must never observe a violated invariant.
#[test]
fn isolation_invariant_never_torn() {
    let sys = HtmSystem::new(HtmConfig::default(), 4096);
    const X: u32 = 0;
    const Y: u32 = 64; // distinct lines
    sys.nt_write(X, 1000);
    sys.nt_write(Y, 1000);

    // The reader drives termination so the test cannot depend on scheduling luck
    // (on a single-core machine the writer could otherwise finish before the reader
    // ever commits).
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let sysr = &sys;
        let stopr = &stop;
        // Writer: move value between X and Y until the reader is done.
        s.spawn(move || {
            let mut th = sysr.thread(0);
            let mut i = 0u64;
            while !stopr.load(std::sync::atomic::Ordering::Relaxed) {
                let delta = (i % 7) + 1;
                i += 1;
                let _ = th.attempt(|tx| {
                    let x = tx.read(X)?;
                    let y = tx.read(Y)?;
                    tx.write(X, x.wrapping_sub(delta))?;
                    tx.write(Y, y.wrapping_add(delta))
                });
                std::thread::yield_now();
            }
        });
        // Reader: check the invariant transactionally, 200 committed checks.
        s.spawn(move || {
            let mut th = sysr.thread(1);
            for _ in 0..200 {
                let (x, y) = loop {
                    if let Ok(pair) = th.attempt(|tx| {
                        let x = tx.read(X)?;
                        let y = tx.read(Y)?;
                        Ok((x, y))
                    }) {
                        break pair;
                    }
                    std::thread::yield_now();
                };
                assert_eq!(
                    x.wrapping_add(y),
                    2000,
                    "isolation violated: observed x={x} y={y}"
                );
            }
            stopr.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });
    assert_eq!(sys.nt_read(X).wrapping_add(sys.nt_read(Y)), 2000);
}

/// Strong atomicity: non-transactional writes doom hardware transactions that read
/// the line, under concurrency.
#[test]
fn strong_atomicity_under_concurrency() {
    let sys = HtmSystem::new(HtmConfig::default(), 4096);
    std::thread::scope(|s| {
        let sysr = &sys;
        let h = s.spawn(move || {
            let mut th = sysr.thread(0);
            let mut conflicts = 0;
            for _ in 0..2000 {
                let r = th.attempt(|tx| {
                    let v = tx.read(0)?;
                    tx.work(20)?;
                    let v2 = tx.read(0)?;
                    // Within one hardware transaction the same word is stable.
                    assert_eq!(v, v2);
                    Ok(())
                });
                if r == Err(AbortCode::Conflict) {
                    conflicts += 1;
                }
            }
            conflicts
        });
        s.spawn(move || {
            for i in 0..5000u64 {
                sysr.nt_write(0, i);
            }
        });
        let _ = h.join().unwrap();
    });
}

/// Capacity limits are per-transaction, not cumulative across retries.
#[test]
fn capacity_resets_between_attempts() {
    let cfg = HtmConfig::tiny(); // 8 written lines max
    let sys = HtmSystem::new(cfg, 4096);
    let mut th = sys.thread(0);
    for round in 0..10 {
        let r = th.attempt(|tx| {
            for i in 0..8u32 {
                tx.write(i * 8, round)?;
            }
            Ok(())
        });
        assert!(r.is_ok(), "round {round} should fit exactly in capacity");
    }
    assert_eq!(th.stats.commits, 10);
}
