//! Randomized differential test: the lock-free packed-word conflict table
//! ([`htm_sim::line_table::LineTable`]) against the mutex-based reference
//! implementation ([`htm_sim::line_table_ref::MutexLineTable`]).
//!
//! Sequential executions of the two implementations must agree *exactly* — the
//! packed table's extra freedoms (spurious dooms, claim back-off) only arise
//! under concurrency. The driver replays the same randomized operation sequence
//! against both tables, each paired with its own registry, and after every step
//! asserts identical access outcomes, identical per-thread statuses, and
//! identical packed ownership words for every line.

use htm_sim::line_table::{AccessOutcome, LineTable};
use htm_sim::line_table_ref::MutexLineTable;
use htm_sim::registry::{Requester, ThreadId, TxRegistry, TxStatus};
use proptest::prelude::*;

const THREADS: u8 = 4;
const LINES: u32 = 6;

/// One encoded step: (kind, thread, line). Invalid combinations for the current
/// state are skipped by the driver, so every generated sequence is replayable.
type RawOp = (u8, u8, u8);

struct Pair {
    packed: LineTable,
    packed_reg: TxRegistry,
    mutexed: MutexLineTable,
    mutexed_reg: TxRegistry,
    /// Per-thread touched lines (for commit/abort cleanup).
    touched: Vec<Vec<u32>>,
    /// Per-thread lines registered as writes (to keep generated non-transactional
    /// self-accesses legal: never to a line in the caller's own write set).
    wlines: Vec<Vec<u32>>,
}

impl Pair {
    fn new() -> Self {
        Self {
            packed: LineTable::new(LINES as usize),
            packed_reg: TxRegistry::new(THREADS as usize),
            mutexed: MutexLineTable::new(LINES as usize),
            mutexed_reg: TxRegistry::new(THREADS as usize),
            touched: vec![Vec::new(); THREADS as usize],
            wlines: vec![Vec::new(); THREADS as usize],
        }
    }

    fn status(&self, t: ThreadId) -> TxStatus {
        self.packed_reg.status(t)
    }

    fn check_mirrors(&self, step: usize) {
        for t in 0..THREADS {
            assert_eq!(
                self.packed_reg.status(t),
                self.mutexed_reg.status(t),
                "status diverged for thread {t} at step {step}"
            );
        }
        for line in 0..LINES {
            assert_eq!(
                self.packed.raw_word(line),
                self.mutexed.raw_word(line),
                "ownership diverged for line {line} at step {step}"
            );
        }
    }

    fn end_tx(&mut self, t: ThreadId) {
        // Commit or abort epilogue: identical cleanup either way at table level.
        for &line in &self.touched[t as usize] {
            self.packed.unregister(line, t);
            self.mutexed.unregister(line, t);
        }
        self.touched[t as usize].clear();
        self.wlines[t as usize].clear();
        self.packed_reg.finish(t);
        self.mutexed_reg.finish(t);
    }

    fn apply(&mut self, step: usize, (kind, t, line): RawOp) {
        let line = line as u32;
        match kind {
            // Begin a transaction.
            0 => {
                if self.status(t) == TxStatus::Inactive {
                    self.packed_reg.begin(t);
                    self.mutexed_reg.begin(t);
                }
            }
            // Transactional read.
            1 => {
                if self.status(t) == TxStatus::Active {
                    let a = self.packed.tx_read(&self.packed_reg, line, t);
                    let b = self.mutexed.tx_read(&self.mutexed_reg, line, t);
                    assert_eq!(a, b, "tx_read outcome diverged at step {step}");
                    if a == AccessOutcome::Ok && !self.touched[t as usize].contains(&line) {
                        self.touched[t as usize].push(line);
                    }
                }
            }
            // Transactional write.
            2 => {
                if self.status(t) == TxStatus::Active {
                    let a = self.packed.tx_write(&self.packed_reg, line, t);
                    let b = self.mutexed.tx_write(&self.mutexed_reg, line, t);
                    assert_eq!(a, b, "tx_write outcome diverged at step {step}");
                    if a == AccessOutcome::Ok {
                        if !self.touched[t as usize].contains(&line) {
                            self.touched[t as usize].push(line);
                        }
                        if !self.wlines[t as usize].contains(&line) {
                            self.wlines[t as usize].push(line);
                        }
                    }
                }
            }
            // Attempt commit (start_commit then cleanup); doomed commits abort.
            3 => {
                if matches!(self.status(t), TxStatus::Active | TxStatus::Doomed) {
                    let a = self.packed_reg.start_commit(t);
                    let b = self.mutexed_reg.start_commit(t);
                    assert_eq!(a.is_ok(), b.is_ok(), "commit outcome diverged at step {step}");
                    self.end_tx(t);
                }
            }
            // Abort.
            4 => {
                if matches!(self.status(t), TxStatus::Active | TxStatus::Doomed) {
                    self.end_tx(t);
                }
            }
            // External non-transactional read / write.
            5 | 6 => {
                let is_write = kind == 6;
                let a = self
                    .packed
                    .nt_access(&self.packed_reg, line, is_write, Requester::External);
                let b = self
                    .mutexed
                    .nt_access(&self.mutexed_reg, line, is_write, Requester::External);
                assert_eq!(a, b, "external nt outcome diverged at step {step}");
            }
            // Non-transactional write by a simulator thread (skipping a line in the
            // thread's own write set, which would be an asserted protocol error).
            _ => {
                if !self.wlines[t as usize].contains(&line) {
                    let a =
                        self.packed
                            .nt_access(&self.packed_reg, line, true, Requester::Thread(t));
                    let b = self.mutexed.nt_access(
                        &self.mutexed_reg,
                        line,
                        true,
                        Requester::Thread(t),
                    );
                    assert_eq!(a, b, "self nt outcome diverged at step {step}");
                }
            }
        }
        self.check_mirrors(step);
    }

    fn drain(&mut self) {
        for t in 0..THREADS {
            if self.status(t) != TxStatus::Inactive {
                let _ = self.packed_reg.start_commit(t);
                let _ = self.mutexed_reg.start_commit(t);
                self.end_tx(t);
            }
        }
        assert_eq!(self.packed.live_entries(), 0, "packed table leaked entries");
        assert_eq!(self.mutexed.live_entries(), 0, "mutex table leaked entries");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn packed_table_matches_mutex_reference(
        ops in proptest::collection::vec((0u8..8, 0u8..THREADS, 0u8..LINES as u8), 0..250)
    ) {
        let mut pair = Pair::new();
        for (step, op) in ops.iter().enumerate() {
            pair.apply(step, *op);
        }
        pair.drain();
    }
}

/// A directed sequence covering every conflict shape once, as a fast smoke test
/// independent of the random generator.
#[test]
fn directed_conflict_shapes_match() {
    let mut pair = Pair::new();
    let script: &[RawOp] = &[
        (0, 0, 0), // t0 begin
        (0, 1, 0), // t1 begin
        (1, 0, 2), // t0 reads line 2
        (1, 1, 2), // t1 reads line 2 (shared read)
        (2, 0, 2), // t0 writes line 2 -> dooms t1
        (3, 1, 0), // t1 commit fails (doomed), aborts
        (6, 0, 2), // external NT write -> dooms t0
        (3, 0, 0), // t0 commit fails
        (0, 2, 0), // t2 begin
        (2, 2, 3), // t2 writes line 3
        (5, 1, 3), // external NT read -> dooms t2
        (7, 2, 4), // t2's own NT write to an untouched line
        (4, 2, 0), // t2 abort
    ];
    for (step, op) in script.iter().enumerate() {
        pair.apply(step, *op);
    }
    pair.drain();
}
