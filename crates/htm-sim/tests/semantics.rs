//! Edge-case semantics of the HTM substrate: private stores, upgrades, budgets,
//! interrupt injection, wait paths, strong atomicity corners.

use htm_sim::{AbortCode, HtmConfig, HtmSystem};

fn sys() -> HtmSystem {
    HtmSystem::new(HtmConfig::default(), 8192)
}

#[test]
fn write_private_is_immediate_and_not_rolled_back() {
    let s = sys();
    let mut th = s.thread(0);
    let mut tx = th.begin();
    tx.write_private(0, 77).unwrap();
    // Visible immediately, before commit.
    assert_eq!(s.heap().load(0), 77);
    // And the abort does not undo it (that is the contract).
    assert_eq!(tx.xabort(5), AbortCode::Explicit(5));
    drop(tx);
    assert_eq!(s.heap().load(0), 77);
    assert_eq!(s.live_line_entries(), 0, "private lines still unregistered on abort");
}

#[test]
fn write_private_counts_against_capacity() {
    let cfg = HtmConfig { l1_sets: 4, l1_ways: 2, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 8192);
    let mut th = s.thread(0);
    let r = th.attempt(|tx| {
        for i in 0..9u32 {
            tx.write_private(i * 8, 1)?;
        }
        Ok(())
    });
    assert_eq!(r, Err(AbortCode::Capacity));
}

#[test]
fn write_private_conflicts_like_a_write() {
    let s = sys();
    let mut a = s.thread(0);
    let mut b = s.thread(1);
    let mut atx = a.begin();
    atx.read(0).unwrap();
    // b's private store to the same line invalidates a (requester wins).
    b.attempt(|tx| tx.write_private(0, 1)).unwrap();
    assert_eq!(atx.read(8), Err(AbortCode::Conflict));
}

#[test]
fn read_then_write_upgrade_keeps_one_touched_entry() {
    let s = sys();
    let mut th = s.thread(0);
    let mut tx = th.begin();
    assert_eq!(tx.read(0), Ok(0));
    assert_eq!(tx.read_lines(), 1);
    tx.write(0, 5).unwrap();
    assert_eq!(tx.write_lines(), 1);
    // Still one read line (first access was the read).
    assert_eq!(tx.read_lines(), 1);
    tx.commit().unwrap();
    assert_eq!(s.live_line_entries(), 0);
}

#[test]
fn write_then_read_does_not_consume_read_budget() {
    let cfg = HtmConfig { read_lines_max: 1, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 8192);
    let mut th = s.thread(0);
    th.attempt(|tx| {
        for i in 0..4u32 {
            tx.write(i * 8, 1)?;
            // Reading back a written line is free: TSX already tracks it in L1.
            assert_eq!(tx.read(i * 8)?, 1);
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn read_budget_boundary_is_exact() {
    let cfg = HtmConfig { read_lines_max: 4, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 8192);
    let mut th = s.thread(0);
    assert!(th
        .attempt(|tx| {
            for i in 0..4u32 {
                tx.read(i * 8)?;
            }
            Ok(())
        })
        .is_ok());
    let r = th.attempt(|tx| {
        for i in 0..5u32 {
            tx.read(i * 8)?;
        }
        Ok(())
    });
    assert_eq!(r, Err(AbortCode::Capacity));
}

#[test]
fn fetch_update_aborts_propagate() {
    let cfg = HtmConfig { quantum: 1, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 64);
    let mut th = s.thread(0);
    // The very first op reaches the 1-unit quantum: timer abort.
    let r = th.attempt(|tx| tx.fetch_update(0, |v| v + 1).map(|_| ()));
    assert_eq!(r, Err(AbortCode::Timer));
}

#[test]
fn interrupt_prob_one_kills_first_op() {
    let cfg = HtmConfig { interrupt_prob: 1.0, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 64);
    let mut th = s.thread(0);
    assert_eq!(
        th.attempt(|tx| tx.read(0).map(|_| ())),
        Err(AbortCode::Interrupt)
    );
    assert_eq!(th.stats.aborts_interrupt, 1);
}

#[test]
fn doomed_victim_cannot_publish() {
    let s = sys();
    let mut a = s.thread(0);
    let mut b = s.thread(1);
    let mut atx = a.begin();
    atx.write(0, 111).unwrap();
    // b reads the same line: requester wins, a is doomed.
    b.attempt(|tx| tx.read(0).map(|_| ())).unwrap();
    assert_eq!(atx.commit(), Err(AbortCode::Conflict));
    assert_eq!(s.nt_read(0), 0, "doomed writer must not publish");
}

#[test]
fn requester_waits_out_a_committing_peer() {
    // Thread A parks in Committing state (we drive the registry directly through a
    // half-committed transaction) while B's access spins until A finishes. Driving
    // this deterministically from two real threads: A commits a large buffer while
    // B hammers the same line; B must never read a torn value and must eventually
    // succeed.
    let s = sys();
    std::thread::scope(|scope| {
        let sref = &s;
        scope.spawn(move || {
            let mut a = sref.thread(0);
            for round in 1..200u64 {
                let _ = a.attempt(|tx| {
                    for w in 0..8u32 {
                        tx.write(w, round)?;
                    }
                    Ok(())
                });
            }
        });
        scope.spawn(move || {
            let mut b = sref.thread(1);
            for _ in 0..200 {
                if let Ok(vals) = b.attempt(|tx| {
                    let mut vals = [0u64; 8];
                    for w in 0..8u32 {
                        vals[w as usize] = tx.read(w)?;
                    }
                    Ok(vals)
                }) {
                    assert!(
                        vals.iter().all(|&v| v == vals[0]),
                        "torn line observed: {vals:?}"
                    );
                }
            }
        });
    });
}

#[test]
fn nt_rmw_primitives_doom_conflicting_txs() {
    let s = sys();
    let mut th = s.thread(0);

    for (name, op) in [
        ("cas", Box::new(|| {
            let _ = s.nt_cas_by(1, 0, 0, 1);
        }) as Box<dyn Fn()>),
        ("fetch_add", Box::new(|| {
            s.nt_fetch_add_by(1, 0, 1);
        })),
        ("fetch_sub", Box::new(|| {
            s.nt_fetch_sub_by(1, 0, 1);
        })),
        ("fetch_or", Box::new(|| {
            s.nt_fetch_or_by(1, 0, 1);
        })),
        ("fetch_and", Box::new(|| {
            s.nt_fetch_and_by(1, 0, !0);
        })),
    ] {
        let mut tx = th.begin();
        tx.read(0).unwrap();
        op();
        assert_eq!(tx.read(8), Err(AbortCode::Conflict), "{name} must doom readers");
    }
}

#[test]
fn thread_stats_work_units_accumulate() {
    let s = sys();
    let mut th = s.thread(0);
    th.attempt(|tx| tx.work(100)).unwrap();
    let _ = th.attempt(|tx| -> Result<(), AbortCode> {
        tx.work(50)?;
        Err(tx.xabort(1))
    });
    // Work is accounted for commits and aborts alike.
    assert!(th.stats.work_units >= 150);
}

#[test]
fn zero_value_and_max_value_roundtrip() {
    let s = sys();
    let mut th = s.thread(0);
    th.attempt(|tx| {
        tx.write(0, u64::MAX)?;
        tx.write(8, 0)
    })
    .unwrap();
    assert_eq!(s.nt_read(0), u64::MAX);
    assert_eq!(s.nt_read(8), 0);
}

#[test]
fn trace_records_transaction_lifecycle() {
    let cfg = HtmConfig { trace_capacity: 16, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 8192);
    let mut th = s.thread(0);
    th.attempt(|tx| {
        tx.read(0)?;
        tx.write(8, 1)
    })
    .unwrap();
    let _ = th.attempt(|tx| -> Result<(), AbortCode> { Err(tx.xabort(9)) });

    use htm_sim::trace::Event;
    let evs: Vec<_> = th.trace.events().cloned().collect();
    assert_eq!(evs.len(), 4, "{evs:?}");
    assert_eq!(evs[0], Event::Begin);
    assert!(matches!(evs[1], Event::Commit { read_lines: 1, write_lines: 1, .. }), "{evs:?}");
    assert_eq!(evs[2], Event::Begin);
    assert!(
        matches!(evs[3], Event::Abort { code: AbortCode::Explicit(9), .. }),
        "{evs:?}"
    );
    assert!(!th.trace.render().is_empty());
}

#[test]
fn trace_disabled_by_default() {
    let s = sys();
    let mut th = s.thread(0);
    th.attempt(|tx| tx.write(0, 1)).unwrap();
    assert!(th.trace.is_empty());
}

#[test]
fn l2_read_associativity_aborts_on_set_conflicts() {
    // 4 sets x 2 ways for reads: three reads striding the same set abort even
    // though the flat budget (4096) is nowhere near exhausted.
    let cfg = HtmConfig { l2_sets: 4, l2_ways: 2, ..HtmConfig::default() };
    let s = HtmSystem::new(cfg, 8192);
    let mut th = s.thread(0);
    let r = th.attempt(|tx| {
        tx.read(0)?; // line 0 -> set 0
        tx.read(4 * 8)?; // line 4 -> set 0
        tx.read(8 * 8)?; // line 8 -> set 0: evicts
        Ok(())
    });
    assert_eq!(r, Err(AbortCode::Capacity));
    // Distinct sets are fine, and the model resets between attempts.
    th.attempt(|tx| {
        tx.read(0)?;
        tx.read(8)?;
        tx.read(16)?;
        Ok(())
    })
    .unwrap();
}
