//! Virtual-clock integration tests: monotonicity and determinism of
//! multi-core HTM runs under the discrete-event scheduler.
//!
//! The key properties (ISSUE 8 acceptance criteria):
//! * commit timestamps are globally monotone — an executing core always holds
//!   the minimum runnable timestamp, so observable actions are ordered;
//! * the same `SchedSpec` reproduces the identical decision trace, commit log
//!   and `HtmStats`, bit for bit, including injected interrupts.

use htm_sim::vclock::{self, SchedPolicy, SchedSpec, VReport};
use htm_sim::{AbortCode, HtmConfig, HtmStats, HtmSystem, VClock};
use proptest::prelude::*;

/// Run `threads` workers under a virtual clock; worker `t` executes
/// `body(t, &mut th)` attached to core `t`. Returns the schedule report plus
/// the per-thread hardware stats merged in core order (deterministic).
fn run_virtual<F>(sys: &HtmSystem, threads: usize, spec: SchedSpec, body: F) -> (VReport, HtmStats)
where
    F: Fn(usize, &mut htm_sim::HtmThread<'_>) + Sync,
{
    let clock = VClock::new(threads, spec);
    let stats: Vec<HtmStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let clock = &clock;
                let body = &body;
                s.spawn(move || {
                    let _g = clock.attach(t);
                    let mut th = sys.thread(t);
                    body(t, &mut th);
                    (*th.stats).clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = HtmStats::default();
    for s in &stats {
        merged.merge(s);
    }
    (clock.report(), merged)
}

/// `n` conflicting counter increments per thread: every thread hammers word 0,
/// retrying each increment until it commits (requester-wins dooming guarantees
/// someone always makes progress; the backoff yields virtual time).
fn conflicting_increments(n: u64) -> impl Fn(usize, &mut htm_sim::HtmThread<'_>) + Sync {
    move |_t, th| {
        for _ in 0..n {
            let mut tries = 0u32;
            loop {
                let r = th.attempt(|tx| {
                    let v = tx.read(0)?;
                    tx.write(0, v + 1)
                });
                match r {
                    Ok(()) => break,
                    Err(_) => {
                        tries += 1;
                        assert!(tries < 100_000, "livelocked under the virtual clock");
                        let mut b = htm_sim::util::Backoff::new();
                        b.snooze();
                    }
                }
            }
        }
    }
}

#[test]
fn conflicting_counters_conserve_and_commit_times_are_monotone() {
    let sys = HtmSystem::new(HtmConfig::tiny(), 256);
    let (report, stats) = run_virtual(&sys, 4, SchedSpec::default(), conflicting_increments(25));
    assert_eq!(sys.nt_read(0), 100, "every increment committed exactly once");
    assert_eq!(stats.commits, 100);
    assert_eq!(report.n_commits, 100);
    // An executing core always holds the minimum runnable timestamp, so the
    // commit log — ordered by occurrence — must be ordered by virtual time.
    for w in report.commit_log.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "commit times must be globally monotone: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    assert!(report.makespan > 0);
}

#[test]
fn same_spec_reproduces_run_bit_exactly() {
    let spec = SchedSpec {
        seed: 42,
        policy: SchedPolicy::Seeded,
        forced: vec![],
    };
    let mk = || {
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        let (r, s) = run_virtual(&sys, 3, spec.clone(), conflicting_increments(20));
        (r.trace_text(), r.commit_log.clone(), s, sys.nt_read(0))
    };
    let (t1, c1, s1, v1) = mk();
    let (t2, c2, s2, v2) = mk();
    assert_eq!(t1, t2, "decision traces must be byte-identical");
    assert_eq!(c1, c2, "commit logs must be identical");
    assert_eq!(s1, s2, "hardware stats must be identical");
    assert_eq!(v1, v2);
}

#[test]
fn injected_interrupts_replay_bit_exactly() {
    // With interrupt_prob > 0 the per-charge draw comes from the clock's
    // seeded per-core RNG, so the whole run — including which ops the
    // interrupts hit — replays from the spec alone.
    let cfg = HtmConfig {
        interrupt_prob: 0.05,
        ..HtmConfig::tiny()
    };
    let spec = SchedSpec {
        seed: 7,
        policy: SchedPolicy::Seeded,
        forced: vec![],
    };
    let mk = || {
        let sys = HtmSystem::new(cfg.clone(), 256);
        let (r, s) = run_virtual(&sys, 2, spec.clone(), conflicting_increments(30));
        (r.trace_text(), s)
    };
    let (t1, s1) = mk();
    let (t2, s2) = mk();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
    assert!(
        s1.aborts_interrupt > 0,
        "5% per-op interrupt probability over hundreds of ops must fire"
    );
}

#[test]
fn forced_prefix_changes_the_interleaving_but_not_the_sum() {
    // Different schedules may reorder commits and change abort counts, but
    // the workload's semantics (the conserved counter) must hold under all.
    let base = || HtmSystem::new(HtmConfig::tiny(), 256);
    let sys_a = base();
    let (ra, _) = run_virtual(&sys_a, 2, SchedSpec::default(), conflicting_increments(10));
    let sys_b = base();
    let spec_b = SchedSpec {
        forced: vec![1, 1, 1, 1],
        ..SchedSpec::default()
    };
    let (rb, _) = run_virtual(&sys_b, 2, spec_b, conflicting_increments(10));
    assert_eq!(sys_a.nt_read(0), 20);
    assert_eq!(sys_b.nt_read(0), 20);
    // Both runs hit schedule decisions; the forced run took a different path.
    assert!(ra.n_decisions > 0 && rb.n_decisions > 0);
    assert_ne!(
        ra.decisions.first().map(|d| d.chosen),
        rb.decisions.first().map(|d| d.chosen),
        "the forced prefix must actually flip decision 0"
    );
}

#[test]
fn quantum_timer_is_deterministic_under_the_clock() {
    // A transaction reaching the quantum aborts with Timer on every schedule.
    let cfg = HtmConfig {
        quantum: 8,
        ..HtmConfig::tiny()
    };
    let sys = HtmSystem::new(cfg, 256);
    let (_, stats) = run_virtual(&sys, 2, SchedSpec::default(), move |_, th| {
        let r = th.attempt(|tx| tx.work(8));
        assert_eq!(r, Err(AbortCode::Timer));
    });
    assert_eq!(stats.aborts_timer, 2);
}

#[test]
fn unattached_threads_coexist_with_virtual_runs() {
    // vclock hooks are per-thread: a thread that never attached must run
    // unimpeded even while a virtual-time run is in flight elsewhere.
    let sys = HtmSystem::new(HtmConfig::tiny(), 256);
    std::thread::scope(|s| {
        s.spawn(|| {
            let clock = VClock::new(1, SchedSpec::default());
            let _g = clock.attach(0);
            let mut th = sys.thread(0);
            for _ in 0..50 {
                th.attempt(|tx| {
                    let v = tx.read(0)?;
                    tx.write(0, v + 1)
                })
                .ok();
            }
        });
        s.spawn(|| {
            assert!(!vclock::is_attached());
            let mut th = sys.thread(1);
            for _ in 0..50 {
                loop {
                    let r = th.attempt(|tx| {
                        let v = tx.read(8)?;
                        tx.write(8, v + 1)
                    });
                    if r.is_ok() {
                        break;
                    }
                }
            }
        });
    });
    assert_eq!(sys.nt_read(8), 50);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Determinism sweep: any seed, any thread count 2..=4 — two runs of the
    /// same spec agree on trace, commit log, stats, and final memory.
    #[test]
    fn any_seed_is_reproducible(seed in 0u64..u64::MAX, threads in 2usize..5) {
        let spec = SchedSpec { seed, policy: SchedPolicy::Seeded, forced: vec![] };
        let mk = || {
            let sys = HtmSystem::new(HtmConfig::tiny(), 256);
            let (r, s) = run_virtual(&sys, threads, spec.clone(), conflicting_increments(8));
            (r.trace_text(), r.commit_log.clone(), s, sys.nt_read(0))
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
        prop_assert_eq!(a.3, (threads as u64) * 8);
        prop_assert_eq!(b.3, (threads as u64) * 8);
    }

    /// Per-core times never run backwards: each core's commit timestamps are
    /// non-decreasing in every explored schedule.
    #[test]
    fn per_core_commit_times_are_monotone(seed in 0u64..u64::MAX) {
        let spec = SchedSpec { seed, policy: SchedPolicy::Seeded, forced: vec![] };
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        let (r, _) = run_virtual(&sys, 3, spec, conflicting_increments(8));
        let mut last = [0u64; 3];
        for &(core, t) in &r.commit_log {
            prop_assert!(t >= last[core], "core {} time ran backwards", core);
            last[core] = t;
        }
    }
}
