//! Geometry and policy knobs of the simulated best-effort HTM.

/// Configuration of the simulated hardware.
///
/// The defaults model the Intel Haswell parts used in the paper's evaluation
/// (L1d = 32 KB, 8-way, 64-byte lines), with a read-set budget reflecting TSX's
/// L2-assisted read tracking, and a work-unit quantum standing in for the OS
/// scheduler's timer interrupt.
#[derive(Clone, Debug)]
pub struct HtmConfig {
    /// Number of sets in the simulated L1 data cache. Written lines map to a set by
    /// `line % l1_sets`.
    pub l1_sets: usize,
    /// Associativity of the simulated L1. Writing a `l1_ways + 1`-th distinct line
    /// into one set aborts with [`crate::AbortCode::Capacity`] (a written line would
    /// be evicted).
    pub l1_ways: usize,
    /// Maximum number of distinct lines a transaction may *read*. TSX can track read
    /// lines beyond L1 (the paper, §2: "read operations can go beyond the L1 cache
    /// capacity by exploiting the L2 cache"), so this is larger than the write budget.
    pub read_lines_max: usize,
    /// Optional set-associative model for the read set (the L2): when `l2_sets > 0`,
    /// read lines must additionally fit `l2_sets x l2_ways`, so pathological set
    /// conflicts can abort a read set well below `read_lines_max` — as on real
    /// hardware. 0 (the default) keeps the flat budget only.
    pub l2_sets: usize,
    /// Associativity of the optional L2 read model.
    pub l2_ways: usize,
    /// Virtual work units of the simulated timer quantum: the timer fires once
    /// cumulative work *reaches* the quantum (consuming exactly `quantum` units
    /// aborts with [`crate::AbortCode::Timer`]). Each transactional read/write
    /// costs 1 unit; [`crate::HtmTx::work`] charges its argument.
    pub quantum: u64,
    /// Probability, per transactional operation, of a randomly injected asynchronous
    /// interrupt ([`crate::AbortCode::Interrupt`]). Models page faults, device
    /// interrupts, etc. Default 0 (deterministic). Under a [`crate::vclock::VClock`]
    /// the draw comes from the clock's seeded per-core RNG, so injected interrupts
    /// replay bit-exactly with the schedule.
    pub interrupt_prob: f64,
    /// Maximum number of hardware threads. Bounded by
    /// [`crate::registry::MAX_THREADS`] (56) because each conflict-table line packs
    /// its reader bitmap and writer byte into a single atomic word.
    pub max_threads: usize,
    /// Events retained per thread by the debugging trace (see [`crate::trace`]);
    /// 0 (the default) disables tracing entirely.
    pub trace_capacity: usize,
    /// Capacity-model backend (see [`crate::backend`]). `None` (the default)
    /// keeps the legacy inline TSX path — byte-for-byte the pre-trait
    /// behaviour. `Some(BackendKind::Tsx)` routes the same geometry through
    /// the [`crate::backend::HtmBackend`] trait (bit-exact, pinned by
    /// `tests/backend_diff.rs`); `Power` and `Limited` select the alternative
    /// capacity models, whose fixed geometries override the `l1_*`/`l2_*`/
    /// `read_lines_max` fields above.
    pub backend: Option<crate::backend::BackendKind>,
}

impl Default for HtmConfig {
    fn default() -> Self {
        Self {
            l1_sets: 64,
            l1_ways: 8,
            read_lines_max: 4096,
            l2_sets: 0,
            l2_ways: 8,
            quantum: 50_000,
            interrupt_prob: 0.0,
            max_threads: crate::registry::MAX_THREADS,
            trace_capacity: 0,
            backend: None,
        }
    }
}

impl HtmConfig {
    /// Total number of lines that fit in the simulated L1 (the write-set capacity
    /// upper bound, reached only by a perfectly uniform set distribution).
    pub fn l1_lines(&self) -> usize {
        self.l1_sets * self.l1_ways
    }

    /// A tiny geometry useful in tests: 4 sets x 2 ways (8 written lines max),
    /// 16 read lines, quantum 1000.
    pub fn tiny() -> Self {
        Self {
            l1_sets: 4,
            l1_ways: 2,
            read_lines_max: 16,
            l2_sets: 0,
            l2_ways: 8,
            quantum: 1000,
            interrupt_prob: 0.0,
            max_threads: 8,
            trace_capacity: 0,
            backend: None,
        }
    }

    /// Validate invariants; panics with a descriptive message on misconfiguration.
    pub fn validate(&self) {
        assert!(
            self.l1_sets.is_power_of_two(),
            "l1_sets must be a power of two"
        );
        assert!(self.l1_ways >= 1, "l1_ways must be >= 1");
        if self.l2_sets > 0 {
            assert!(self.l2_sets.is_power_of_two(), "l2_sets must be a power of two");
            assert!(self.l2_ways >= 1, "l2_ways must be >= 1");
        }
        assert!(
            self.max_threads >= 1 && self.max_threads <= crate::registry::MAX_THREADS,
            "max_threads must be in 1..={} (packed line-table reader bitmap)",
            crate::registry::MAX_THREADS
        );
        assert!(
            (0.0..=1.0).contains(&self.interrupt_prob),
            "interrupt_prob must be a probability"
        );
        assert!(self.quantum > 0, "quantum must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_haswell_l1() {
        let c = HtmConfig::default();
        c.validate();
        // 512 lines x 64 B = 32 KB, the Haswell L1d.
        assert_eq!(c.l1_lines() * 64, 32 * 1024);
    }

    #[test]
    fn tiny_is_valid() {
        HtmConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "l1_sets")]
    fn rejects_non_pow2_sets() {
        let c = HtmConfig {
            l1_sets: 3,
            ..HtmConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "max_threads")]
    fn rejects_too_many_threads() {
        let c = HtmConfig {
            max_threads: crate::registry::MAX_THREADS + 1,
            ..HtmConfig::default()
        };
        c.validate();
    }
}
