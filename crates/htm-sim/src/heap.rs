//! The word-addressable shared heap.
//!
//! Everything a hardware transaction can touch lives here: application data, the TM
//! protocol's global metadata (global lock, timestamp, ring, write-locks signature)
//! and per-thread signature arenas. Keeping metadata *in the heap* is what lets the
//! simulator reproduce the paper's metadata effects: signature updates inside HTM
//! transactions consume capacity and suffer cache-line-granular false conflicts
//! (§5.1).

use std::sync::atomic::{AtomicU64, Ordering};

/// A word address: an index into the heap's array of 64-bit words.
pub type Addr = u32;

/// A cache-line id: `Addr >> WORDS_PER_LINE_SHIFT`.
pub type Line = u32;

/// log2 of the number of 64-bit words per 64-byte cache line.
pub const WORDS_PER_LINE_SHIFT: u32 = 3;

/// Number of 64-bit words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 1 << WORDS_PER_LINE_SHIFT;

/// The shared memory of the simulated machine: a flat array of atomic 64-bit words.
///
/// Raw loads/stores on `Heap` perform **no** conflict detection; use
/// [`crate::HtmSystem`]'s `nt_read`/`nt_write` for strongly atomic non-transactional
/// accesses, or a hardware transaction ([`crate::HtmTx`]) for transactional ones.
pub struct Heap {
    words: Box<[AtomicU64]>,
}

impl Heap {
    /// Allocate a zeroed heap of `words` 64-bit words.
    pub fn new(words: usize) -> Self {
        assert!(words <= u32::MAX as usize, "heap limited to 2^32 words");
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU64::new(0));
        Self {
            words: v.into_boxed_slice(),
        }
    }

    /// Number of words in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the heap has no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Raw sequentially consistent load. No conflict detection.
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words[addr as usize].load(Ordering::SeqCst)
    }

    /// Raw sequentially consistent store. No conflict detection.
    #[inline]
    pub fn store(&self, addr: Addr, val: u64) {
        self.words[addr as usize].store(val, Ordering::SeqCst)
    }

    /// Raw compare-and-swap. No conflict detection. Returns `Ok(previous)` on
    /// success, `Err(actual)` on failure.
    #[inline]
    pub fn cas(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.words[addr as usize].compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Raw fetch-and-add. No conflict detection. Returns the previous value.
    #[inline]
    pub fn fetch_add(&self, addr: Addr, delta: u64) -> u64 {
        self.words[addr as usize].fetch_add(delta, Ordering::SeqCst)
    }

    /// Raw fetch-and-subtract. No conflict detection. Returns the previous value.
    #[inline]
    pub fn fetch_sub(&self, addr: Addr, delta: u64) -> u64 {
        self.words[addr as usize].fetch_sub(delta, Ordering::SeqCst)
    }

    /// Raw fetch-OR. No conflict detection. Returns the previous value.
    #[inline]
    pub fn fetch_or(&self, addr: Addr, bits: u64) -> u64 {
        self.words[addr as usize].fetch_or(bits, Ordering::SeqCst)
    }

    /// Raw fetch-AND. No conflict detection. Returns the previous value.
    #[inline]
    pub fn fetch_and(&self, addr: Addr, bits: u64) -> u64 {
        self.words[addr as usize].fetch_and(bits, Ordering::SeqCst)
    }
}

/// Single-threaded bump allocator used during experiment setup to carve the heap into
/// regions (global metadata, per-thread arenas, application data).
///
/// Allocation is line-aligned on request so that independently accessed regions never
/// share a cache line (avoiding *unintended* false conflicts; the intended ones — on
/// signature lines — are part of the protocol design).
#[derive(Debug)]
pub struct HeapBuilder {
    next: Addr,
    limit: Addr,
}

impl HeapBuilder {
    /// Start carving a heap of `total_words` words from address 0.
    pub fn new(total_words: usize) -> Self {
        assert!(total_words <= u32::MAX as usize);
        Self {
            next: 0,
            limit: total_words as Addr,
        }
    }

    /// Allocate `n` words with no particular alignment.
    pub fn alloc_words(&mut self, n: usize) -> Addr {
        let start = self.next;
        let end = start
            .checked_add(n as Addr)
            .unwrap_or_else(|| panic!("heap builder overflow allocating {n} words"));
        assert!(
            end <= self.limit,
            "heap exhausted: need {n} words at {start}, limit {}",
            self.limit
        );
        self.next = end;
        start
    }

    /// Allocate `n` words starting at a cache-line boundary.
    pub fn alloc_aligned(&mut self, n: usize) -> Addr {
        let mask = (WORDS_PER_LINE - 1) as Addr;
        self.next = (self.next + mask) & !mask;
        self.alloc_words(n)
    }

    /// Allocate `n_lines` whole cache lines (line-aligned).
    pub fn alloc_lines(&mut self, n_lines: usize) -> Addr {
        self.alloc_aligned(n_lines * WORDS_PER_LINE)
    }

    /// Words handed out so far.
    pub fn used(&self) -> usize {
        self.next as usize
    }

    /// Words still available.
    pub fn remaining(&self) -> usize {
        (self.limit - self.next) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_load_store_roundtrip() {
        let h = Heap::new(16);
        h.store(3, 99);
        assert_eq!(h.load(3), 99);
        assert_eq!(h.load(4), 0);
    }

    #[test]
    fn heap_rmw_ops() {
        let h = Heap::new(4);
        assert_eq!(h.fetch_add(0, 5), 0);
        assert_eq!(h.fetch_add(0, 5), 5);
        assert_eq!(h.cas(0, 10, 42), Ok(10));
        assert_eq!(h.cas(0, 10, 7), Err(42));
        h.store(1, 0b0011);
        assert_eq!(h.fetch_or(1, 0b0100), 0b0011);
        assert_eq!(h.fetch_and(1, 0b0110), 0b0111);
        assert_eq!(h.load(1), 0b0110);
    }

    #[test]
    fn builder_alignment() {
        let mut b = HeapBuilder::new(1024);
        let a = b.alloc_words(3);
        assert_eq!(a, 0);
        let l = b.alloc_lines(2);
        assert_eq!(l % WORDS_PER_LINE as Addr, 0);
        assert!(l >= 3);
        assert_eq!(b.used(), l as usize + 16);
        let c = b.alloc_aligned(1);
        assert_eq!(c % WORDS_PER_LINE as Addr, 0);
    }

    #[test]
    #[should_panic(expected = "heap exhausted")]
    fn builder_exhaustion_panics() {
        let mut b = HeapBuilder::new(8);
        b.alloc_words(9);
    }

    #[test]
    fn line_math() {
        assert_eq!(crate::line_of(0), 0);
        assert_eq!(crate::line_of(7), 0);
        assert_eq!(crate::line_of(8), 1);
        assert_eq!(crate::line_of(17), 2);
    }
}
