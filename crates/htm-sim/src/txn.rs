//! A single hardware-transaction attempt, mirroring the RTM instruction set:
//! `_xbegin` ([`crate::HtmThread::begin`]), transactional loads/stores
//! ([`HtmTx::read`]/[`HtmTx::write`]), `_xabort` ([`HtmTx::xabort`]) and `_xend`
//! ([`HtmTx::commit`]).
//!
//! ## Semantics
//!
//! * Writes are buffered (write-in-place happens atomically at commit, which is how
//!   TSX's L1-buffered eager writes behave as observed from other cores).
//! * Reads return the transaction's own buffered value if present, else the shared
//!   heap value.
//! * Conflicts are detected eagerly at access registration; a conflicting peer access
//!   dooms this transaction asynchronously, and the doom is observed at the next
//!   operation or at commit. A transaction never returns a value that is inconsistent
//!   with its isolated snapshot: the doom flag is re-checked *after* each heap load
//!   (sequential consistency of the doom flag and the publish stores guarantees the
//!   check catches any racing commit).
//! * Capacity: distinct written lines must fit the simulated L1 sets/ways; distinct
//!   read lines must fit the flat read budget.
//! * Time: each operation costs work units; reaching the quantum raises the
//!   simulated timer interrupt ([`AbortCode::Timer`]).

use crate::abort::{AbortCode, TxResult};
use crate::backend::CapOutcome;
use crate::heap::Addr;
use crate::line_table::AccessOutcome;
use crate::system::HtmThread;
use rand::Rng;

/// An in-flight hardware transaction. Obtained from [`crate::HtmThread::begin`].
///
/// All operations return `Err(AbortCode)` when the transaction aborts; after an
/// error, the transaction has already rolled back (buffers dropped, lines released)
/// and must be dropped. Committing consumes the transaction.
pub struct HtmTx<'a, 's> {
    th: &'a mut HtmThread<'s>,
    work: u64,
    active: bool,
    /// Inside a suspended region ([`HtmTx::suspend`]): transactional
    /// operations are illegal until [`HtmTx::resume`].
    suspended: bool,
    /// Rollback-only transaction ([`crate::HtmThread::begin_rot`]): reads
    /// bypass conflict registration and capacity accounting.
    rot: bool,
}

impl<'a, 's> HtmTx<'a, 's> {
    pub(crate) fn new(th: &'a mut HtmThread<'s>, rot: bool) -> Self {
        Self {
            th,
            work: 0,
            active: true,
            suspended: false,
            rot,
        }
    }

    /// Work units consumed so far.
    pub fn work_used(&self) -> u64 {
        self.work
    }

    /// Distinct lines whose first access was a read.
    pub fn read_lines(&self) -> usize {
        self.th.cap.read_lines()
    }

    /// Distinct lines currently charged to the hardware write-set model
    /// (software-spilled lines excluded).
    pub fn write_lines(&self) -> usize {
        self.th.cap.write_lines()
    }

    /// Lines spilled to software capacity tracking by this transaction.
    pub fn spilled_lines(&self) -> u64 {
        self.th.cap.spilled_lines()
    }

    /// True while inside a suspended region.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    #[inline]
    fn doomed(&self) -> bool {
        self.th.sys.registry.is_doomed(self.th.id)
    }

    /// Roll back: release every registered line, drop buffers, record the abort.
    fn rollback(&mut self, code: AbortCode) {
        debug_assert!(self.active);
        self.active = false;
        self.suspended = false;
        let th = &mut *self.th;
        for &line in th.touched.iter() {
            th.sys.table.unregister(line, th.id);
        }
        th.touched.clear();
        if !th.wbuf.is_empty() {
            th.wbuf.clear();
        }
        th.stretch.spilled_lines += th.cap.spilled_lines();
        th.cap.reset();
        th.sys.registry.finish(th.id);
        th.stats.record_abort(code);
        th.stats.work_units += self.work;
        th.trace.record(crate::trace::Event::Abort { code, work: self.work });
        th.in_tx = false;
    }

    #[inline]
    fn fail(&mut self, code: AbortCode) -> AbortCode {
        self.rollback(code);
        code
    }

    /// Charge work units and fire the timer / injected interrupts.
    #[inline]
    fn charge(&mut self, units: u64) -> TxResult<()> {
        self.work += units;
        // Under a virtual-time run this also advances the simulated core's
        // clock (and may hand the floor to another core); a no-op otherwise.
        crate::vclock::charge(units);
        // The timer fires at the operation that brings cumulative work to the
        // quantum or beyond (>=: consuming *exactly* `quantum` units aborts).
        if self.work >= self.th.sys.config.quantum {
            return Err(self.fail(AbortCode::Timer));
        }
        let p = self.th.sys.config.interrupt_prob;
        if p > 0.0 {
            // Under a virtual clock the draw comes from the schedule-seeded
            // per-core RNG, so a replayed schedule reproduces injected
            // interrupts bit-exactly; otherwise from the thread's own RNG.
            let draw = crate::vclock::interrupt_draw().unwrap_or_else(|| self.th.rng.gen::<f64>());
            if draw < p {
                return Err(self.fail(AbortCode::Interrupt));
            }
        }
        Ok(())
    }

    #[inline]
    fn check_doomed(&mut self) -> TxResult<()> {
        if self.doomed() {
            return Err(self.fail(AbortCode::Conflict));
        }
        Ok(())
    }

    /// Transactional load of the word at `addr`.
    pub fn read(&mut self, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(!self.suspended, "transactional read inside a suspended region");
        self.check_doomed()?;
        self.charge(1)?;
        let line = crate::line_of(addr);
        let st = self.th.lstate[line as usize];
        if self.rot {
            // Rollback-only transaction: the read is invisible to conflict
            // detection and capacity accounting — serve own buffered writes,
            // else the shared heap.
            if st.epoch == self.th.epoch && st.flags & crate::system::LINE_WRITTEN != 0 {
                if let Some(&v) = self.th.wbuf.get(&addr) {
                    return Ok(v);
                }
            }
            let v = self.th.sys.heap.load(addr);
            self.check_doomed()?;
            return Ok(v);
        }
        if st.epoch != self.th.epoch {
            // First access to this line: register it in the conflict table.
            let mut backoff = crate::util::Backoff::new();
            loop {
                match self
                    .th
                    .sys
                    .table
                    .tx_read(&self.th.sys.registry, line, self.th.id)
                {
                    AccessOutcome::Ok => break,
                    AccessOutcome::Wait => {
                        if self.doomed() {
                            return Err(self.fail(AbortCode::Conflict));
                        }
                        backoff.snooze();
                    }
                }
            }
            self.th.lstate[line as usize] = crate::system::LineState {
                epoch: self.th.epoch,
                flags: crate::system::LINE_READ,
            };
            self.th.touched.push(line);
            self.th.cap.read_lines += 1;
            let be = self.th.sys.backend.as_deref();
            match be {
                None => {
                    // Legacy inline path, kept byte-for-byte (the TSX backend
                    // below routes the identical checks through the trait;
                    // tests/backend_diff.rs pins the equivalence).
                    if self.th.cap.read_lines > self.th.cap.read_budget {
                        return Err(self.fail(AbortCode::Capacity));
                    }
                    if let Some(l2) = self.th.cap.l2.as_mut() {
                        if !l2.insert_line(line) {
                            return Err(self.fail(AbortCode::Capacity));
                        }
                    }
                }
                Some(be) => match be.on_read_line(&mut self.th.cap, line) {
                    CapOutcome::Fits => {}
                    CapOutcome::Spilled { charge } => self.charge(charge)?,
                    CapOutcome::Overflow => return Err(self.fail(AbortCode::Capacity)),
                },
            }
        } else if st.flags & crate::system::LINE_WRITTEN != 0 {
            // The line is in the write set: the word itself may be buffered.
            if let Some(&v) = self.th.wbuf.get(&addr) {
                return Ok(v);
            }
        }
        let v = self.th.sys.heap.load(addr);
        // Re-check after the load: if a racing commit published over this line, the
        // doom flag (stored before the publish, both SeqCst) is visible now.
        self.check_doomed()?;
        Ok(v)
    }

    /// Register a first write to `line` (possibly an upgrade from a read):
    /// conflict-table claim, line-state update, capacity charge. Shared by
    /// [`HtmTx::write`] and [`HtmTx::write_private`].
    fn register_write_line(&mut self, line: crate::heap::Line) -> TxResult<()> {
        let st = self.th.lstate[line as usize];
        let mut backoff = crate::util::Backoff::new();
        loop {
            match self
                .th
                .sys
                .table
                .tx_write(&self.th.sys.registry, line, self.th.id)
            {
                AccessOutcome::Ok => break,
                AccessOutcome::Wait => {
                    if self.doomed() {
                        return Err(self.fail(AbortCode::Conflict));
                    }
                    backoff.snooze();
                }
            }
        }
        let fresh = st.epoch != self.th.epoch;
        let flags = if fresh {
            crate::system::LINE_WRITTEN
        } else {
            st.flags | crate::system::LINE_WRITTEN
        };
        self.th.lstate[line as usize] = crate::system::LineState {
            epoch: self.th.epoch,
            flags,
        };
        if fresh {
            self.th.touched.push(line);
        }
        let be = self.th.sys.backend.as_deref();
        match be {
            None => {
                if !self.th.cap.l1.insert_written_line(line) {
                    return Err(self.fail(AbortCode::Capacity));
                }
            }
            Some(be) => match be.on_write_line(&mut self.th.cap, line) {
                CapOutcome::Fits => {}
                CapOutcome::Spilled { charge } => self.charge(charge)?,
                CapOutcome::Overflow => return Err(self.fail(AbortCode::Capacity)),
            },
        }
        Ok(())
    }

    /// Transactional store of `val` to the word at `addr` (buffered until commit).
    pub fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(!self.suspended, "transactional write inside a suspended region");
        self.check_doomed()?;
        self.charge(1)?;
        let line = crate::line_of(addr);
        let st = self.th.lstate[line as usize];
        if st.epoch != self.th.epoch || st.flags & crate::system::LINE_WRITTEN == 0 {
            self.register_write_line(line)?;
        }
        self.th.wbuf.insert(addr, val);
        Ok(())
    }

    /// Store to a **thread-private** location with transactional capacity accounting
    /// but no versioning: the line is registered in the write set and charged
    /// against the L1 model exactly like [`HtmTx::write`], but the value is stored
    /// to the heap immediately and is *not* rolled back on abort.
    ///
    /// Only sound for memory no other thread reads while this transaction can still
    /// abort — the per-thread metadata arenas (undo log, local signatures). Models
    /// metadata writes that occupy transactional cache without needing the
    /// simulator's write buffering; protocol correctness never depends on their
    /// rollback (failed attempts roll back their software cursors instead).
    pub fn write_private(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(!self.suspended, "transactional write inside a suspended region");
        self.check_doomed()?;
        self.charge(1)?;
        let line = crate::line_of(addr);
        let st = self.th.lstate[line as usize];
        if st.epoch != self.th.epoch || st.flags & crate::system::LINE_WRITTEN == 0 {
            self.register_write_line(line)?;
        }
        self.th.sys.heap.store(addr, val);
        Ok(())
    }

    /// Read-modify-write helper: `read` then `write` of `f(old)`, returning the old
    /// value.
    pub fn fetch_update(&mut self, addr: Addr, f: impl FnOnce(u64) -> u64) -> TxResult<u64> {
        let old = self.read(addr)?;
        self.write(addr, f(old))?;
        Ok(old)
    }

    /// Perform `units` of transactional computation (loop bodies, floating-point
    /// work, ...). Consumes time but touches no memory.
    pub fn work(&mut self, units: u64) -> TxResult<()> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(!self.suspended, "transactional work inside a suspended region");
        self.check_doomed()?;
        self.charge(units)
    }

    /// True if the configured backend supports suspended regions.
    fn supports_suspend(&self) -> bool {
        self.th
            .sys
            .backend
            .as_deref()
            .is_some_and(|b| b.capacity().supports_suspend)
    }

    /// Virtual-clock cost of one suspend/resume round trip.
    fn suspend_cost(&self) -> u64 {
        self.th
            .sys
            .backend
            .as_deref()
            .map_or(0, |b| b.capacity().suspend_cost)
    }

    /// Enter a **suspended region** (POWER's `tsuspend.`): the transaction
    /// stays live (its write buffer and conflict-table claims are intact, and
    /// a conflicting peer access still dooms it), but subsequent code runs
    /// non-transactionally until [`HtmTx::resume`]. Inside the region only
    /// [`HtmTx::suspended_read`] and [`HtmTx::suspended_work`] are legal;
    /// transactional reads/writes/commit panic.
    ///
    /// Suspended execution is charged to the virtual clock but **not** to the
    /// timer quantum or the injected-interrupt draw — on POWER, interrupts
    /// delivered in suspended mode do not abort the transaction, which is the
    /// time-stretching half of the capacity-stretching strategy.
    ///
    /// The whole round-trip cost ([`crate::backend::CapacityModel::suspend_cost`])
    /// is charged here.
    ///
    /// # Panics
    ///
    /// Panics if the backend has no suspended regions
    /// ([`crate::backend::CapacityModel::supports_suspend`] is false) or if
    /// already suspended (suspended regions do not nest).
    pub fn suspend(&mut self) {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(
            self.supports_suspend(),
            "suspend: backend has no suspended regions"
        );
        assert!(!self.suspended, "nested suspend");
        crate::vclock::charge(self.suspend_cost());
        self.suspended = true;
        self.th.stretch.suspends += 1;
    }

    /// Exit the suspended region (POWER's `tresume.`) and re-check the doom
    /// flag: a conflict that arrived while suspended is observed here.
    ///
    /// # Panics
    ///
    /// Panics when not suspended.
    pub fn resume(&mut self) -> TxResult<()> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(self.suspended, "resume outside a suspended region");
        self.suspended = false;
        self.th.stretch.resumes += 1;
        self.check_doomed()
    }

    /// Non-transactional load while suspended: returns the globally committed
    /// value of `addr` — the transaction's own buffered writes are **not**
    /// visible (exactly POWER's suspended-load semantics, where transactional
    /// stores are invisible until `tend.`). The access is not
    /// conflict-tracked and cannot abort.
    ///
    /// # Panics
    ///
    /// Panics when not suspended.
    pub fn suspended_read(&mut self, addr: Addr) -> u64 {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(self.suspended, "suspended_read outside a suspended region");
        crate::vclock::charge(1);
        self.th.stretch.suspended_reads += 1;
        self.th.sys.heap.load(addr)
    }

    /// Perform `units` of computation in suspended mode: virtual time
    /// advances, but neither the timer quantum nor the injected-interrupt
    /// draw applies — the transaction's speculative state survives.
    ///
    /// # Panics
    ///
    /// Panics when not suspended.
    pub fn suspended_work(&mut self, units: u64) {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(self.suspended, "suspended_work outside a suspended region");
        crate::vclock::charge(units);
        self.th.stretch.suspended_work += units;
    }

    /// A **stretched read**: the capacity-stretching primitive built on
    /// suspend/resume. Models `tsuspend.` → software-logged load →
    /// `tresume.`: the line is registered in the conflict table (so a racing
    /// commit still dooms this transaction — serializability is preserved by
    /// construction) but is **exempt from the read budget**, and the whole
    /// round trip is charged to the virtual clock instead of the quantum.
    /// Own buffered writes are visible, like [`HtmTx::read`].
    ///
    /// The price is the per-access suspend overhead
    /// ([`crate::backend::CapacityModel::suspend_cost`] + 1 units), which is
    /// what the splitting-vs-stretching ablation measures (`backendbench`).
    ///
    /// # Panics
    ///
    /// Panics if the backend has no suspended regions, or inside an explicit
    /// suspended region (the round trip is modelled internally).
    pub fn read_stretched(&mut self, addr: Addr) -> TxResult<u64> {
        debug_assert!(self.active, "operation on finished transaction");
        assert!(!self.suspended, "read_stretched inside a suspended region");
        assert!(
            self.supports_suspend(),
            "read_stretched: backend has no suspended regions"
        );
        self.check_doomed()?;
        crate::vclock::charge(self.suspend_cost() + 1);
        let line = crate::line_of(addr);
        let st = self.th.lstate[line as usize];
        if st.epoch != self.th.epoch {
            // Register like a read so conflicts doom us, but charge nothing
            // to the capacity model.
            let mut backoff = crate::util::Backoff::new();
            loop {
                match self
                    .th
                    .sys
                    .table
                    .tx_read(&self.th.sys.registry, line, self.th.id)
                {
                    AccessOutcome::Ok => break,
                    AccessOutcome::Wait => {
                        if self.doomed() {
                            return Err(self.fail(AbortCode::Conflict));
                        }
                        backoff.snooze();
                    }
                }
            }
            self.th.lstate[line as usize] = crate::system::LineState {
                epoch: self.th.epoch,
                flags: crate::system::LINE_READ,
            };
            self.th.touched.push(line);
            self.th.stretch.stretched_reads += 1;
        } else if st.flags & crate::system::LINE_WRITTEN != 0 {
            if let Some(&v) = self.th.wbuf.get(&addr) {
                return Ok(v);
            }
        }
        let v = self.th.sys.heap.load(addr);
        self.check_doomed()?;
        Ok(v)
    }

    /// Explicitly abort with a software-defined code (`_xabort(code)`).
    /// Always returns `Err(AbortCode::Explicit(code))` for use with `?`.
    pub fn xabort(&mut self, code: u8) -> AbortCode {
        debug_assert!(self.active, "operation on finished transaction");
        self.fail(AbortCode::Explicit(code))
    }

    /// Abort with an externally chosen code without counting it as explicit —
    /// used by [`crate::HtmThread::attempt`] to unwind after a body error whose
    /// rollback already happened. If the transaction is still active (the body
    /// synthesised its own error), roll back with that code.
    pub(crate) fn cancel(mut self, code: AbortCode) {
        if self.active {
            self.rollback(code);
        }
    }

    /// Attempt to commit (`_xend`). On success the write buffer is published
    /// atomically to the heap. Fails with `Conflict` if the transaction was doomed.
    pub fn commit(mut self) -> TxResult<()> {
        debug_assert!(self.active, "double commit");
        assert!(!self.suspended, "commit inside a suspended region");
        if self.th.sys.registry.start_commit(self.th.id).is_err() {
            return Err(self.fail(AbortCode::Conflict));
        }
        // Point of no return: publish.
        self.active = false;
        let read_lines = self.th.cap.read_lines();
        let write_lines = self.th.cap.write_lines();
        let th = &mut *self.th;
        if !th.wbuf.is_empty() {
            for (&addr, &val) in th.wbuf.iter() {
                th.sys.heap.store(addr, val);
            }
            th.wbuf.clear();
        }
        for &line in th.touched.iter() {
            th.sys.table.unregister(line, th.id);
        }
        th.touched.clear();
        th.stretch.spilled_lines += th.cap.spilled_lines();
        th.cap.reset();
        th.sys.registry.finish(th.id);
        th.stats.commits += 1;
        th.stats.work_units += self.work;
        th.trace.record(crate::trace::Event::Commit { read_lines, write_lines, work: self.work });
        th.in_tx = false;
        crate::vclock::note_commit();
        Ok(())
    }
}

impl Drop for HtmTx<'_, '_> {
    fn drop(&mut self) {
        if self.active {
            // Dropped without commit/abort: treat as an explicit cancellation.
            self.rollback(AbortCode::Explicit(0xFE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HtmConfig, HtmSystem};

    fn sys() -> HtmSystem {
        HtmSystem::new(HtmConfig::tiny(), 4096)
    }

    #[test]
    fn read_own_write() {
        let s = sys();
        let mut th = s.thread(0);
        let mut tx = th.begin();
        tx.write(5, 42).unwrap();
        assert_eq!(tx.read(5), Ok(42));
        tx.commit().unwrap();
        assert_eq!(s.nt_read(5), 42);
    }

    #[test]
    fn writes_invisible_until_commit() {
        let s = sys();
        let mut th = s.thread(0);
        let mut tx = th.begin();
        tx.write(5, 42).unwrap();
        assert_eq!(s.heap().load(5), 0, "buffered write must not be visible");
        tx.commit().unwrap();
        assert_eq!(s.heap().load(5), 42);
    }

    #[test]
    fn capacity_abort_on_write_set_overflow() {
        let s = sys(); // tiny: 4 sets x 2 ways = 8 written lines max
        let mut th = s.thread(0);
        let mut tx = th.begin();
        let mut aborted = None;
        for i in 0..64 {
            // One word per line: line stride is 8 words.
            if let Err(code) = tx.write(i * 8, 1) {
                aborted = Some(code);
                break;
            }
        }
        assert_eq!(aborted, Some(AbortCode::Capacity));
        drop(tx);
        assert_eq!(th.stats.aborts_capacity, 1);
        assert_eq!(s.live_line_entries(), 0, "abort must release all lines");
    }

    #[test]
    fn capacity_abort_on_read_budget() {
        let s = sys(); // tiny: 16 read lines max
        let mut th = s.thread(0);
        let mut tx = th.begin();
        let mut aborted = None;
        for i in 0..64 {
            if let Err(code) = tx.read(i * 8) {
                aborted = Some(code);
                break;
            }
        }
        assert_eq!(aborted, Some(AbortCode::Capacity));
    }

    #[test]
    fn quantum_exhaustion_is_timer() {
        let s = sys(); // tiny: quantum 1000
        let mut th = s.thread(0);
        let mut tx = th.begin();
        assert_eq!(tx.work(999), Ok(()));
        assert_eq!(tx.work(5), Err(AbortCode::Timer));
        drop(tx);
        assert_eq!(th.stats.aborts_timer, 1);
    }

    #[test]
    fn quantum_boundary_fires_at_exactly_quantum_units() {
        // `config.rs`: "the timer fires once cumulative work *reaches* the
        // quantum" — consuming exactly `quantum` units must abort (>=, not >).
        let s = sys(); // tiny: quantum 1000
        let mut th = s.thread(0);
        let mut tx = th.begin();
        assert_eq!(tx.work(1000), Err(AbortCode::Timer));
        drop(tx);
        assert_eq!(th.stats.aborts_timer, 1);

        // One unit below the boundary still commits.
        let mut tx = th.begin();
        assert_eq!(tx.work(999), Ok(()));
        assert_eq!(tx.commit(), Ok(()));

        // ... and the next single unit after 999 is the one that fires.
        let mut tx = th.begin();
        assert_eq!(tx.work(999), Ok(()));
        assert_eq!(tx.work(1), Err(AbortCode::Timer));
        drop(tx);
        assert_eq!(th.stats.aborts_timer, 2);
    }

    #[test]
    fn xabort_reports_payload() {
        let s = sys();
        let mut th = s.thread(0);
        let mut tx = th.begin();
        tx.write(0, 1).unwrap();
        assert_eq!(tx.xabort(7), AbortCode::Explicit(7));
        drop(tx);
        assert_eq!(th.stats.aborts_explicit, 1);
        assert_eq!(s.nt_read(0), 0, "aborted write must not be published");
    }

    #[test]
    fn fetch_update_reads_then_writes() {
        let s = sys();
        let mut th = s.thread(0);
        s.nt_write(3, 10);
        let mut tx = th.begin();
        assert_eq!(tx.fetch_update(3, |v| v * 2), Ok(10));
        assert_eq!(tx.read(3), Ok(20));
        tx.commit().unwrap();
        assert_eq!(s.nt_read(3), 20);
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let s = sys();
        let mut th = s.thread(0);
        {
            let mut tx = th.begin();
            tx.write(0, 99).unwrap();
        } // dropped
        assert_eq!(s.nt_read(0), 0);
        assert_eq!(th.stats.aborts_explicit, 1);
        assert_eq!(s.live_line_entries(), 0);
        // Thread is reusable afterwards.
        th.attempt(|tx| tx.write(0, 1)).unwrap();
        assert_eq!(s.nt_read(0), 1);
    }

    #[test]
    fn conflicting_writer_is_doomed_by_reader() {
        let s = sys();
        let mut w = s.thread(0);
        let mut r = s.thread(1);
        let mut wtx = w.begin();
        wtx.write(0, 5).unwrap();
        let mut rtx = r.begin();
        // Requester (reader) wins: it reads the pre-transactional value.
        assert_eq!(rtx.read(0), Ok(0));
        rtx.commit().unwrap();
        // Victim aborts at its next operation.
        assert_eq!(wtx.read(8), Err(AbortCode::Conflict));
        drop(wtx);
        assert_eq!(w.stats.aborts_conflict, 1);
    }

    #[test]
    fn doomed_at_commit_fails() {
        let s = sys();
        let mut a = s.thread(0);
        let mut b = s.thread(1);
        let mut atx = a.begin();
        atx.read(0).unwrap();
        // b writes the same line and commits first.
        b.attempt(|tx| tx.write(0, 1)).unwrap();
        assert_eq!(atx.commit(), Err(AbortCode::Conflict));
    }

    #[test]
    fn random_interrupts_fire() {
        let cfg = HtmConfig {
            interrupt_prob: 0.5,
            ..HtmConfig::tiny()
        };
        let s = HtmSystem::new(cfg, 4096);
        let mut th = s.thread(0);
        let mut interrupts = 0;
        for _ in 0..50 {
            let r = th.attempt(|tx| {
                for i in 0..4 {
                    tx.write(i * 8, 1)?;
                }
                Ok(())
            });
            if r == Err(AbortCode::Interrupt) {
                interrupts += 1;
            }
        }
        assert!(
            interrupts > 5,
            "injected interrupts should fire often, got {interrupts}"
        );
        assert_eq!(th.stats.aborts_interrupt, interrupts);
        assert_eq!(th.stats.aborts_timer, 0, "no quantum was exhausted");
    }

    #[test]
    fn two_words_same_line_one_capacity_slot() {
        let s = sys();
        let mut th = s.thread(0);
        let mut tx = th.begin();
        // 8 words in line 0: occupies a single way.
        for w in 0..8 {
            tx.write(w, w as u64).unwrap();
        }
        assert_eq!(tx.write_lines(), 1);
        tx.commit().unwrap();
    }
}
