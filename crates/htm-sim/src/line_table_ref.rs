//! Mutex-based reference implementation of the conflict table.
//!
//! This is the original `LineTable` (one `Mutex<LineEntry>` per heap line),
//! retained verbatim after the lock-free packed-word table replaced it on the
//! hot path ([`crate::line_table`]). It exists for two reasons:
//!
//! 1. **Differential-testing oracle**: `tests/table_differential.rs` replays
//!    randomized operation sequences against both tables and requires identical
//!    outcomes and identical final ownership state. Sequential executions of the
//!    two implementations must agree exactly — the lock-free table's extra
//!    freedoms (spurious dooms, claim back-off) only arise under concurrency.
//! 2. **Benchmark baseline**: `tm-harness`'s `linebench` bin measures both from
//!    the same binary, so the committed before/after numbers (`BENCH_1.json`)
//!    are reproducible from this tree alone.
//!
//! The API mirrors [`crate::line_table::LineTable`] exactly; it is not used by
//! [`crate::HtmSystem`].

use crate::heap::Line;
use crate::line_table::AccessOutcome;
use crate::registry::{DoomOutcome, Requester, ThreadId, TxRegistry};
use std::sync::Mutex;

#[derive(Clone, Copy, Default)]
struct LineEntry {
    /// Thread currently holding the line in its transactional write set, if any.
    writer: Option<ThreadId>,
    /// Bitmap of threads holding the line in their transactional read sets.
    readers: u64,
}

impl LineEntry {
    fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers == 0
    }
}

/// Direct-indexed, per-line-mutex conflict table (reference implementation).
pub struct MutexLineTable {
    entries: Box<[Mutex<LineEntry>]>,
}

impl MutexLineTable {
    /// Create a table covering `n_lines` heap lines.
    pub fn new(n_lines: usize) -> Self {
        let mut v = Vec::with_capacity(n_lines);
        v.resize_with(n_lines, || Mutex::new(LineEntry::default()));
        Self {
            entries: v.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot(&self, line: Line) -> &Mutex<LineEntry> {
        &self.entries[line as usize]
    }

    /// Register thread `t` as a transactional reader of `line`.
    pub fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        let mut entry = self.slot(line).lock().unwrap();
        if let Some(w) = entry.writer {
            if w != t {
                match reg.doom(w, Requester::Thread(t)) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    DoomOutcome::Doomed => {}
                    DoomOutcome::Gone => entry.writer = None,
                }
            }
        }
        entry.readers |= 1u64 << t;
        AccessOutcome::Ok
    }

    /// Register thread `t` as the transactional writer of `line`.
    pub fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        let mut entry = self.slot(line).lock().unwrap();
        if let Some(w) = entry.writer {
            if w != t {
                match reg.doom(w, Requester::Thread(t)) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    DoomOutcome::Doomed => {}
                    DoomOutcome::Gone => {}
                }
            }
        }
        let mut readers = entry.readers & !(1u64 << t);
        while readers != 0 {
            let r = readers.trailing_zeros() as ThreadId;
            readers &= readers - 1;
            match reg.doom(r, Requester::Thread(t)) {
                DoomOutcome::MustWait => return AccessOutcome::Wait,
                DoomOutcome::Doomed | DoomOutcome::Gone => {}
            }
        }
        entry.writer = Some(t);
        AccessOutcome::Ok
    }

    /// Strong atomicity: a non-transactional access to `line` by `by`.
    pub fn nt_access(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Requester,
    ) -> AccessOutcome {
        match self.nt_execute(reg, line, is_write, by, || ()) {
            Ok(()) => AccessOutcome::Ok,
            Err(()) => AccessOutcome::Wait,
        }
    }

    /// Execute a non-transactional heap access atomically with its conflict
    /// resolution, under the line's mutex.
    #[allow(clippy::result_unit_err)]
    pub fn nt_execute<R>(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Requester,
        op: impl FnOnce() -> R,
    ) -> Result<R, ()> {
        let mut entry = self.slot(line).lock().unwrap();
        if !entry.is_empty() {
            if let Some(w) = entry.writer {
                if Requester::Thread(w) != by {
                    match reg.doom(w, by) {
                        DoomOutcome::MustWait => return Err(()),
                        DoomOutcome::Doomed => {}
                        DoomOutcome::Gone => entry.writer = None,
                    }
                } else {
                    debug_assert!(
                        false,
                        "non-transactional access to a line in the caller's own active write set"
                    );
                }
            }
            if is_write {
                let mut readers = entry.readers;
                if let Requester::Thread(b) = by {
                    readers &= !(1u64 << b);
                }
                while readers != 0 {
                    let r = readers.trailing_zeros() as ThreadId;
                    readers &= readers - 1;
                    match reg.doom(r, by) {
                        DoomOutcome::MustWait => return Err(()),
                        DoomOutcome::Doomed | DoomOutcome::Gone => {}
                    }
                }
            }
        }
        Ok(op())
    }

    /// Remove thread `t`'s registration (reader and/or writer) for `line`.
    pub fn unregister(&self, line: Line, t: ThreadId) {
        let mut entry = self.slot(line).lock().unwrap();
        entry.readers &= !(1u64 << t);
        if entry.writer == Some(t) {
            entry.writer = None;
        }
    }

    /// Total number of live line registrations (diagnostics / leak tests).
    pub fn live_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.lock().unwrap().is_empty())
            .count()
    }

    /// Ownership of `line` in the packed-word encoding of
    /// [`crate::line_table::LineTable::raw_word`], for differential comparison.
    #[doc(hidden)]
    pub fn raw_word(&self, line: Line) -> u64 {
        let entry = self.slot(line).lock().unwrap();
        let wb = match entry.writer {
            None => 0,
            Some(t) => t as u64 + 1,
        };
        (wb << 56) | entry.readers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_packed_encoding() {
        let tab = MutexLineTable::new(16);
        let reg = TxRegistry::new(8);
        reg.begin(0);
        reg.begin(3);
        tab.tx_read(&reg, 7, 3);
        tab.tx_write(&reg, 7, 0);
        assert_eq!(tab.raw_word(7), (1 << 3) | (1u64 << 56));
        tab.unregister(7, 3);
        tab.unregister(7, 0);
        assert_eq!(tab.raw_word(7), 0);
        assert_eq!(tab.live_entries(), 0);
    }

    #[test]
    fn committing_writer_blocks_requester() {
        let tab = MutexLineTable::new(16);
        let reg = TxRegistry::new(8);
        reg.begin(0);
        tab.tx_write(&reg, 9, 0);
        reg.start_commit(0).unwrap();
        reg.begin(1);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Wait);
        assert_eq!(
            tab.nt_access(&reg, 9, true, Requester::External),
            AccessOutcome::Wait
        );
        tab.unregister(9, 0);
        reg.finish(0);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Ok);
    }
}
