//! Cache-line alignment helpers shared across the workspace.
//!
//! A single x86-style 64-byte line is assumed throughout (the heap layout
//! already bakes in [`crate::WORDS_PER_LINE`] = 8 words per line). The wrapper
//! is deliberately transparent — `Deref`/`DerefMut` keep call sites reading
//! like the unwrapped field — and the const-assertions below run in every
//! build so `cargo test -q` catches accidental padding regressions.
//!
//! Defined here in the simulator crate (the bottom of the dependency stack) so
//! the signature layer, the protocol layer and the harness all share one
//! wrapper type; `tm_sig` re-exports it.

use std::ops::{Deref, DerefMut};

/// Number of bytes in the cache line every aligned layout targets.
pub const CACHE_LINE: usize = 64;

/// Pads and aligns `T` to a 64-byte cache-line boundary.
///
/// Used to keep independently-written shared state — summary banks, the
/// group-probe arrays, per-thread statistics, registry status slots — from
/// false-sharing a line with its neighbours. Wrapping a `T` smaller than a
/// line rounds its size up to a whole line; wrapping a multi-line `T` only
/// pins its *start* to a line boundary (its size is already a line multiple
/// when `size % 64 == 0`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(64))]
pub struct CacheAligned<T>(pub T);

impl<T> CacheAligned<T> {
    /// Wrap `value` in cache-line padding.
    pub const fn new(value: T) -> Self {
        CacheAligned(value)
    }
}

impl<T> Deref for CacheAligned<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CacheAligned<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CacheAligned<T> {
    fn from(value: T) -> Self {
        CacheAligned(value)
    }
}

// Layout pins, checked in every build (debug and release): a padded counter
// occupies exactly one line, and a bank line of eight atomic words stays
// exactly one line (no accidental growth past `WORDS_PER_LINE`).
const _: () = {
    use std::mem::{align_of, size_of};
    use std::sync::atomic::AtomicU64;
    assert!(align_of::<CacheAligned<u64>>() == CACHE_LINE);
    assert!(size_of::<CacheAligned<u64>>() == CACHE_LINE);
    assert!(size_of::<CacheAligned<[AtomicU64; 8]>>() == CACHE_LINE);
    assert!(align_of::<CacheAligned<[AtomicU64; 16]>>() == CACHE_LINE);
    assert!(size_of::<CacheAligned<[AtomicU64; 16]>>() == 2 * CACHE_LINE);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derefs_transparently() {
        let mut c = CacheAligned::new(7u64);
        *c += 1;
        assert_eq!(*c, 8);
        assert_eq!(c, CacheAligned(8));
    }

    #[test]
    fn array_of_padded_counters_never_shares_lines() {
        let v: Vec<CacheAligned<u64>> = (0..4).map(CacheAligned::new).collect();
        for pair in v.windows(2) {
            let a = &pair[0] as *const _ as usize;
            let b = &pair[1] as *const _ as usize;
            assert!(b - a >= CACHE_LINE);
        }
    }
}
