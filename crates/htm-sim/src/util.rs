//! Small internal utilities: a fast multiplicative hasher for the simulator's
//! per-transaction bookkeeping maps (the approved dependency list has no fast-hash
//! crate, and SipHash is needlessly slow for integer keys on the simulator hot path).

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiplicative hasher for small integer keys. Not DoS-resistant —
/// only used for simulator-internal maps keyed by addresses/lines.
#[derive(Default)]
pub struct FibHasher(u64);

impl Hasher for FibHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the fast paths below cover the keys we actually use.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FibHasher`].
pub type BuildFib = BuildHasherDefault<FibHasher>;

/// HashMap keyed by small integers using the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildFib>;

/// HashSet keyed by small integers using the fast hasher.
pub type FastSet<K> = std::collections::HashSet<K, BuildFib>;

/// Bounded exponential backoff for the conflict table's wait loops.
///
/// A `Committing` peer or a strong-atomicity claim holder finishes within a few
/// hundred instructions, so the first rounds busy-spin with `spin_loop` hints
/// (doubling 1→32 iterations); after that the waiter falls back to
/// `yield_now`, which is mandatory on oversubscribed machines (the CI host has
/// a single core — a pure spin would wait out the blocker's entire timeslice).
#[derive(Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Maximum busy-spin rounds before every wait becomes an OS yield.
    const SPIN_LIMIT: u32 = 6;

    /// Fresh backoff, starting at the shortest spin.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wait a little longer than last time.
    #[inline]
    pub fn snooze(&mut self) {
        // Under a virtual clock the *only* correct wait is a virtual yield:
        // host spinning burns real time while simulated time is frozen, and an
        // OS yield hands the CPU to a thread the virtual scheduler has gated.
        if crate::vclock::is_attached() {
            crate::vclock::yield_now();
            return;
        }
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_often() {
        // Sanity: the multiplicative hash spreads consecutive integers.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FibHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() >> 52); // top 12 bits
        }
        // With 4096 buckets and 10k keys we should touch most buckets.
        assert!(seen.len() > 3000, "poor spread: {}", seen.len());
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for i in 0..100 {
            m.insert(i, u64::from(i) * 3);
        }
        assert_eq!(m.get(&40), Some(&120));
        assert_eq!(m.len(), 100);
    }
}
