//! Small internal utilities: a fast multiplicative hasher for the simulator's
//! per-transaction bookkeeping maps (the approved dependency list has no fast-hash
//! crate, and SipHash is needlessly slow for integer keys on the simulator hot path).

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiplicative hasher for small integer keys. Not DoS-resistant —
/// only used for simulator-internal maps keyed by addresses/lines.
#[derive(Default)]
pub struct FibHasher(u64);

impl Hasher for FibHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback; the fast paths below cover the keys we actually use.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FibHasher`].
pub type BuildFib = BuildHasherDefault<FibHasher>;

/// HashMap keyed by small integers using the fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildFib>;

/// HashSet keyed by small integers using the fast hasher.
pub type FastSet<K> = std::collections::HashSet<K, BuildFib>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly_often() {
        // Sanity: the multiplicative hash spreads consecutive integers.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FibHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() >> 52); // top 12 bits
        }
        // With 4096 buckets and 10k keys we should touch most buckets.
        assert!(seen.len() > 3000, "poor spread: {}", seen.len());
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<u32, u64> = FastMap::default();
        for i in 0..100 {
            m.insert(i, u64::from(i) * 3);
        }
        assert_eq!(m.get(&40), Some(&120));
        assert_eq!(m.len(), 100);
    }
}
