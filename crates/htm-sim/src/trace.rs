//! Per-thread event tracing for debugging TM protocols built on the simulator.
//!
//! When enabled ([`crate::HtmConfig::trace_capacity`] > 0), every hardware thread
//! records its transactional lifecycle events into a bounded ring buffer:
//! begins, commits (with footprint) and aborts (with cause). Protocol bugs that
//! are invisible in aggregate statistics — e.g. a retry loop burning its quantum,
//! or a path repeatedly dying of capacity — show up immediately in the event
//! stream.
//!
//! Tracing is thread-local (no synchronisation on the hot path beyond what the
//! simulator already does) and bounded (old events are overwritten), so it can stay
//! enabled for whole experiments.

use crate::abort::AbortCode;
use std::collections::VecDeque;

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `_xbegin` executed.
    Begin,
    /// `_xend` succeeded with the given footprint.
    Commit {
        /// Distinct lines whose first access was a read.
        read_lines: usize,
        /// Distinct written lines.
        write_lines: usize,
        /// Work units consumed.
        work: u64,
    },
    /// The transaction aborted.
    Abort {
        /// Why.
        code: AbortCode,
        /// Work units consumed before the abort.
        work: u64,
    },
}

/// Bounded per-thread event ring.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<Event>,
    capacity: usize,
    /// Total events ever recorded (including overwritten ones).
    recorded: u64,
}

impl Trace {
    /// A trace keeping the most recent `capacity` events (0 disables tracing).
    pub fn new(capacity: usize) -> Self {
        Self { events: VecDeque::with_capacity(capacity.min(1 << 16)), capacity, recorded: 0 }
    }

    /// True when tracing is disabled.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    #[inline]
    pub(crate) fn record(&mut self, ev: Event) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded, including those already overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Drop all retained events (the total count is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the retained events, one per line — a debugging aid.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            match ev {
                Event::Begin => out.push_str("begin\n"),
                Event::Commit { read_lines, write_lines, work } => out.push_str(&format!(
                    "commit  r={read_lines} w={write_lines} work={work}\n"
                )),
                Event::Abort { code, work } => {
                    out.push_str(&format!("abort   {code} work={work}\n"))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_overwrites_oldest() {
        let mut t = Trace::new(2);
        t.record(Event::Begin);
        t.record(Event::Abort { code: AbortCode::Conflict, work: 1 });
        t.record(Event::Begin);
        assert_eq!(t.len(), 2);
        assert_eq!(t.recorded(), 3);
        let evs: Vec<_> = t.events().cloned().collect();
        assert_eq!(evs[0], Event::Abort { code: AbortCode::Conflict, work: 1 });
        assert_eq!(evs[1], Event::Begin);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(0);
        t.record(Event::Begin);
        assert!(t.is_empty());
        assert!(t.is_disabled());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(8);
        t.record(Event::Begin);
        t.record(Event::Commit { read_lines: 2, write_lines: 1, work: 5 });
        t.record(Event::Abort { code: AbortCode::Capacity, work: 7 });
        let s = t.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("commit  r=2 w=1 work=5"));
        assert!(s.contains("abort   capacity work=7"));
    }
}
