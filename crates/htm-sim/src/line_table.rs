//! Line-granular ownership table: the simulator's stand-in for the cache-coherence
//! protocol's conflict detection.
//!
//! Every cache line of the heap has one **packed `AtomicU64`** recording which
//! active hardware transactions hold it in their read or write sets:
//!
//! ```text
//!   63            56 55                                                     0
//!  +----------------+-------------------------------------------------------+
//!  |  writer byte   |                 reader bitmap (56 bits)               |
//!  +----------------+-------------------------------------------------------+
//!   0x00  no writer        bit t set  <=>  thread t holds the line in its
//!   t+1   thread t                         transactional read set
//!   0xFE  non-transactional write in progress (strong-atomicity claim)
//! ```
//!
//! Accesses — transactional or not — resolve conflicts *requester-wins* with a
//! single CAS loop on the line's word: the requester dooms the current owner(s)
//! and installs its own registration in one atomic step, exactly as a MESI
//! invalidation message aborts the transaction monitoring the line. A peer that
//! already reached `Committing` stalls the requester briefly instead (see
//! [`crate::registry`]). There is **no lock anywhere on this path**: a conflict
//! check is one atomic load, zero or more status CASes on the victims, and one
//! CAS on the line word; unregistration (commit publication / abort cleanup) is
//! one atomic RMW per touched line.
//!
//! The table is direct-indexed by line id (one word per heap line), mirroring the
//! cost profile of real coherence hardware rather than adding hash-map overhead
//! to every first access.
//!
//! ## Lock-freedom caveats (deliberate, documented)
//!
//! * **Spurious dooms.** A requester dooms victims identified from a snapshot of
//!   the line word. If the victim finishes that transaction and begins another
//!   between the snapshot and the doom CAS, the doom hits the next incarnation.
//!   Best-effort HTM explicitly permits spurious aborts, so this is semantically
//!   sound; the window (rollback + table cleanup + restart, all inside one
//!   requester access) makes it vanishingly rare in practice. *Lost* dooms and
//!   *lost* registrations cannot happen — the full-word CAS fails whenever
//!   ownership changed, and the requester re-inspects.
//! * **Doomed owners keep their bits.** Dooming a writer/reader does not clear
//!   its registration; the victim removes its own bits during rollback. A new
//!   writer simply overwrites the writer byte (the victim's cleanup tolerates
//!   that), matching the old behaviour where `entry.writer = Some(t)` displaced
//!   the doomed owner.
//! * **Strong atomicity claim.** A non-transactional *write* must execute
//!   atomically with its conflict resolution (otherwise a hardware transaction
//!   could register a read between the doom sweep and the store and keep a stale
//!   value). The claim byte `0xFE` provides that window: while it is held, every
//!   transactional registration and every other non-transactional write backs
//!   off ([`AccessOutcome::Wait`]); readers can only *leave* (unregister). A
//!   non-transactional *read* needs no claim — it dooms a conflicting writer
//!   (whose buffered stores can then never be published) and performs one atomic
//!   heap load.
//!
//! The 56-bit reader bitmap caps the machine at
//! [`crate::registry::MAX_THREADS`] = 56 simulated hardware
//! threads, asserted at construction here, in [`crate::registry::TxRegistry`],
//! and in [`crate::HtmConfig::validate`]. See `docs/line-table.md`.
//!
//! A mutex-based reference implementation with identical semantics lives in
//! [`crate::line_table_ref`]; it serves as the differential-testing oracle and
//! the "before" baseline of the `linebench` microbenchmark.

use crate::align::CacheAligned;
use crate::heap::{Line, WORDS_PER_LINE};
use crate::registry::{DoomOutcome, Requester, ThreadId, TxRegistry, MAX_THREADS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of attempting to register an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Access registered; all conflicting peers were doomed.
    Ok,
    /// A conflicting peer is mid-commit (or a non-transactional write holds the
    /// line's claim); the caller must back off and retry.
    Wait,
}

/// Low 56 bits: one reader bit per thread.
const READERS_MASK: u64 = (1 << 56) - 1;
/// High byte: the writer registration.
const WRITER_SHIFT: u32 = 56;
const WRITER_MASK: u64 = 0xFF << WRITER_SHIFT;
/// Writer-byte value marking an in-progress non-transactional write.
const NT_CLAIM_BYTE: u64 = 0xFE;
const NT_CLAIM: u64 = NT_CLAIM_BYTE << WRITER_SHIFT;

/// Decoded writer byte of a line word.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Writer {
    None,
    Thread(ThreadId),
    NtClaim,
}

#[inline(always)]
fn writer_of(word: u64) -> Writer {
    match word >> WRITER_SHIFT {
        0 => Writer::None,
        NT_CLAIM_BYTE => Writer::NtClaim,
        b => Writer::Thread((b - 1) as ThreadId),
    }
}

#[inline(always)]
fn writer_word(t: ThreadId) -> u64 {
    (t as u64 + 1) << WRITER_SHIFT
}

#[inline(always)]
fn reader_bit(t: ThreadId) -> u64 {
    1u64 << t
}

/// Swap the claim byte back to the (possibly displaced doomed) writer byte it
/// replaced. While the claim is held no other writer byte can appear — every
/// registration and competing claim backs off on `0xFE` — so only the reader
/// bits can have changed.
///
/// If the displaced writer unregistered *during* the claim (its `unregister`
/// sees a byte that is not its own and leaves it), the restore briefly
/// resurrects a stale byte; the next access observes `DoomOutcome::Gone` and
/// clears it, exactly like any other stale-entry case.
#[inline]
fn release_claim(w: &AtomicU64, saved_writer: u64) {
    let mut cur = w.load(Ordering::SeqCst);
    loop {
        debug_assert_eq!(cur & WRITER_MASK, NT_CLAIM);
        let new = (cur & READERS_MASK) | saved_writer;
        match w.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

/// Direct-indexed table mapping every heap line to its packed owner word.
///
/// The table stays *dense* — one word per heap line, mirroring the cost
/// profile of real coherence hardware — but the backing store is chunked into
/// whole 64-byte host cache lines ([`CacheAligned`] groups of
/// [`WORDS_PER_LINE`] words). A plain `Box<[AtomicU64]>` is only 8-byte
/// aligned, so the table's first and last words could share a host line with
/// unrelated allocations; the chunked layout pins every group of eight
/// adjacent line-words to exactly one host line. Adjacent heap lines still
/// intentionally share a host line here (they do in real tag arrays too); the
/// `membench` false-sharing A/B quantifies that trade-off in isolation.
pub struct LineTable {
    chunks: Box<[CacheAligned<[AtomicU64; WORDS_PER_LINE]>]>,
    n_lines: usize,
}

impl LineTable {
    /// Create a table covering `n_lines` heap lines.
    pub fn new(n_lines: usize) -> Self {
        // The bitmap layout is the load-bearing invariant of this module; check
        // it at compile time rather than on every access.
        const {
            assert!(
                MAX_THREADS <= 56,
                "packed line word holds at most 56 reader bits"
            );
            assert!(
                std::mem::size_of::<CacheAligned<[AtomicU64; WORDS_PER_LINE]>>() == 64,
                "one table chunk must be exactly one host cache line"
            );
        }
        let mut v = Vec::with_capacity(n_lines.div_ceil(WORDS_PER_LINE));
        v.resize_with(n_lines.div_ceil(WORDS_PER_LINE), CacheAligned::default);
        Self {
            chunks: v.into_boxed_slice(),
            n_lines,
        }
    }

    #[inline(always)]
    fn word(&self, line: Line) -> &AtomicU64 {
        debug_assert!((line as usize) < self.n_lines);
        &self.chunks[line as usize / WORDS_PER_LINE].0[line as usize % WORDS_PER_LINE]
    }

    /// Register thread `t` as a transactional reader of `line`.
    ///
    /// Dooms a conflicting transactional writer (reading a line in another core's
    /// transactionally-modified state invalidates that transaction).
    pub fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        debug_assert!((t as usize) < MAX_THREADS);
        let w = self.word(line);
        let me = reader_bit(t);
        let mut cur = w.load(Ordering::SeqCst);
        loop {
            let new = match writer_of(cur) {
                Writer::None => cur | me,
                Writer::Thread(owner) if owner == t => cur | me,
                Writer::Thread(owner) => match reg.doom(owner, Requester::Thread(t)) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    // The doomed victim clears its own byte during rollback.
                    DoomOutcome::Doomed => cur | me,
                    // Stale byte from a finished incarnation: clear it ourselves.
                    DoomOutcome::Gone => (cur & !WRITER_MASK) | me,
                },
                Writer::NtClaim => return AccessOutcome::Wait,
            };
            if new == cur {
                return AccessOutcome::Ok;
            }
            match w.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return AccessOutcome::Ok,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Register thread `t` as the transactional writer of `line`.
    ///
    /// Dooms the conflicting writer and every conflicting reader (a write request
    /// for ownership invalidates all other copies of the line). Reader bits are
    /// left in place — doomed readers unregister themselves during rollback.
    pub fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        debug_assert!((t as usize) < MAX_THREADS);
        let w = self.word(line);
        let mut cur = w.load(Ordering::SeqCst);
        loop {
            match writer_of(cur) {
                Writer::None => {}
                Writer::Thread(owner) if owner == t => {}
                Writer::Thread(owner) => match reg.doom(owner, Requester::Thread(t)) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    // Either way the byte is overwritten below; a doomed victim's
                    // cleanup tolerates its byte having been displaced.
                    DoomOutcome::Doomed | DoomOutcome::Gone => {}
                },
                Writer::NtClaim => return AccessOutcome::Wait,
            }
            let mut readers = cur & READERS_MASK & !reader_bit(t);
            while readers != 0 {
                let r = readers.trailing_zeros() as ThreadId;
                readers &= readers - 1;
                match reg.doom(r, Requester::Thread(t)) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    DoomOutcome::Doomed | DoomOutcome::Gone => {}
                }
            }
            let new = (cur & READERS_MASK) | writer_word(t);
            match w.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return AccessOutcome::Ok,
                // Ownership changed under us (new reader/writer/claim): re-doom
                // from the fresh snapshot. Re-dooming is idempotent.
                Err(observed) => cur = observed,
            }
        }
    }

    /// Strong atomicity: a non-transactional access to `line` by `by`. A
    /// non-transactional read dooms a transactional writer; a non-transactional
    /// write dooms the writer and all readers.
    ///
    /// Nothing is registered — non-transactional accesses are not monitored.
    pub fn nt_access(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Requester,
    ) -> AccessOutcome {
        match self.nt_execute(reg, line, is_write, by, || ()) {
            Ok(()) => AccessOutcome::Ok,
            Err(()) => AccessOutcome::Wait,
        }
    }

    /// Execute a non-transactional heap access atomically with its conflict
    /// resolution.
    ///
    /// For a *write*, the claim byte is installed first: conflicting owners are
    /// doomed and `op` runs before the claim is released, closing the window in
    /// which a hardware transaction could register a read between the conflict
    /// check and the non-transactional store and keep a stale value (strong
    /// atomicity would be violated otherwise). A *read* needs no claim: dooming
    /// the writer already prevents its buffered stores from ever publishing, and
    /// the single heap load is itself atomic.
    ///
    /// Returns `Err(())` if a committing peer (or a concurrent claim holder)
    /// forces a wait; the caller retries. The unit error is deliberate: "wait and
    /// retry" carries no information.
    #[allow(clippy::result_unit_err)]
    pub fn nt_execute<R>(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Requester,
        op: impl FnOnce() -> R,
    ) -> Result<R, ()> {
        let w = self.word(line);
        if !is_write {
            // Read path: doom a conflicting writer, then load.
            let mut cur = w.load(Ordering::SeqCst);
            loop {
                match writer_of(cur) {
                    Writer::None => break,
                    Writer::NtClaim => return Err(()),
                    Writer::Thread(owner) if Requester::Thread(owner) == by => {
                        debug_assert!(
                            false,
                            "non-transactional access to a line in the caller's own active write set"
                        );
                        break;
                    }
                    Writer::Thread(owner) => match reg.doom(owner, by) {
                        DoomOutcome::MustWait => return Err(()),
                        DoomOutcome::Doomed => break,
                        DoomOutcome::Gone => {
                            // Tidy the stale byte so later accesses skip the doom.
                            match w.compare_exchange_weak(
                                cur,
                                cur & !WRITER_MASK,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            ) {
                                Ok(_) => break,
                                Err(observed) => cur = observed,
                            }
                        }
                    },
                }
            }
            return Ok(op());
        }

        // Write path, uncontended fast path: a line nobody monitors is claimed
        // with one CAS and released with one plain store. Correct because while
        // the claim is held with zero readers present, no other party can change
        // the word at all: registrations and competing claims back off on 0xFE,
        // and unregistering absent bits is a no-op. A failed CAS hands us the
        // observed word, doubling as the two-phase path's initial load.
        let mut cur = match w.compare_exchange(0, NT_CLAIM, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                let out = op();
                w.store(0, Ordering::SeqCst);
                return Ok(out);
            }
            Err(observed) => observed,
        };

        // Write path, phase 1: install the claim byte, dooming a conflicting
        // transactional writer on the way. A doomed writer stays registered (its
        // own rollback unregisters it), so its displaced byte is restored when
        // the claim is released; a stale byte (`Gone`) is dropped instead.
        let (claimed, saved_writer) = loop {
            let saved = match writer_of(cur) {
                Writer::None => 0,
                Writer::NtClaim => return Err(()),
                Writer::Thread(owner) if Requester::Thread(owner) == by => {
                    debug_assert!(
                        false,
                        "non-transactional access to a line in the caller's own active write set"
                    );
                    // Invalid state; degrade to an unclaimed store rather than
                    // displacing the caller's own registration.
                    return Ok(op());
                }
                Writer::Thread(owner) => match reg.doom(owner, by) {
                    DoomOutcome::MustWait => return Err(()),
                    DoomOutcome::Doomed => cur & WRITER_MASK,
                    DoomOutcome::Gone => 0,
                },
            };
            let new = (cur & READERS_MASK) | NT_CLAIM;
            match w.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break (new, saved),
                Err(observed) => cur = observed,
            }
        };

        // Phase 2 (claim held): no new registration can land — tx_read/tx_write
        // and other claims back off on 0xFE; readers can only unregister. Doom
        // the snapshot's readers, run `op`, release.
        let self_bit = match by {
            Requester::Thread(b) => reader_bit(b),
            Requester::External => 0,
        };
        let mut readers = claimed & READERS_MASK & !self_bit;
        while readers != 0 {
            let r = readers.trailing_zeros() as ThreadId;
            readers &= readers - 1;
            match reg.doom(r, by) {
                DoomOutcome::MustWait => {
                    // A reader is mid-commit: back off entirely and retry.
                    release_claim(w, saved_writer);
                    return Err(());
                }
                DoomOutcome::Doomed | DoomOutcome::Gone => {}
            }
        }
        let out = op();
        release_claim(w, saved_writer);
        Ok(out)
    }

    /// Remove thread `t`'s registration (reader and/or writer) for `line`: one
    /// atomic RMW, no lock. Called during commit publication and abort cleanup
    /// for every touched line.
    ///
    /// The writer byte is cleared only if it still belongs to `t` — a requester
    /// or claim holder may have displaced it after dooming `t`.
    pub fn unregister(&self, line: Line, t: ThreadId) {
        let w = self.word(line);
        let me_bit = reader_bit(t);
        let me_writer = writer_word(t);
        let mut cur = w.load(Ordering::SeqCst);
        loop {
            let mut new = cur & !me_bit;
            if cur & WRITER_MASK == me_writer {
                new &= !WRITER_MASK;
            }
            if new == cur {
                return;
            }
            match w.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Total number of live line registrations (diagnostics / leak tests).
    pub fn live_entries(&self) -> usize {
        (0..self.n_lines)
            .filter(|&l| self.word(l as Line).load(Ordering::SeqCst) != 0)
            .count()
    }

    /// Raw packed word for `line` (test/diagnostic introspection).
    #[doc(hidden)]
    pub fn raw_word(&self, line: Line) -> u64 {
        self.word(line).load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LineTable, TxRegistry) {
        (LineTable::new(64), TxRegistry::new(8))
    }

    #[test]
    fn read_read_no_conflict() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        assert_eq!(tab.tx_read(&reg, 5, 0), AccessOutcome::Ok);
        assert_eq!(tab.tx_read(&reg, 5, 1), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
        assert!(!reg.is_doomed(1));
    }

    #[test]
    fn write_dooms_readers() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        reg.begin(2);
        tab.tx_read(&reg, 5, 0);
        tab.tx_read(&reg, 5, 1);
        assert_eq!(tab.tx_write(&reg, 5, 2), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        assert!(reg.is_doomed(1));
        assert!(!reg.is_doomed(2));
    }

    #[test]
    fn read_dooms_writer() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        tab.tx_write(&reg, 9, 0);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        assert!(!reg.is_doomed(1));
    }

    #[test]
    fn own_write_then_read_no_self_doom() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_write(&reg, 9, 0);
        assert_eq!(tab.tx_read(&reg, 9, 0), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn committing_writer_blocks_requester() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_write(&reg, 9, 0);
        reg.start_commit(0).unwrap();
        reg.begin(1);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Wait);
        assert_eq!(tab.tx_write(&reg, 9, 1), AccessOutcome::Wait);
        assert_eq!(
            tab.nt_access(&reg, 9, false, Requester::External),
            AccessOutcome::Wait
        );
        // After the committer finishes and unregisters, access proceeds.
        tab.unregister(9, 0);
        reg.finish(0);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Ok);
    }

    #[test]
    fn nt_write_dooms_everyone() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        tab.tx_read(&reg, 3, 0);
        tab.tx_write(&reg, 3, 1);
        assert_eq!(
            tab.nt_access(&reg, 3, true, Requester::External),
            AccessOutcome::Ok
        );
        assert!(reg.is_doomed(0));
        assert!(reg.is_doomed(1));
    }

    #[test]
    fn nt_read_spares_readers() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 3, 0);
        assert_eq!(
            tab.nt_access(&reg, 3, false, Requester::External),
            AccessOutcome::Ok
        );
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn nt_access_skips_self() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 3, 0);
        // Thread 0's own non-transactional write to a line it only *reads*
        // transactionally: by=Thread(0) spares thread 0's read entry.
        assert_eq!(
            tab.nt_access(&reg, 3, true, Requester::Thread(0)),
            AccessOutcome::Ok
        );
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn unregister_cleans_entries() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 1, 0);
        tab.tx_write(&reg, 2, 0);
        assert_eq!(tab.live_entries(), 2);
        tab.unregister(1, 0);
        tab.unregister(2, 0);
        assert_eq!(tab.live_entries(), 0);
    }

    #[test]
    fn packed_word_layout() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(3);
        tab.tx_read(&reg, 7, 3);
        tab.tx_write(&reg, 7, 0);
        // Reader bit 3 kept, writer byte = 0 + 1.
        assert_eq!(tab.raw_word(7), (1 << 3) | (1u64 << 56));
        tab.unregister(7, 3);
        tab.unregister(7, 0);
        assert_eq!(tab.raw_word(7), 0);
    }

    #[test]
    fn displaced_writer_unregister_keeps_new_owner() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        tab.tx_write(&reg, 4, 0);
        // Requester 1 dooms 0 and takes the writer byte.
        assert_eq!(tab.tx_write(&reg, 4, 1), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        // Victim 0's rollback must not clobber the new owner's byte.
        tab.unregister(4, 0);
        assert_eq!(tab.raw_word(4) >> 56, 1 + 1);
    }

    #[test]
    fn fast_path_claim_still_blocks_registration() {
        let (tab, reg) = setup();
        reg.begin(0);
        // The line is empty, so this write takes the single-CAS fast path; the
        // claim must still exclude every other party for the duration of `op`.
        let r = tab.nt_execute(&reg, 6, true, Requester::External, || {
            assert_eq!(tab.raw_word(6) >> WRITER_SHIFT, NT_CLAIM_BYTE);
            assert_eq!(tab.tx_read(&reg, 6, 0), AccessOutcome::Wait);
            assert_eq!(tab.tx_write(&reg, 6, 0), AccessOutcome::Wait);
            assert_eq!(
                tab.nt_access(&reg, 6, true, Requester::External),
                AccessOutcome::Wait
            );
            42
        });
        assert_eq!(r, Ok(42));
        assert!(!reg.is_doomed(0), "empty line: nobody to doom");
        assert_eq!(tab.raw_word(6), 0, "claim released");
        assert_eq!(tab.tx_read(&reg, 6, 0), AccessOutcome::Ok);
    }

    #[test]
    fn nt_write_stress_preserves_doom_semantics() {
        // Transactional writers and a non-transactional writer hammer one line.
        // Strong atomicity demands: once a transaction owns the line and reaches
        // Committing undoomed, no nt write can have executed since it registered
        // (the nt writer must either doom it first or wait). The nt writer
        // constantly alternates between the uncontended fast path (line empty)
        // and the two-phase claim (owners present), so both paths are exercised
        // against the same invariant.
        use std::sync::atomic::AtomicU64;
        const NT_WRITES: u64 = 2000;
        let tab = LineTable::new(1);
        let reg = TxRegistry::new(8);
        let cell = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (tab, reg, cell) = (&tab, &reg, &cell);
                s.spawn(move || {
                    for _ in 0..2000 {
                        reg.begin(t);
                        if tab.tx_write(reg, 0, t) == AccessOutcome::Ok {
                            let seen = cell.load(Ordering::SeqCst);
                            std::hint::spin_loop();
                            if reg.start_commit(t).is_ok() {
                                // Undoomed at commit: the nt writer cannot have
                                // run between our registration and now.
                                assert_eq!(
                                    cell.load(Ordering::SeqCst),
                                    seen,
                                    "nt write raced an undoomed owner"
                                );
                            }
                        }
                        tab.unregister(0, t);
                        reg.finish(t);
                    }
                });
            }
            let (tab, reg, cell) = (&tab, &reg, &cell);
            s.spawn(move || {
                for _ in 0..NT_WRITES {
                    while tab
                        .nt_execute(reg, 0, true, Requester::External, || {
                            cell.fetch_add(1, Ordering::SeqCst)
                        })
                        .is_err()
                    {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(cell.load(Ordering::SeqCst), NT_WRITES, "no lost nt writes");
        assert_eq!(tab.live_entries(), 0, "no leaked claims or registrations");
    }

    #[test]
    fn nt_write_after_unregistered_writer_is_clean() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_write(&reg, 2, 0);
        tab.unregister(2, 0);
        reg.finish(0);
        assert_eq!(
            tab.nt_access(&reg, 2, true, Requester::External),
            AccessOutcome::Ok
        );
        assert_eq!(tab.raw_word(2), 0, "claim byte must be released");
    }
}
