//! Line-granular ownership table: the simulator's stand-in for the cache-coherence
//! protocol's conflict detection.
//!
//! Every cache line of the heap has a slot recording which active hardware
//! transactions hold it in their read or write sets. Accesses — transactional or not
//! — consult the slot for the target line under its lock and resolve conflicts
//! *requester-wins*: the requester dooms the current owner(s) and proceeds, exactly
//! as a MESI invalidation message aborts the transaction monitoring the line. A peer
//! that already reached `Committing` stalls the requester briefly instead (see
//! [`crate::registry`]).
//!
//! The table is direct-indexed by line id (one slot per heap line): conflict checks
//! on the simulator's hot path are a single lock + field update, mirroring the cost
//! profile of real coherence hardware rather than adding hash-map overhead to every
//! first access.

use crate::heap::Line;
use crate::registry::{DoomOutcome, ThreadId, TxRegistry};
use parking_lot::Mutex;

/// Result of attempting to register an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Access registered; all conflicting peers were doomed.
    Ok,
    /// A conflicting peer is mid-commit; the caller must back off and retry.
    Wait,
}

#[derive(Clone, Copy, Default)]
struct LineEntry {
    /// Thread currently holding the line in its transactional write set, if any.
    writer: Option<ThreadId>,
    /// Bitmap of threads holding the line in their transactional read sets.
    readers: u64,
}

impl LineEntry {
    fn is_empty(&self) -> bool {
        self.writer.is_none() && self.readers == 0
    }
}

/// Direct-indexed table mapping every heap line to its transactional owners.
pub struct LineTable {
    entries: Box<[Mutex<LineEntry>]>,
}

impl LineTable {
    /// Create a table covering `n_lines` heap lines.
    pub fn new(n_lines: usize) -> Self {
        let mut v = Vec::with_capacity(n_lines);
        v.resize_with(n_lines, || Mutex::new(LineEntry::default()));
        Self {
            entries: v.into_boxed_slice(),
        }
    }

    #[inline]
    fn slot(&self, line: Line) -> &Mutex<LineEntry> {
        &self.entries[line as usize]
    }

    /// Register thread `t` as a transactional reader of `line`.
    ///
    /// Dooms a conflicting transactional writer (reading a line in another core's
    /// transactionally-modified state invalidates that transaction).
    pub fn tx_read(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        let mut entry = self.slot(line).lock();
        if let Some(w) = entry.writer {
            if w != t {
                match reg.doom(w, t) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    DoomOutcome::Doomed => {}
                    DoomOutcome::Gone => entry.writer = None,
                }
            }
        }
        entry.readers |= 1u64 << t;
        AccessOutcome::Ok
    }

    /// Register thread `t` as the transactional writer of `line`.
    ///
    /// Dooms the conflicting writer and every conflicting reader (a write request for
    /// ownership invalidates all other copies of the line).
    pub fn tx_write(&self, reg: &TxRegistry, line: Line, t: ThreadId) -> AccessOutcome {
        let mut entry = self.slot(line).lock();
        if let Some(w) = entry.writer {
            if w != t {
                match reg.doom(w, t) {
                    DoomOutcome::MustWait => return AccessOutcome::Wait,
                    DoomOutcome::Doomed => {}
                    DoomOutcome::Gone => {}
                }
            }
        }
        let mut readers = entry.readers & !(1u64 << t);
        while readers != 0 {
            let r = readers.trailing_zeros() as ThreadId;
            readers &= readers - 1;
            match reg.doom(r, t) {
                DoomOutcome::MustWait => return AccessOutcome::Wait,
                DoomOutcome::Doomed | DoomOutcome::Gone => {}
            }
        }
        entry.writer = Some(t);
        AccessOutcome::Ok
    }

    /// Strong atomicity: a non-transactional access to `line` by `by` (if `by` is a
    /// registered simulator thread). A non-transactional read dooms a transactional
    /// writer; a non-transactional write dooms the writer and all readers.
    ///
    /// Nothing is registered — non-transactional accesses are not monitored.
    pub fn nt_access(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Option<ThreadId>,
    ) -> AccessOutcome {
        match self.nt_execute(reg, line, is_write, by, || ()) {
            Ok(()) => AccessOutcome::Ok,
            Err(()) => AccessOutcome::Wait,
        }
    }

    /// Execute a non-transactional heap access atomically with its conflict
    /// resolution: conflicting owners are doomed *and* `op` runs before the line
    /// lock is released. This closes the window in which a hardware transaction could
    /// register a read between the conflict check and the non-transactional store and
    /// keep a stale value (strong atomicity would be violated otherwise).
    ///
    /// Returns `Err(())` if a committing peer forces a wait; the caller retries.
    /// The unit error is deliberate: "wait and retry" carries no information.
    #[allow(clippy::result_unit_err)]
    pub fn nt_execute<R>(
        &self,
        reg: &TxRegistry,
        line: Line,
        is_write: bool,
        by: Option<ThreadId>,
        op: impl FnOnce() -> R,
    ) -> Result<R, ()> {
        let mut entry = self.slot(line).lock();
        if !entry.is_empty() {
            if let Some(w) = entry.writer {
                if Some(w) != by {
                    match reg.doom(w, by.unwrap_or(63)) {
                        DoomOutcome::MustWait => return Err(()),
                        DoomOutcome::Doomed => {}
                        DoomOutcome::Gone => entry.writer = None,
                    }
                } else {
                    debug_assert!(
                        false,
                        "non-transactional access to a line in the caller's own active write set"
                    );
                }
            }
            if is_write {
                let mut readers = entry.readers;
                if let Some(b) = by {
                    readers &= !(1u64 << b);
                }
                while readers != 0 {
                    let r = readers.trailing_zeros() as ThreadId;
                    readers &= readers - 1;
                    match reg.doom(r, by.unwrap_or(63)) {
                        DoomOutcome::MustWait => return Err(()),
                        DoomOutcome::Doomed | DoomOutcome::Gone => {}
                    }
                }
            }
        }
        Ok(op())
    }

    /// Remove thread `t`'s registration (reader and/or writer) for `line`.
    /// Called during commit publication and abort cleanup.
    pub fn unregister(&self, line: Line, t: ThreadId) {
        let mut entry = self.slot(line).lock();
        entry.readers &= !(1u64 << t);
        if entry.writer == Some(t) {
            entry.writer = None;
        }
    }

    /// Total number of live line registrations (diagnostics / leak tests).
    pub fn live_entries(&self) -> usize {
        self.entries.iter().filter(|e| !e.lock().is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LineTable, TxRegistry) {
        (LineTable::new(64), TxRegistry::new(8))
    }

    #[test]
    fn read_read_no_conflict() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        assert_eq!(tab.tx_read(&reg, 5, 0), AccessOutcome::Ok);
        assert_eq!(tab.tx_read(&reg, 5, 1), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
        assert!(!reg.is_doomed(1));
    }

    #[test]
    fn write_dooms_readers() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        reg.begin(2);
        tab.tx_read(&reg, 5, 0);
        tab.tx_read(&reg, 5, 1);
        assert_eq!(tab.tx_write(&reg, 5, 2), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        assert!(reg.is_doomed(1));
        assert!(!reg.is_doomed(2));
    }

    #[test]
    fn read_dooms_writer() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        tab.tx_write(&reg, 9, 0);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        assert!(!reg.is_doomed(1));
    }

    #[test]
    fn own_write_then_read_no_self_doom() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_write(&reg, 9, 0);
        assert_eq!(tab.tx_read(&reg, 9, 0), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn committing_writer_blocks_requester() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_write(&reg, 9, 0);
        reg.start_commit(0).unwrap();
        reg.begin(1);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Wait);
        assert_eq!(tab.tx_write(&reg, 9, 1), AccessOutcome::Wait);
        assert_eq!(tab.nt_access(&reg, 9, false, None), AccessOutcome::Wait);
        // After the committer finishes and unregisters, access proceeds.
        tab.unregister(9, 0);
        reg.finish(0);
        assert_eq!(tab.tx_read(&reg, 9, 1), AccessOutcome::Ok);
    }

    #[test]
    fn nt_write_dooms_everyone() {
        let (tab, reg) = setup();
        reg.begin(0);
        reg.begin(1);
        tab.tx_read(&reg, 3, 0);
        tab.tx_write(&reg, 3, 1);
        assert_eq!(tab.nt_access(&reg, 3, true, None), AccessOutcome::Ok);
        assert!(reg.is_doomed(0));
        assert!(reg.is_doomed(1));
    }

    #[test]
    fn nt_read_spares_readers() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 3, 0);
        assert_eq!(tab.nt_access(&reg, 3, false, None), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn nt_access_skips_self() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 3, 0);
        // Thread 0's own non-transactional write to a line it only *reads*
        // transactionally: nt_access with by=Some(0) spares thread 0's read entry.
        assert_eq!(tab.nt_access(&reg, 3, true, Some(0)), AccessOutcome::Ok);
        assert!(!reg.is_doomed(0));
    }

    #[test]
    fn unregister_cleans_entries() {
        let (tab, reg) = setup();
        reg.begin(0);
        tab.tx_read(&reg, 1, 0);
        tab.tx_write(&reg, 2, 0);
        assert_eq!(tab.live_entries(), 2);
        tab.unregister(1, 0);
        tab.unregister(2, 0);
        assert_eq!(tab.live_entries(), 0);
    }
}
