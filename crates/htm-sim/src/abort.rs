//! Abort taxonomy of a best-effort hardware transaction.
//!
//! §2 of the paper: "In the current HTM implementations, three reasons force a
//! transaction to abort: conflict, capacity, and other." Part-HTM groups capacity and
//! "other" (interrupts) into the superset of *resource failures*, which is the class
//! of aborts the partitioned path is designed to rescue.

use std::fmt;

/// Why a hardware transaction aborted.
///
/// Mirrors the status word TSX hands to the fallback handler after `_xbegin`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// A concurrent access to one of the transaction's cache lines invalidated it
    /// (data conflict), including invalidations by non-transactional code (strong
    /// atomicity).
    Conflict,
    /// The transaction's footprint exceeded the transactional buffer: a written line
    /// was evicted from the simulated L1, or the read-set budget was exhausted.
    Capacity,
    /// The transaction executed `xabort(code)`. TM protocols use the payload to
    /// signal software-defined conditions (e.g. "global lock held", "locked location
    /// observed", "timestamp changed").
    Explicit(u8),
    /// An asynchronous event — in this simulator, the virtual timer interrupt fired
    /// because the transaction exceeded its work-unit quantum, or a randomly injected
    /// interrupt occurred.
    Other,
}

impl AbortCode {
    /// True if the abort is a *resource failure* in the paper's sense (§2): the
    /// transaction could not commit because of space (capacity) or time (interrupt)
    /// limitations rather than contention.
    #[inline]
    pub fn is_resource_failure(self) -> bool {
        matches!(self, AbortCode::Capacity | AbortCode::Other)
    }

    /// True for conflict aborts (data contention), which are retried in place rather
    /// than partitioned.
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, AbortCode::Conflict)
    }

    /// The explicit payload, if this was an `xabort`.
    #[inline]
    pub fn explicit_code(self) -> Option<u8> {
        match self {
            AbortCode::Explicit(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for AbortCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCode::Conflict => write!(f, "conflict"),
            AbortCode::Capacity => write!(f, "capacity"),
            AbortCode::Explicit(c) => write!(f, "explicit({c})"),
            AbortCode::Other => write!(f, "other"),
        }
    }
}

/// Result type for transactional operations: every read/write inside a hardware
/// transaction can abort, and the abort propagates to the fallback handler via `?`.
pub type TxResult<T> = Result<T, AbortCode>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_failure_classification() {
        assert!(AbortCode::Capacity.is_resource_failure());
        assert!(AbortCode::Other.is_resource_failure());
        assert!(!AbortCode::Conflict.is_resource_failure());
        assert!(!AbortCode::Explicit(3).is_resource_failure());
    }

    #[test]
    fn explicit_payload_roundtrip() {
        assert_eq!(AbortCode::Explicit(42).explicit_code(), Some(42));
        assert_eq!(AbortCode::Conflict.explicit_code(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(AbortCode::Conflict.to_string(), "conflict");
        assert_eq!(AbortCode::Explicit(7).to_string(), "explicit(7)");
    }
}
