//! Abort taxonomy of a best-effort hardware transaction.
//!
//! §2 of the paper: "In the current HTM implementations, three reasons force a
//! transaction to abort: conflict, capacity, and other." Part-HTM groups capacity and
//! "other" (interrupts) into the superset of *resource failures*, which is the class
//! of aborts the partitioned path is designed to rescue.
//!
//! This simulator splits the paper's "other" bucket into its two distinct causes:
//! [`AbortCode::Timer`] (the transaction *deterministically* exhausted its work-unit
//! quantum — a resource failure that will recur on retry, so partitioning can cure
//! it) and [`AbortCode::Interrupt`] (a randomly injected asynchronous event — a
//! transient that an in-place retry usually survives). Conflating the two made the
//! planner's capacity-class profiles count transient interrupts as resource
//! failures and issue spurious group splits.

use std::fmt;

/// Why a hardware transaction aborted.
///
/// Mirrors the status word TSX hands to the fallback handler after `_xbegin`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// A concurrent access to one of the transaction's cache lines invalidated it
    /// (data conflict), including invalidations by non-transactional code (strong
    /// atomicity).
    Conflict,
    /// The transaction's footprint exceeded the transactional buffer: a written line
    /// was evicted from the simulated L1, or the read-set budget was exhausted.
    Capacity,
    /// The transaction executed `xabort(code)`. TM protocols use the payload to
    /// signal software-defined conditions (e.g. "global lock held", "locked location
    /// observed", "timestamp changed").
    Explicit(u8),
    /// The simulated timer interrupt fired: cumulative work reached the configured
    /// quantum ([`crate::HtmConfig::quantum`]). Deterministic — the same transaction
    /// will exhaust the same quantum on every retry, which is why this is a
    /// *resource failure* the partitioned path rescues.
    Timer,
    /// A randomly injected asynchronous interrupt ([`crate::HtmConfig::interrupt_prob`])
    /// — page faults, device interrupts, etc. Transient: retrying in place usually
    /// succeeds, so this is *not* classified as a resource failure.
    Interrupt,
}

impl AbortCode {
    /// True if the abort is a *resource failure* in the paper's sense (§2): the
    /// transaction could not commit because of space (capacity) or time (quantum)
    /// limitations that will *deterministically* recur on retry. Transient causes —
    /// conflicts, explicit aborts, injected interrupts — are excluded.
    #[inline]
    pub fn is_resource_failure(self) -> bool {
        matches!(self, AbortCode::Capacity | AbortCode::Timer)
    }

    /// True for conflict aborts (data contention), which are retried in place rather
    /// than partitioned.
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, AbortCode::Conflict)
    }

    /// The explicit payload, if this was an `xabort`.
    #[inline]
    pub fn explicit_code(self) -> Option<u8> {
        match self {
            AbortCode::Explicit(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for AbortCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCode::Conflict => write!(f, "conflict"),
            AbortCode::Capacity => write!(f, "capacity"),
            AbortCode::Explicit(c) => write!(f, "explicit({c})"),
            AbortCode::Timer => write!(f, "timer"),
            AbortCode::Interrupt => write!(f, "interrupt"),
        }
    }
}

/// Result type for transactional operations: every read/write inside a hardware
/// transaction can abort, and the abort propagates to the fallback handler via `?`.
pub type TxResult<T> = Result<T, AbortCode>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_failure_classification() {
        assert!(AbortCode::Capacity.is_resource_failure());
        assert!(AbortCode::Timer.is_resource_failure());
        assert!(
            !AbortCode::Interrupt.is_resource_failure(),
            "transient injected interrupts are not deterministic resource failures"
        );
        assert!(!AbortCode::Conflict.is_resource_failure());
        assert!(!AbortCode::Explicit(3).is_resource_failure());
    }

    #[test]
    fn explicit_payload_roundtrip() {
        assert_eq!(AbortCode::Explicit(42).explicit_code(), Some(42));
        assert_eq!(AbortCode::Conflict.explicit_code(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(AbortCode::Conflict.to_string(), "conflict");
        assert_eq!(AbortCode::Explicit(7).to_string(), "explicit(7)");
        assert_eq!(AbortCode::Timer.to_string(), "timer");
        assert_eq!(AbortCode::Interrupt.to_string(), "interrupt");
    }
}
