//! Pluggable capacity models: the [`HtmBackend`] trait and its three
//! implementations.
//!
//! `htm-sim` historically hardcoded one TSX-like geometry (set-associative
//! written-line L1, flat read budget). The paper's claim — Part-HTM salvages
//! transactions that exceed *best-effort* resource limits — is a statement
//! about a whole family of HTMs, so the capacity policy is now a trait:
//!
//! * [`TsxBackend`] — the original model, bit-exact with the legacy inline
//!   path (`tests/backend_diff.rs` pins this differentially). Built from the
//!   [`HtmConfig`] geometry, so `backend: Some(BackendKind::Tsx)` and
//!   `backend: None` behave identically.
//! * [`PowerBackend`] — an IBM POWER8-style model: a tiny flat 64-entry write
//!   set, a modest read set, *suspended regions* ([`crate::HtmTx::suspend`] /
//!   [`crate::HtmTx::resume`]: non-transactional reads and interrupt-immune
//!   work mid-transaction) and rollback-only transactions
//!   ([`crate::HtmThread::begin_rot`]). The capacity-stretching comparison
//!   point from PAPERS.md ("Stretching the capacity of HTM in IBM POWER
//!   architectures").
//! * [`LimitedSetBackend`] — a FORTH-style limited read/write-set HTM
//!   ("Limited Read/Write-Set HTM without modifying the ISA"): very small
//!   hardware set budgets, but overflowing lines *spill* to a
//!   software-managed structure instead of aborting, each spill costing extra
//!   work units, until a per-transaction spill budget runs out.
//!
//! ## What a backend may and may not change
//!
//! A backend owns **capacity accounting only**. Conflict detection (the line
//! table), write buffering, doom checking and commit publication are shared
//! machinery and identical across backends — that is what keeps every backend
//! serializable by construction (see `docs/backends.md`): a spilled or
//! stretched line stays registered in the conflict table even though it no
//! longer counts against the hardware budget, so requester-wins dooming and
//! the atomic commit publish are unaffected.

use crate::cache::L1Model;
use crate::config::HtmConfig;
use crate::heap::Line;

/// Which backend an [`HtmConfig`] selects (`None` = the legacy inline TSX
/// path, byte-for-byte the pre-trait behaviour).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// TSX/Haswell model: set-associative write L1, large flat read budget.
    Tsx,
    /// POWER8 model: flat 64-entry write set, suspend/resume, ROT flavour.
    Power,
    /// FORTH limited-set model: tiny sets with software-managed overflow.
    Limited,
}

impl BackendKind {
    /// Short stable name (CLI flags, JSON, docs tables).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Tsx => "tsx",
            BackendKind::Power => "power",
            BackendKind::Limited => "limited",
        }
    }

    /// Parse a CLI operand (`tsx|power|limited`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tsx" => Some(BackendKind::Tsx),
            "power" => Some(BackendKind::Power),
            "limited" => Some(BackendKind::Limited),
            _ => None,
        }
    }

    /// Build the backend. `cfg` parameterizes the TSX model (its geometry
    /// lives in [`HtmConfig`]); POWER and limited-set geometries are fixed
    /// properties of the modelled hardware.
    pub fn build(self, cfg: &HtmConfig) -> Box<dyn HtmBackend> {
        match self {
            BackendKind::Tsx => Box::new(TsxBackend::from_config(cfg)),
            BackendKind::Power => Box::new(PowerBackend::new()),
            BackendKind::Limited => Box::new(LimitedSetBackend::new()),
        }
    }

    /// All backends, for conformance sweeps.
    pub const ALL: [BackendKind; 3] = [BackendKind::Tsx, BackendKind::Power, BackendKind::Limited];
}

/// The published resource geometry of one backend: everything a TM protocol
/// (or the segment planner) needs to plan against the hardware, without
/// knowing which backend it is.
#[derive(Clone, Debug)]
pub struct CapacityModel {
    /// Backend display name.
    pub name: &'static str,
    /// Sets of the written-line model (1 = flat buffer).
    pub write_sets: usize,
    /// Ways of the written-line model.
    pub write_ways: usize,
    /// Flat budget of distinct read lines.
    pub read_lines_max: usize,
    /// Optional set-associative read model (0 = flat budget only).
    pub l2_sets: usize,
    /// Ways of the optional read model.
    pub l2_ways: usize,
    /// Whether [`crate::HtmTx::suspend`]/[`crate::HtmTx::resume`] are legal.
    pub supports_suspend: bool,
    /// Whether [`crate::HtmThread::begin_rot`] (rollback-only transactions)
    /// is legal.
    pub supports_rot: bool,
    /// Lines one transaction may spill to software tracking (0 = overflow
    /// aborts immediately, as on TSX).
    pub spill_budget: usize,
    /// Work units the software overflow handler costs per spilled line.
    pub spill_charge: u64,
    /// Work units (virtual-clock only) one suspend/resume round trip costs.
    pub suspend_cost: u64,
}

impl CapacityModel {
    /// Upper bound of distinct written lines (uniform set distribution).
    pub fn write_lines_max(&self) -> usize {
        self.write_sets * self.write_ways
    }
}

/// Outcome of charging a new line against the capacity model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapOutcome {
    /// The line fits the hardware budget.
    Fits,
    /// The line overflowed hardware but was spilled to software tracking;
    /// the transaction must charge `charge` extra work units (the overflow
    /// handler) and carries on.
    Spilled {
        /// Work units of the software spill handler.
        charge: u64,
    },
    /// The line does not fit: abort with [`crate::AbortCode::Capacity`].
    Overflow,
}

/// Per-transaction capacity state, owned by [`crate::HtmThread`] and operated
/// on by the backend hooks. Reset and reused across transactions.
pub struct TxCap {
    /// Written-line occupancy model.
    pub(crate) l1: L1Model,
    /// Optional read-set associativity model.
    pub(crate) l2: Option<L1Model>,
    /// Distinct lines whose *first* access was a read.
    pub(crate) read_lines: usize,
    /// Flat read budget (== the model's `read_lines_max`).
    pub(crate) read_budget: usize,
    /// Spill budget remaining this transaction.
    pub(crate) spill_left: usize,
    /// Spill budget at transaction start (restored by [`TxCap::reset`]).
    pub(crate) spill_budget: usize,
    /// Lines spilled by this transaction (reads + writes).
    pub(crate) spilled_lines: u64,
}

impl TxCap {
    pub(crate) fn new(
        write_sets: usize,
        write_ways: usize,
        read_budget: usize,
        l2: Option<(usize, usize)>,
        spill_budget: usize,
    ) -> Self {
        Self {
            l1: L1Model::new(write_sets, write_ways),
            l2: l2.map(|(s, w)| L1Model::new(s, w)),
            read_lines: 0,
            read_budget,
            spill_left: spill_budget,
            spill_budget,
            spilled_lines: 0,
        }
    }

    /// Forget all per-transaction state (transaction ended).
    pub(crate) fn reset(&mut self) {
        self.l1.reset();
        if let Some(l2) = self.l2.as_mut() {
            l2.reset();
        }
        self.read_lines = 0;
        self.spill_left = self.spill_budget;
        self.spilled_lines = 0;
    }

    /// Distinct lines whose first access was a read (spilled ones included).
    pub fn read_lines(&self) -> usize {
        self.read_lines
    }

    /// Distinct lines currently charged to the hardware write model.
    pub fn write_lines(&self) -> usize {
        self.l1.written_lines()
    }

    /// Lines spilled to software tracking by the current transaction.
    pub fn spilled_lines(&self) -> u64 {
        self.spilled_lines
    }

    /// Try to spill one line out of software accounting: consume budget and
    /// report the handler charge, or `None` when the budget is dry.
    fn consume_spill(&mut self, charge: u64) -> Option<u64> {
        if self.spill_left == 0 {
            return None;
        }
        self.spill_left -= 1;
        self.spilled_lines += 1;
        Some(charge)
    }
}

/// Capacity policy of one simulated HTM implementation.
///
/// Backends are stateless and shared (`Send + Sync`): all per-transaction
/// state lives in the [`TxCap`] the hooks receive. The default hook bodies
/// implement the standard abort-on-overflow policy; [`LimitedSetBackend`]
/// overrides them with the spill path.
pub trait HtmBackend: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The published resource geometry.
    fn capacity(&self) -> &CapacityModel;

    /// A transaction registered a **new** read line. `cap.read_lines` has
    /// already been incremented (matching the legacy accounting order).
    fn on_read_line(&self, cap: &mut TxCap, line: Line) -> CapOutcome {
        if cap.read_lines > cap.read_budget {
            return CapOutcome::Overflow;
        }
        if let Some(l2) = cap.l2.as_mut() {
            if !l2.insert_line(line) {
                return CapOutcome::Overflow;
            }
        }
        CapOutcome::Fits
    }

    /// A transaction registered a **new** written line (or upgraded a read
    /// line to written).
    fn on_write_line(&self, cap: &mut TxCap, line: Line) -> CapOutcome {
        if cap.l1.insert_written_line(line) {
            CapOutcome::Fits
        } else {
            CapOutcome::Overflow
        }
    }
}

/// The TSX/Haswell model behind the trait: geometry straight from
/// [`HtmConfig`], standard abort-on-overflow hooks, no suspend, no ROT.
pub struct TsxBackend {
    model: CapacityModel,
}

impl TsxBackend {
    /// Mirror `cfg`'s geometry, so the trait-routed path is bit-exact with
    /// the legacy inline path under the same configuration.
    pub fn from_config(cfg: &HtmConfig) -> Self {
        Self {
            model: CapacityModel {
                name: "tsx",
                write_sets: cfg.l1_sets,
                write_ways: cfg.l1_ways,
                read_lines_max: cfg.read_lines_max,
                l2_sets: cfg.l2_sets,
                l2_ways: cfg.l2_ways,
                supports_suspend: false,
                supports_rot: false,
                spill_budget: 0,
                spill_charge: 0,
                suspend_cost: 0,
            },
        }
    }
}

impl HtmBackend for TsxBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Tsx
    }
    fn capacity(&self) -> &CapacityModel {
        &self.model
    }
}

/// POWER8 write-set entries: the TM store queue holds 64 cache lines,
/// flat (no set conflicts).
pub const POWER_WRITE_LINES: usize = 64;
/// POWER8 read-set budget in lines (~8 KB of read tracking).
pub const POWER_READ_LINES: usize = 128;
/// Virtual-clock cost of one suspend/resume round trip (tsuspend./tresume.
/// plus the pipeline drain they imply).
pub const POWER_SUSPEND_COST: u64 = 8;

/// The IBM POWER8-style model: tiny flat write set, suspend/resume regions,
/// rollback-only transactions. Overflow aborts (no software spill); the
/// capacity-*stretching* escape hatch is [`crate::HtmTx::read_stretched`] and
/// [`crate::HtmTx::suspended_work`], which trade per-access suspend overhead
/// for exemption from the read budget and the timer quantum.
pub struct PowerBackend {
    model: CapacityModel,
}

impl PowerBackend {
    /// The fixed POWER8 geometry.
    pub fn new() -> Self {
        Self {
            model: CapacityModel {
                name: "power",
                write_sets: 1,
                write_ways: POWER_WRITE_LINES,
                read_lines_max: POWER_READ_LINES,
                l2_sets: 0,
                l2_ways: 0,
                supports_suspend: true,
                supports_rot: true,
                spill_budget: 0,
                spill_charge: 0,
                suspend_cost: POWER_SUSPEND_COST,
            },
        }
    }
}

impl Default for PowerBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl HtmBackend for PowerBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Power
    }
    fn capacity(&self) -> &CapacityModel {
        &self.model
    }
}

/// Limited-set hardware write budget: 4 sets x 4 ways = 16 lines.
pub const LIMITED_WRITE_SETS: usize = 4;
/// Ways of the limited-set write model.
pub const LIMITED_WRITE_WAYS: usize = 4;
/// Limited-set flat hardware read budget.
pub const LIMITED_READ_LINES: usize = 64;
/// Lines one transaction may overflow into the software structure.
pub const LIMITED_SPILL_BUDGET: usize = 256;
/// Work units the software overflow handler costs per spilled line.
pub const LIMITED_SPILL_CHARGE: u64 = 8;

/// The FORTH-style limited read/write-set model: hardware budgets far below
/// TSX, but an overflowing line moves to a software-managed tracking
/// structure (costing [`LIMITED_SPILL_CHARGE`] work units) instead of
/// aborting, up to [`LIMITED_SPILL_BUDGET`] lines per transaction. The
/// spilled line *stays registered in the conflict table* — only the capacity
/// accounting moves to software — so isolation is untouched.
pub struct LimitedSetBackend {
    model: CapacityModel,
}

impl LimitedSetBackend {
    /// The fixed limited-set geometry.
    pub fn new() -> Self {
        Self {
            model: CapacityModel {
                name: "limited",
                write_sets: LIMITED_WRITE_SETS,
                write_ways: LIMITED_WRITE_WAYS,
                read_lines_max: LIMITED_READ_LINES,
                l2_sets: 0,
                l2_ways: 0,
                supports_suspend: false,
                supports_rot: false,
                spill_budget: LIMITED_SPILL_BUDGET,
                spill_charge: LIMITED_SPILL_CHARGE,
                suspend_cost: 0,
            },
        }
    }
}

impl Default for LimitedSetBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl HtmBackend for LimitedSetBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Limited
    }
    fn capacity(&self) -> &CapacityModel {
        &self.model
    }

    fn on_read_line(&self, cap: &mut TxCap, _line: Line) -> CapOutcome {
        if cap.read_lines <= cap.read_budget {
            return CapOutcome::Fits;
        }
        match cap.consume_spill(self.model.spill_charge) {
            Some(charge) => CapOutcome::Spilled { charge },
            None => CapOutcome::Overflow,
        }
    }

    fn on_write_line(&self, cap: &mut TxCap, line: Line) -> CapOutcome {
        if cap.l1.insert_written_line(line) {
            return CapOutcome::Fits;
        }
        match cap.consume_spill(self.model.spill_charge) {
            Some(charge) => CapOutcome::Spilled { charge },
            None => CapOutcome::Overflow,
        }
    }
}

/// Cumulative per-thread counters for the backend-specific escape hatches
/// (suspend/resume regions, software spills, rollback-only transactions).
///
/// Deliberately **not** part of [`crate::HtmStats`]: that struct is pinned to
/// exactly one cache line (8 x u64) and cannot grow. These counters are cold
/// (bumped only on backend-specific slow paths), so a plain unpadded struct
/// on the thread handle is the right home.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StretchStats {
    /// Suspended regions entered.
    pub suspends: u64,
    /// Suspended regions exited.
    pub resumes: u64,
    /// Non-transactional loads performed while suspended.
    pub suspended_reads: u64,
    /// Work units executed in suspended mode (quantum- and interrupt-immune).
    pub suspended_work: u64,
    /// Stretched reads: conflict-tracked loads exempted from the read budget.
    pub stretched_reads: u64,
    /// Lines spilled to software capacity tracking (limited-set backend).
    pub spilled_lines: u64,
    /// Rollback-only transactions started.
    pub rot_begins: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in BackendKind::ALL {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("sparc"), None);
    }

    #[test]
    fn tsx_mirrors_config() {
        let cfg = HtmConfig::default();
        let be = BackendKind::Tsx.build(&cfg);
        let m = be.capacity();
        assert_eq!(m.write_lines_max(), cfg.l1_lines());
        assert_eq!(m.read_lines_max, cfg.read_lines_max);
        assert!(!m.supports_suspend && !m.supports_rot);
        assert_eq!(m.spill_budget, 0);
    }

    #[test]
    fn power_geometry() {
        let m = PowerBackend::new();
        let m = m.capacity();
        assert_eq!(m.write_lines_max(), POWER_WRITE_LINES);
        assert!(m.supports_suspend && m.supports_rot);
    }

    #[test]
    fn limited_spills_then_overflows() {
        let be = LimitedSetBackend::new();
        let m = be.capacity().clone();
        let mut cap = TxCap::new(
            m.write_sets,
            m.write_ways,
            m.read_lines_max,
            None,
            m.spill_budget,
        );
        // Fill the hardware write budget: all Fits.
        let mut line = 0u32;
        for _ in 0..m.write_lines_max() {
            assert_eq!(be.on_write_line(&mut cap, line), CapOutcome::Fits);
            line += 1;
        }
        // The next `spill_budget` lines spill at the handler charge.
        for _ in 0..m.spill_budget {
            assert_eq!(
                be.on_write_line(&mut cap, line),
                CapOutcome::Spilled {
                    charge: m.spill_charge
                }
            );
            line += 1;
        }
        assert_eq!(cap.spilled_lines(), m.spill_budget as u64);
        // Budget dry: overflow.
        assert_eq!(be.on_write_line(&mut cap, line), CapOutcome::Overflow);
        // Reset restores the spill budget.
        cap.reset();
        assert_eq!(cap.spill_left, m.spill_budget);
        assert_eq!(cap.spilled_lines(), 0);
    }

    #[test]
    fn tsx_hooks_match_legacy_order() {
        // Trait-routed TSX must check the flat budget before the l2 model,
        // after the caller already incremented read_lines — same order as the
        // legacy inline path.
        let cfg = HtmConfig {
            read_lines_max: 2,
            l2_sets: 2,
            l2_ways: 1,
            ..HtmConfig::tiny()
        };
        let be = TsxBackend::from_config(&cfg);
        let mut cap = TxCap::new(4, 2, 2, Some((2, 1)), 0);
        cap.read_lines = 1;
        assert_eq!(be.on_read_line(&mut cap, 0), CapOutcome::Fits);
        cap.read_lines = 2;
        // Line 2 maps to l2 set 0, already holding line 0: l2 overflow.
        assert_eq!(be.on_read_line(&mut cap, 2), CapOutcome::Overflow);
        cap.read_lines = 3;
        // Flat budget exceeded regardless of l2.
        assert_eq!(be.on_read_line(&mut cap, 1), CapOutcome::Overflow);
    }
}
