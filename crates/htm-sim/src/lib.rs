//! # htm-sim — a best-effort hardware transactional memory simulator
//!
//! This crate is the hardware substrate of the Part-HTM reproduction. It models the
//! contract of Intel TSX Restricted Transactional Memory (RTM) as described in §2 of
//! the paper, without requiring TSX-capable silicon:
//!
//! * **Word-addressable shared heap** ([`heap::Heap`]): all transactional state — the
//!   application's data *and* the TM protocol's metadata — lives in one array of
//!   64-bit words. An address ([`Addr`]) is a word index; a cache line is
//!   [`WORDS_PER_LINE`] consecutive words (64 bytes).
//! * **Eager, line-granular conflict detection** ([`line_table::LineTable`]):
//!   requester-wins semantics mirroring MESI invalidation, implemented lock-free as
//!   one packed `AtomicU64` per line (56-bit reader bitmap + writer byte, CAS
//!   updates). A transactional or non-transactional access that conflicts with an
//!   active hardware transaction *dooms* that transaction; the victim observes the
//!   doom at its next operation or at commit. This also provides TSX's *strong
//!   atomicity*.
//! * **Capacity limits** ([`cache::L1Model`]): written lines must fit a simulated
//!   set-associative L1 data cache (default 64 sets x 8 ways = 32 KB); evictions of
//!   written lines abort with [`AbortCode::Capacity`]. Read lines have a separate,
//!   larger budget, reflecting TSX's ability to track evicted read-set lines beyond L1.
//! * **Time limits**: every transactional operation costs virtual *work units*;
//!   reaching the configured quantum aborts with [`AbortCode::Timer`], modelling the
//!   timer interrupt that bounds how long a hardware transaction can run.
//! * **Virtual time** ([`vclock`]): an optional discrete-event multi-core clock.
//!   When threads attach to a [`vclock::VClock`], the same work-unit accounting
//!   becomes a global virtual timeline: cores advance deterministically in
//!   timestamp order, spin loops yield virtual time instead of host time, and
//!   ties between cores are seeded, recordable, and replayable schedule
//!   decisions — the substrate for the `schedx` schedule explorer.
//! * **Explicit aborts**: [`txn::HtmTx::xabort`] mirrors `_xabort(code)`.
//!
//! The simulator is *logically* faithful: which transactions commit, which abort, and
//! why, follows the TSX contract. It makes no claim about absolute nanoseconds.
//!
//! ## Quick example
//!
//! ```
//! use htm_sim::{HtmConfig, HtmSystem, AbortCode};
//!
//! let sys = HtmSystem::new(HtmConfig::default(), 1024);
//! let mut thread = sys.thread(0);
//!
//! // A hardware transaction that increments word 0.
//! let mut tx = thread.begin();
//! let r = (|| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)?;
//!     Ok::<(), AbortCode>(())
//! })();
//! assert!(r.is_ok());
//! tx.commit().unwrap();
//! assert_eq!(sys.nt_read(0), 1);
//! ```

pub mod abort;
pub mod align;
pub mod backend;
pub mod cache;
pub mod config;
pub mod heap;
pub mod line_table;
pub mod line_table_ref;
pub mod registry;
pub mod stats;
pub mod system;
pub mod trace;
pub mod txn;
pub mod util;
pub mod vclock;

pub use abort::AbortCode;
pub use align::{CacheAligned, CACHE_LINE};
pub use backend::{BackendKind, CapacityModel, HtmBackend, StretchStats};
pub use config::HtmConfig;
pub use heap::{Addr, Heap, HeapBuilder, Line, WORDS_PER_LINE, WORDS_PER_LINE_SHIFT};
pub use stats::HtmStats;
pub use system::{HtmSystem, HtmThread};
pub use txn::HtmTx;
pub use vclock::{SchedPolicy, SchedSpec, VClock, VReport};

/// Convert a word address to the cache line that holds it.
#[inline(always)]
pub fn line_of(addr: Addr) -> Line {
    addr >> WORDS_PER_LINE_SHIFT
}
