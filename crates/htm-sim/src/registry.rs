//! Per-thread hardware-transaction status records.
//!
//! Conflict resolution is *requester wins*, mirroring how a cache-coherence
//! invalidation aborts the transaction that held the line: the thread performing the
//! conflicting access CASes the victim's status from `Active` to `Doomed`. A victim
//! that has already reached `Committing` can no longer be doomed — the requester
//! briefly waits for it to finish publishing, which models the coherence stall of
//! racing with an instantaneous `xend`.

use crate::abort::AbortCode;
use crate::align::CacheAligned;
use std::sync::atomic::{AtomicU8, Ordering};

/// Hard ceiling on simulated hardware threads.
///
/// The conflict table packs each line's ownership into a single `AtomicU64`:
/// a 56-bit reader bitmap plus an 8-bit writer byte (see [`crate::line_table`]),
/// so thread ids must fit in 56 bitmap positions. Asserted here and in
/// [`crate::HtmConfig::validate`].
pub const MAX_THREADS: usize = 56;

/// Thread identifier. Bounded by the configured `max_threads` (<= [`MAX_THREADS`]).
pub type ThreadId = u8;

/// Identity of the agent performing a conflicting access.
///
/// Conflict-table operations need to know *who* is requesting an access, both to
/// skip self-conflicts and to sanity-check that no thread dooms itself. Strongly
/// atomic non-transactional accesses can also originate outside the simulated
/// machine (verification code, harness checksums); those use [`Requester::External`]
/// rather than a reserved fake thread id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Requester {
    /// A registered simulator thread (id < configured `max_threads`).
    Thread(ThreadId),
    /// An agent outside the simulated machine; never owns table entries and can
    /// never collide with a victim's id.
    External,
}

/// Status of a thread's current hardware transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TxStatus {
    /// No hardware transaction in flight.
    Inactive = 0,
    /// Transaction executing; may be doomed by conflicting accesses.
    Active = 1,
    /// Transaction passed the point of no return and is publishing its write buffer.
    Committing = 2,
    /// A conflicting access invalidated this transaction; it will abort at its next
    /// operation (or at commit).
    Doomed = 3,
}

impl TxStatus {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => TxStatus::Inactive,
            1 => TxStatus::Active,
            2 => TxStatus::Committing,
            3 => TxStatus::Doomed,
            _ => unreachable!("invalid TxStatus {v}"),
        }
    }
}

/// One cache line per thread to avoid false sharing between status words:
/// every CAS on one thread's status would otherwise invalidate its
/// neighbours' lines on every doom/begin/finish. [`CacheAligned`] pads the
/// one-byte status to a full line (the `membench` false-sharing A/B measures
/// what the packed layout would cost).
type TxSlot = CacheAligned<AtomicU8>;

fn new_slot() -> TxSlot {
    CacheAligned::new(AtomicU8::new(TxStatus::Inactive as u8))
}

/// Outcome of an attempt to doom a peer transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DoomOutcome {
    /// Peer was active and is now doomed (or was already doomed): requester proceeds.
    Doomed,
    /// Peer is committing and cannot be doomed: requester must wait for it to finish
    /// and retry the access.
    MustWait,
    /// Peer had no transaction in flight (stale entry): requester proceeds.
    Gone,
}

/// Registry of every thread's transaction status.
pub struct TxRegistry {
    slots: Box<[TxSlot]>,
}

impl TxRegistry {
    /// Create a registry for `max_threads` hardware threads.
    pub fn new(max_threads: usize) -> Self {
        assert!(
            (1..=MAX_THREADS).contains(&max_threads),
            "max_threads must be in 1..={MAX_THREADS} (packed line-table reader bitmap)"
        );
        let mut v = Vec::with_capacity(max_threads);
        v.resize_with(max_threads, new_slot);
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// Number of thread slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the registry has no slots (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current status of `t`'s transaction.
    #[inline]
    pub fn status(&self, t: ThreadId) -> TxStatus {
        TxStatus::from_u8(self.slots[t as usize].load(Ordering::SeqCst))
    }

    /// Begin a transaction on thread `t`. Panics if one is already in flight —
    /// the simulator flattens nesting at a higher level, like TSX does.
    pub fn begin(&self, t: ThreadId) {
        let prev = self.slots[t as usize].swap(TxStatus::Active as u8, Ordering::SeqCst);
        debug_assert_eq!(
            prev,
            TxStatus::Inactive as u8,
            "nested hardware begin on thread {t}"
        );
    }

    /// Try to move `t` from `Active` to `Committing`. Fails (returning the doom
    /// cause) if the transaction was doomed first.
    pub fn start_commit(&self, t: ThreadId) -> Result<(), AbortCode> {
        match self.slots[t as usize].compare_exchange(
            TxStatus::Active as u8,
            TxStatus::Committing as u8,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(()),
            Err(_) => Err(AbortCode::Conflict),
        }
    }

    /// Finish `t`'s transaction (after commit publication or abort cleanup).
    pub fn finish(&self, t: ThreadId) {
        self.slots[t as usize].store(TxStatus::Inactive as u8, Ordering::SeqCst);
    }

    /// True if `t`'s transaction has been doomed by a conflicting access.
    #[inline]
    pub fn is_doomed(&self, t: ThreadId) -> bool {
        self.status(t) == TxStatus::Doomed
    }

    /// Requester-wins conflict resolution: `requester` dooms thread `victim`.
    ///
    /// Callers identify `victim` from a lock-free snapshot of a conflict-table
    /// word, so by the time the CAS below lands, `victim` may have finished that
    /// transaction and begun another: the doom then hits the *next* incarnation.
    /// Such spurious dooms are semantically sound — best-effort HTM may abort any
    /// transaction at any time for any reason — and are vanishingly rare (the
    /// victim must roll back, clear its table entries, and restart inside the
    /// requester's read-doom-CAS window). Lost dooms cannot happen: the table
    /// word CAS fails if ownership changed, and the requester re-inspects.
    pub fn doom(&self, victim: ThreadId, requester: Requester) -> DoomOutcome {
        debug_assert_ne!(
            Requester::Thread(victim),
            requester,
            "self-doom is a logic error"
        );
        let slot = &self.slots[victim as usize];
        loop {
            let cur = slot.load(Ordering::SeqCst);
            match TxStatus::from_u8(cur) {
                TxStatus::Active => {
                    if slot
                        .compare_exchange(
                            cur,
                            TxStatus::Doomed as u8,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return DoomOutcome::Doomed;
                    }
                    // Lost a race with the victim's own transition; re-inspect.
                }
                TxStatus::Doomed => return DoomOutcome::Doomed,
                TxStatus::Committing => return DoomOutcome::MustWait,
                TxStatus::Inactive => return DoomOutcome::Gone,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let r = TxRegistry::new(4);
        assert_eq!(r.status(0), TxStatus::Inactive);
        r.begin(0);
        assert_eq!(r.status(0), TxStatus::Active);
        r.start_commit(0).unwrap();
        assert_eq!(r.status(0), TxStatus::Committing);
        r.finish(0);
        assert_eq!(r.status(0), TxStatus::Inactive);
    }

    #[test]
    fn doom_active_peer() {
        let r = TxRegistry::new(4);
        r.begin(1);
        assert_eq!(r.doom(1, Requester::Thread(0)), DoomOutcome::Doomed);
        assert!(r.is_doomed(1));
        // Doomed transactions cannot start committing.
        assert!(r.start_commit(1).is_err());
        r.finish(1);
    }

    #[test]
    fn committing_peer_forces_wait() {
        let r = TxRegistry::new(4);
        r.begin(1);
        r.start_commit(1).unwrap();
        assert_eq!(r.doom(1, Requester::Thread(0)), DoomOutcome::MustWait);
        r.finish(1);
        assert_eq!(r.doom(1, Requester::Thread(0)), DoomOutcome::Gone);
    }

    #[test]
    fn doom_idempotent() {
        let r = TxRegistry::new(4);
        r.begin(1);
        assert_eq!(r.doom(1, Requester::Thread(0)), DoomOutcome::Doomed);
        assert_eq!(r.doom(1, Requester::Thread(2)), DoomOutcome::Doomed);
        r.finish(1);
    }

    #[test]
    fn slot_is_cache_line_sized() {
        assert_eq!(std::mem::size_of::<TxSlot>(), 64);
        assert_eq!(std::mem::align_of::<TxSlot>(), 64);
    }
}
