//! Per-thread hardware-transaction statistics.
//!
//! These counters feed the abort-breakdown reporting of Table 1 in the paper
//! (% of aborts by {conflict, capacity, explicit, other}); the paper's "other"
//! bucket is kept as two counters here — deterministic timer exhaustion vs
//! randomly injected interrupts — because the two feed different retry policies
//! (see [`AbortCode::is_resource_failure`]).

use crate::abort::AbortCode;

/// Plain per-thread counters; merged across threads by the harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HtmStats {
    /// Hardware transactions begun.
    pub begins: u64,
    /// Hardware transactions committed.
    pub commits: u64,
    /// Aborts caused by data conflicts (including strong-atomicity invalidations).
    pub aborts_conflict: u64,
    /// Aborts caused by write-set capacity or read-set budget exhaustion.
    pub aborts_capacity: u64,
    /// Explicit `xabort` calls.
    pub aborts_explicit: u64,
    /// Timer aborts: cumulative work reached the quantum (deterministic).
    pub aborts_timer: u64,
    /// Randomly injected asynchronous interrupts (transient).
    pub aborts_interrupt: u64,
    /// Total virtual work units consumed inside hardware transactions.
    pub work_units: u64,
}

// Layout pin: the whole counter block fits one cache line, so the padded
// per-thread copy ([`crate::CacheAligned<HtmStats>`]) is exactly one line and
// adding a counter that grows it past 64 bytes fails the build here first.
// (8 x u64 = exactly 64 bytes — the line is now full.)
const _: () = {
    assert!(std::mem::size_of::<HtmStats>() <= crate::align::CACHE_LINE);
    assert!(
        std::mem::size_of::<crate::align::CacheAligned<HtmStats>>() == crate::align::CACHE_LINE
    );
};

impl HtmStats {
    /// Record an abort with the given cause.
    #[inline]
    pub fn record_abort(&mut self, code: AbortCode) {
        match code {
            AbortCode::Conflict => self.aborts_conflict += 1,
            AbortCode::Capacity => self.aborts_capacity += 1,
            AbortCode::Explicit(_) => self.aborts_explicit += 1,
            AbortCode::Timer => self.aborts_timer += 1,
            AbortCode::Interrupt => self.aborts_interrupt += 1,
        }
    }

    /// The paper's "other" abort bucket: timer + injected interrupts.
    #[inline]
    pub fn aborts_other(&self) -> u64 {
        self.aborts_timer + self.aborts_interrupt
    }

    /// Total aborts across all causes.
    pub fn aborts_total(&self) -> u64 {
        self.aborts_conflict
            + self.aborts_capacity
            + self.aborts_explicit
            + self.aborts_timer
            + self.aborts_interrupt
    }

    /// Merge another thread's counters into this one.
    pub fn merge(&mut self, other: &HtmStats) {
        self.begins += other.begins;
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_capacity += other.aborts_capacity;
        self.aborts_explicit += other.aborts_explicit;
        self.aborts_timer += other.aborts_timer;
        self.aborts_interrupt += other.aborts_interrupt;
        self.work_units += other.work_units;
    }

    /// Percentage of aborts attributable to `code` (0.0 when there are no aborts).
    pub fn abort_pct(&self, code: AbortCode) -> f64 {
        let total = self.aborts_total();
        if total == 0 {
            return 0.0;
        }
        let n = match code {
            AbortCode::Conflict => self.aborts_conflict,
            AbortCode::Capacity => self.aborts_capacity,
            AbortCode::Explicit(_) => self.aborts_explicit,
            AbortCode::Timer => self.aborts_timer,
            AbortCode::Interrupt => self.aborts_interrupt,
        };
        n as f64 * 100.0 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = HtmStats::default();
        s.record_abort(AbortCode::Conflict);
        s.record_abort(AbortCode::Capacity);
        s.record_abort(AbortCode::Capacity);
        s.record_abort(AbortCode::Explicit(9));
        s.record_abort(AbortCode::Timer);
        s.record_abort(AbortCode::Interrupt);
        assert_eq!(s.aborts_total(), 6);
        assert_eq!(s.aborts_capacity, 2);
        assert_eq!(s.aborts_timer, 1);
        assert_eq!(s.aborts_interrupt, 1);
        assert_eq!(s.aborts_other(), 2);
        assert!((s.abort_pct(AbortCode::Capacity) - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = HtmStats {
            begins: 2,
            commits: 1,
            aborts_timer: 1,
            ..Default::default()
        };
        let b = HtmStats {
            begins: 3,
            commits: 2,
            aborts_conflict: 4,
            aborts_interrupt: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.begins, 5);
        assert_eq!(a.commits, 3);
        assert_eq!(a.aborts_conflict, 4);
        assert_eq!(a.aborts_timer, 1);
        assert_eq!(a.aborts_interrupt, 2);
    }

    #[test]
    fn pct_of_empty_is_zero() {
        let s = HtmStats::default();
        assert_eq!(s.abort_pct(AbortCode::Conflict), 0.0);
    }
}
