//! Set-associative transactional-capacity models.
//!
//! TSX buffers transactional writes in the L1 data cache: evicting a written line
//! aborts the transaction (§2 of the paper). We model the L1 as `sets x ways`; a
//! transaction may hold at most `ways` distinct *written* lines per set. Reads have
//! either a flat budget (TSX tracks read lines beyond L1 in a "specialized buffer")
//! or, optionally, a second set-associative model standing in for the L2
//! ([`crate::HtmConfig::l2_sets`]); the same [`L1Model`] machinery serves both.

use crate::heap::Line;

/// Tracks the written-line occupancy of the simulated L1 for one transaction.
///
/// Reset and reused across transactions to avoid per-begin allocation.
pub struct L1Model {
    sets_mask: u32,
    ways: u8,
    occupancy: Box<[u8]>,
    /// Sets touched this transaction, for O(touched) reset.
    touched: Vec<u32>,
    /// Lines currently tracked (kept as a counter so [`L1Model::forget_line`]
    /// stays O(1); always equals the sum of `occupancy`).
    live: u32,
}

impl L1Model {
    /// Create a model with `sets` sets (power of two) and `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two());
        assert!(ways >= 1 && ways <= u8::MAX as usize);
        Self {
            sets_mask: (sets - 1) as u32,
            ways: ways as u8,
            occupancy: vec![0u8; sets].into_boxed_slice(),
            touched: Vec::with_capacity(64),
            live: 0,
        }
    }

    /// Record that `line` (not previously tracked by this transaction) enters the
    /// modelled cache. Returns `false` if the set overflows — a capacity abort.
    #[inline]
    pub fn insert_line(&mut self, line: Line) -> bool {
        let set = (line & self.sets_mask) as usize;
        let occ = &mut self.occupancy[set];
        if *occ == self.ways {
            return false;
        }
        if *occ == 0 {
            self.touched.push(set as u32);
        }
        *occ += 1;
        self.live += 1;
        true
    }

    /// Remove one previously inserted line from the modelled cache without
    /// ending the transaction — the software-spill primitive: the line's
    /// conflict-table registration is untouched (isolation is unaffected),
    /// only its capacity slot is released. Returns `false` if the line's set
    /// holds nothing to forget.
    #[inline]
    pub fn forget_line(&mut self, line: Line) -> bool {
        let set = (line & self.sets_mask) as usize;
        let occ = &mut self.occupancy[set];
        if *occ == 0 {
            return false;
        }
        *occ -= 1;
        self.live -= 1;
        true
    }

    /// Forget all occupancy (transaction ended).
    pub fn reset(&mut self) {
        for &s in &self.touched {
            self.occupancy[s as usize] = 0;
        }
        self.touched.clear();
        self.live = 0;
    }

    /// Record a written line (alias of [`L1Model::insert_line`], named for the
    /// write-capacity call sites).
    #[inline]
    pub fn insert_written_line(&mut self, line: Line) -> bool {
        self.insert_line(line)
    }

    /// Number of lines currently tracked.
    pub fn written_lines(&self) -> usize {
        self.live as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_ways() {
        let mut l1 = L1Model::new(4, 2);
        // Lines 0,4,8 all map to set 0 with 4 sets.
        assert!(l1.insert_written_line(0));
        assert!(l1.insert_written_line(4));
        assert!(
            !l1.insert_written_line(8),
            "third line in a 2-way set must evict"
        );
    }

    #[test]
    fn distinct_sets_independent() {
        let mut l1 = L1Model::new(4, 1);
        assert!(l1.insert_written_line(0));
        assert!(l1.insert_written_line(1));
        assert!(l1.insert_written_line(2));
        assert!(l1.insert_written_line(3));
        assert!(!l1.insert_written_line(4)); // set 0 full again
        assert_eq!(l1.written_lines(), 4);
    }

    #[test]
    fn reset_clears_occupancy() {
        let mut l1 = L1Model::new(4, 1);
        assert!(l1.insert_written_line(0));
        assert!(!l1.insert_written_line(4));
        l1.reset();
        assert!(l1.insert_written_line(4));
        assert_eq!(l1.written_lines(), 1);
    }

    #[test]
    fn forget_line_frees_a_way() {
        let mut l1 = L1Model::new(4, 2);
        assert!(l1.insert_written_line(0));
        assert!(l1.insert_written_line(4));
        assert!(!l1.insert_written_line(8), "set 0 full");
        assert!(l1.forget_line(0), "spill one line out of set 0");
        assert_eq!(l1.written_lines(), 1);
        assert!(l1.insert_written_line(8), "freed way is reusable");
        assert_eq!(l1.written_lines(), 2);
        l1.reset();
        assert_eq!(l1.written_lines(), 0);
        assert!(!l1.forget_line(0), "nothing tracked after reset");
    }

    #[test]
    fn haswell_geometry_holds_full_l1() {
        let mut l1 = L1Model::new(64, 8);
        for line in 0..512u32 {
            assert!(l1.insert_written_line(line), "line {line} should fit");
        }
        assert!(!l1.insert_written_line(512));
    }
}
