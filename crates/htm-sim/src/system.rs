//! The simulated machine: heap + conflict table + transaction registry, and the
//! per-thread handle from which hardware transactions are started.

use crate::abort::AbortCode;
use crate::backend::{CapacityModel, HtmBackend, StretchStats, TxCap};
use crate::config::HtmConfig;
use crate::heap::{Addr, Heap, Line};
use crate::line_table::LineTable;
use crate::registry::{Requester, ThreadId, TxRegistry};
use crate::stats::HtmStats;
use crate::txn::HtmTx;
use crate::util::FastMap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-line access state of the current transaction, epoch-tagged so that beginning
/// a new transaction invalidates the whole array in O(1). Direct indexing keeps the
/// simulator's hot path (is this line already in my read/write set?) at the cost of
/// an array access — modelling the fact that on real hardware this check is free.
#[derive(Clone, Copy, Default)]
pub(crate) struct LineState {
    pub(crate) epoch: u32,
    pub(crate) flags: u8,
}

/// Line is registered in the read set.
pub(crate) const LINE_READ: u8 = 1;
/// Line is registered in the write set.
pub(crate) const LINE_WRITTEN: u8 = 2;

/// A simulated machine with best-effort HTM.
///
/// Create one per experiment, carve its heap with [`crate::HeapBuilder`], hand one
/// [`HtmThread`] to each OS thread (via [`HtmSystem::thread`]), and run.
pub struct HtmSystem {
    pub(crate) heap: Heap,
    pub(crate) table: LineTable,
    pub(crate) registry: TxRegistry,
    pub(crate) config: HtmConfig,
    /// Capacity-model backend (see [`crate::backend`]); `None` keeps the
    /// legacy inline TSX path.
    pub(crate) backend: Option<Box<dyn HtmBackend>>,
}

impl HtmSystem {
    /// Build a machine with the given HTM geometry and a heap of `heap_words` words.
    pub fn new(config: HtmConfig, heap_words: usize) -> Self {
        config.validate();
        let backend = config.backend.map(|k| k.build(&config));
        Self {
            heap: Heap::new(heap_words),
            table: LineTable::new(heap_words.div_ceil(crate::heap::WORDS_PER_LINE)),
            registry: TxRegistry::new(config.max_threads),
            config,
            backend,
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// The configured backend, if any (`None` = legacy inline TSX path).
    pub fn backend(&self) -> Option<&dyn HtmBackend> {
        self.backend.as_deref()
    }

    /// The machine's published capacity geometry — from the backend when one
    /// is configured, otherwise synthesized from the legacy [`HtmConfig`]
    /// fields. TM protocols and the segment planner plan against this rather
    /// than poking at `l1_sets`/`l1_ways` directly.
    pub fn capacity_model(&self) -> CapacityModel {
        match self.backend.as_deref() {
            Some(be) => be.capacity().clone(),
            None => CapacityModel {
                name: "tsx",
                write_sets: self.config.l1_sets,
                write_ways: self.config.l1_ways,
                read_lines_max: self.config.read_lines_max,
                l2_sets: self.config.l2_sets,
                l2_ways: self.config.l2_ways,
                supports_suspend: false,
                supports_rot: false,
                spill_budget: 0,
                spill_charge: 0,
                suspend_cost: 0,
            },
        }
    }

    /// Direct access to the heap (raw, non-conflict-checked operations).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Create the handle for hardware thread `id`. Each id must be used by at most
    /// one OS thread at a time.
    pub fn thread(&self, id: usize) -> HtmThread<'_> {
        assert!(
            id < self.config.max_threads,
            "thread id {id} >= max_threads"
        );
        let n_lines = self.heap.len().div_ceil(crate::heap::WORDS_PER_LINE);
        let m = self.capacity_model();
        let cap = TxCap::new(
            m.write_sets,
            m.write_ways,
            m.read_lines_max,
            (m.l2_sets > 0).then_some((m.l2_sets, m.l2_ways)),
            m.spill_budget,
        );
        HtmThread {
            sys: self,
            id: id as ThreadId,
            wbuf: FastMap::default(),
            lstate: vec![LineState::default(); n_lines].into_boxed_slice(),
            epoch: 0,
            touched: Vec::with_capacity(64),
            cap,
            rng: SmallRng::seed_from_u64(0x5EED_0000 + id as u64),
            stats: crate::align::CacheAligned::new(HtmStats::default()),
            stretch: StretchStats::default(),
            trace: crate::trace::Trace::new(self.config.trace_capacity),
            in_tx: false,
        }
    }

    fn nt_op<R>(
        &self,
        line: Line,
        is_write: bool,
        by: Requester,
        mut op: impl FnMut() -> R,
    ) -> R {
        // A non-transactional access is one simulated memory operation: under a
        // virtual clock it advances this core's timestamp (no-op otherwise), so
        // protocol software that polls simulated memory makes virtual progress
        // and the discrete-event scheduler stays livelock-free.
        crate::vclock::charge(1);
        let mut backoff = crate::util::Backoff::new();
        loop {
            match self
                .table
                .nt_execute(&self.registry, line, is_write, by, &mut op)
            {
                Ok(r) => return r,
                // A committer or claim holder finishes quickly; spin briefly,
                // then yield so it gets scheduled on an oversubscribed machine.
                Err(()) => backoff.snooze(),
            }
        }
    }

    /// Strongly atomic non-transactional read (anonymous accessor, e.g. verification
    /// code). Dooms a hardware transaction that wrote `addr`'s line.
    pub fn nt_read(&self, addr: Addr) -> u64 {
        self.nt_op(crate::line_of(addr), false, Requester::External, || {
            self.heap.load(addr)
        })
    }

    /// Strongly atomic non-transactional write (anonymous accessor).
    pub fn nt_write(&self, addr: Addr, val: u64) {
        self.nt_op(crate::line_of(addr), true, Requester::External, || {
            self.heap.store(addr, val)
        })
    }

    /// Strongly atomic non-transactional read performed by simulator thread `t`
    /// (software code of a TM protocol running between hardware transactions).
    pub fn nt_read_by(&self, t: ThreadId, addr: Addr) -> u64 {
        self.nt_op(crate::line_of(addr), false, Requester::Thread(t), || {
            self.heap.load(addr)
        })
    }

    /// Strongly atomic non-transactional write by thread `t`.
    pub fn nt_write_by(&self, t: ThreadId, addr: Addr, val: u64) {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.store(addr, val)
        })
    }

    /// Strongly atomic non-transactional multi-word store by thread `t`. Every
    /// `(addr, value)` pair must fall in a single cache line; all stores are
    /// performed under one conflict resolution, so the whole group costs one
    /// simulated memory access — exactly how a masked cache-line store behaves
    /// on real hardware, which claims the line once rather than once per word.
    ///
    /// # Panics
    ///
    /// Debug builds assert that the addresses share a line.
    pub fn nt_write_line_by(&self, t: ThreadId, writes: &[(Addr, u64)]) {
        let Some(&(first, _)) = writes.first() else {
            return;
        };
        let line = crate::line_of(first);
        debug_assert!(
            writes.iter().all(|&(a, _)| crate::line_of(a) == line),
            "nt_write_line_by: stores span cache lines"
        );
        self.nt_op(line, true, Requester::Thread(t), || {
            for &(a, v) in writes {
                self.heap.store(a, v);
            }
        });
    }

    /// Strongly atomic non-transactional compare-and-swap by thread `t`.
    pub fn nt_cas_by(&self, t: ThreadId, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.cas(addr, current, new)
        })
    }

    /// Strongly atomic non-transactional fetch-add by thread `t`.
    pub fn nt_fetch_add_by(&self, t: ThreadId, addr: Addr, delta: u64) -> u64 {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.fetch_add(addr, delta)
        })
    }

    /// Strongly atomic non-transactional fetch-subtract by thread `t`.
    pub fn nt_fetch_sub_by(&self, t: ThreadId, addr: Addr, delta: u64) -> u64 {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.fetch_sub(addr, delta)
        })
    }

    /// Strongly atomic non-transactional fetch-or by thread `t`.
    pub fn nt_fetch_or_by(&self, t: ThreadId, addr: Addr, bits: u64) -> u64 {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.fetch_or(addr, bits)
        })
    }

    /// Strongly atomic non-transactional fetch-and by thread `t`.
    pub fn nt_fetch_and_by(&self, t: ThreadId, addr: Addr, bits: u64) -> u64 {
        self.nt_op(crate::line_of(addr), true, Requester::Thread(t), || {
            self.heap.fetch_and(addr, bits)
        })
    }

    /// Number of live entries in the conflict table (leak diagnostics).
    pub fn live_line_entries(&self) -> usize {
        self.table.live_entries()
    }
}

/// Per-thread handle: owns the reusable transactional buffers and statistics for one
/// hardware thread.
pub struct HtmThread<'s> {
    pub(crate) sys: &'s HtmSystem,
    pub(crate) id: ThreadId,
    /// Buffered transactional writes (word -> value), published at commit.
    pub(crate) wbuf: FastMap<Addr, u64>,
    /// Per-line access state, epoch-tagged (see [`LineState`]).
    pub(crate) lstate: Box<[LineState]>,
    /// Current transaction epoch; `lstate` entries from other epochs are stale.
    pub(crate) epoch: u32,
    /// Lines touched by the current transaction (for commit/abort cleanup).
    pub(crate) touched: Vec<Line>,
    /// Per-transaction capacity state, shaped by the backend's
    /// [`CapacityModel`] (write-set model, read budget, spill budget).
    pub(crate) cap: TxCap,
    pub(crate) rng: SmallRng,
    /// Hardware statistics for this thread, padded to its own cache line so
    /// the hot-loop counter bumps never false-share with a neighbouring
    /// thread's handle (`Deref` keeps `th.stats.field` call sites unchanged).
    pub stats: crate::align::CacheAligned<HtmStats>,
    /// Counters for the backend-specific escape hatches (suspends, spills,
    /// ROTs); kept out of the cache-line-pinned [`HtmStats`].
    pub stretch: StretchStats,
    /// Debugging event trace (empty unless [`HtmConfig::trace_capacity`] > 0).
    pub trace: crate::trace::Trace,
    pub(crate) in_tx: bool,
}

impl<'s> HtmThread<'s> {
    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// The machine this thread belongs to.
    pub fn system(&self) -> &'s HtmSystem {
        self.sys
    }

    /// Begin a hardware transaction (`_xbegin`). Panics on nesting — flatten at the
    /// protocol level, as TSX effectively does.
    pub fn begin(&mut self) -> HtmTx<'_, 's> {
        self.begin_inner(false)
    }

    /// Begin a **rollback-only transaction** (POWER's `tbegin.`-with-ROT
    /// flavour): writes are buffered, conflict-tracked and atomically
    /// published exactly like [`HtmThread::begin`], but *reads are invisible
    /// to conflict detection* — they neither doom concurrent writers nor get
    /// this transaction doomed by concurrent commits. Only single-writer
    /// speculation (e.g. sandboxing) is sound under ROT; the conformance
    /// suite pins the weaker semantics.
    ///
    /// # Panics
    ///
    /// Panics unless the configured backend's
    /// [`CapacityModel::supports_rot`] is true.
    pub fn begin_rot(&mut self) -> HtmTx<'_, 's> {
        assert!(
            self.sys.capacity_model().supports_rot,
            "begin_rot: backend has no rollback-only transactions"
        );
        self.stretch.rot_begins += 1;
        self.begin_inner(true)
    }

    fn begin_inner(&mut self, rot: bool) -> HtmTx<'_, 's> {
        assert!(!self.in_tx, "nested hardware transaction");
        self.in_tx = true;
        self.stats.begins += 1;
        self.trace.record(crate::trace::Event::Begin);
        if self.epoch == u32::MAX {
            // Epoch wrap: invalidate every stale entry the slow way, once per 4G
            // transactions.
            self.lstate.fill(LineState::default());
            self.epoch = 0;
        }
        self.epoch += 1;
        self.sys.registry.begin(self.id);
        HtmTx::new(self, rot)
    }

    /// Convenience: strongly atomic non-transactional read by this thread.
    pub fn nt_read(&self, addr: Addr) -> u64 {
        self.sys.nt_read_by(self.id, addr)
    }

    /// Convenience: strongly atomic non-transactional write by this thread.
    pub fn nt_write(&self, addr: Addr, val: u64) {
        self.sys.nt_write_by(self.id, addr, val)
    }

    /// Convenience: strongly atomic CAS by this thread.
    pub fn nt_cas(&self, addr: Addr, current: u64, new: u64) -> Result<u64, u64> {
        self.sys.nt_cas_by(self.id, addr, current, new)
    }

    /// Convenience: strongly atomic single-line multi-word store by this
    /// thread (see [`HtmSystem::nt_write_line_by`]).
    pub fn nt_write_line(&self, writes: &[(Addr, u64)]) {
        self.sys.nt_write_line_by(self.id, writes)
    }

    /// Convenience: strongly atomic fetch-add by this thread.
    pub fn nt_fetch_add(&self, addr: Addr, delta: u64) -> u64 {
        self.sys.nt_fetch_add_by(self.id, addr, delta)
    }

    /// Run a closure as a single hardware transaction attempt: begins, runs `body`,
    /// commits. Returns the abort code on any failure. This is the building block the
    /// TM protocols wrap with their retry policies.
    pub fn attempt<T>(
        &mut self,
        body: impl FnOnce(&mut HtmTx<'_, 's>) -> Result<T, AbortCode>,
    ) -> Result<T, AbortCode> {
        let mut tx = self.begin();
        match body(&mut tx) {
            Ok(v) => {
                tx.commit()?;
                Ok(v)
            }
            Err(code) => {
                tx.cancel(code);
                Err(code)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_roundtrip() {
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        sys.nt_write(10, 77);
        assert_eq!(sys.nt_read(10), 77);
        assert_eq!(sys.nt_cas_by(0, 10, 77, 78), Ok(77));
        assert_eq!(sys.nt_read_by(0, 10), 78);
        assert_eq!(sys.nt_fetch_add_by(0, 10, 2), 78);
        assert_eq!(sys.nt_read(10), 80);
    }

    #[test]
    fn simple_tx_commits() {
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        let mut th = sys.thread(0);
        let r = th.attempt(|tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 1)?;
            tx.write(8, 5)?;
            Ok(())
        });
        assert!(r.is_ok());
        assert_eq!(sys.nt_read(0), 1);
        assert_eq!(sys.nt_read(8), 5);
        assert_eq!(th.stats.commits, 1);
        assert_eq!(
            sys.live_line_entries(),
            0,
            "commit must unregister all lines"
        );
    }

    #[test]
    fn nt_write_dooms_active_reader_tx() {
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        let mut th = sys.thread(0);
        let mut tx = th.begin();
        assert_eq!(tx.read(0), Ok(0));
        // Another agent writes the line non-transactionally: strong atomicity.
        sys.nt_write(0, 9);
        let r = tx.read(1); // next op observes the doom
        assert_eq!(r, Err(AbortCode::Conflict));
        drop(tx);
        assert_eq!(th.stats.aborts_conflict, 1);
        assert_eq!(sys.live_line_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "nested hardware")]
    fn nesting_panics() {
        let sys = HtmSystem::new(HtmConfig::tiny(), 256);
        let mut th = sys.thread(0);
        let _tx = th.begin();
        // Cannot even express a second begin without unsafe aliasing; simulate via a
        // second thread handle with the same id, which shares the registry slot.
        let mut th2 = sys.thread(0);
        let _tx2 = th2.begin();
    }
}
