//! Discrete-event virtual clock: deterministic multi-core scheduling on one host
//! core.
//!
//! The simulator already accounts time — every transactional operation charges
//! *work units* ([`crate::HtmTx::work_used`]). This module turns that accounting
//! into a scheduler: each simulated core owns a virtual timestamp, exactly one
//! core (the one with the smallest timestamp among runnable cores) executes at a
//! time, and charging work advances the executing core's clock. Conflicts,
//! commits and timer aborts are thereby ordered by *virtual* time instead of
//! host preemption, so a thread sweep on a 1-core CI host produces the same
//! deterministic interleaving — and the same statistics — on every run.
//!
//! ## Schedule points
//!
//! The only nondeterminism in a virtual-time run is the *tie*: two or more
//! runnable cores sharing the minimum timestamp. Each tie is a **decision
//! point**; the scheduler resolves it with, in order of precedence:
//!
//! 1. the next entry of the forced prefix ([`SchedSpec::forced`], replay),
//! 2. the policy — [`SchedPolicy::MinId`] (lowest core id, the deterministic
//!    default) or [`SchedPolicy::Seeded`] (a draw from the run-seeded RNG).
//!
//! Every decision is recorded (candidate count + chosen index), so a schedule
//! is fully described by `(seed, policy, prefix)` — a few bytes, not a trace of
//! every memory access. The `schedx` explorer in `tm-harness` enumerates
//! prefixes to visit every schedule up to a bounded depth and replays a failing
//! one exactly.
//!
//! ## Execution model
//!
//! Worker threads [`VClock::attach`] one core each; attach blocks until all
//! cores arrived (a barrier) and the scheduler granted this core the floor.
//! While a core holds the floor the other runnable cores' timestamps are
//! frozen, so the handing-over bound (`run_until` = minimum timestamp of the
//! other runnable cores) is constant: charges that keep the core strictly below
//! the bound skip the scheduler lock entirely — exact semantics, hot-path cost
//! of one thread-local add and compare. Reaching the bound (equality *is* a
//! tie) re-enters the scheduler.
//!
//! Spin loops must not busy-wait the host while the peer they wait for is gated
//! by the scheduler: [`yield_now`] advances the yielding core *to* the bound
//! (a spin-wait consumes exactly the time until someone else can act) and
//! reschedules, which guarantees global progress — any loop that either charges
//! or virtually yields keeps virtual time advancing.
//!
//! Code outside a virtual-time run is unaffected: every hook in this module is
//! a no-op (one relaxed atomic load) when the calling thread is not attached.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Maximum cores per clock (bounded by the fixed candidate buffer; well above
/// [`crate::registry::MAX_THREADS`]).
pub const MAX_CORES: usize = 64;
/// Decisions retained in the trace; the count keeps growing past the cap.
const TRACE_CAP: usize = 1 << 16;
/// Commits retained in the commit log; the count keeps growing past the cap.
const COMMIT_CAP: usize = 1 << 20;

/// Tie-break policy at schedule decision points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Deterministic default: the lowest core id among the tied candidates.
    MinId,
    /// A draw from the run-seeded RNG ([`SchedSpec::seed`]) — deterministic for
    /// a given seed, different across seeds (bounded schedule *sampling*).
    Seeded,
}

/// A complete schedule description: seed, policy, and a forced decision prefix.
///
/// Two runs of the same program under the same spec produce byte-identical
/// decision traces, commit logs and statistics.
#[derive(Clone, Debug)]
pub struct SchedSpec {
    /// Seeds the [`SchedPolicy::Seeded`] tie-breaker and the per-core
    /// interrupt RNGs ([`interrupt_draw`]).
    pub seed: u64,
    /// Tie-break policy after the forced prefix is exhausted.
    pub policy: SchedPolicy,
    /// Forced choices for the first `forced.len()` decision points: entry `i`
    /// is an index into decision `i`'s candidate list (taken modulo the
    /// candidate count, so stale prefixes stay well-defined).
    pub forced: Vec<u8>,
}

impl Default for SchedSpec {
    fn default() -> Self {
        Self {
            seed: 0,
            policy: SchedPolicy::MinId,
            forced: Vec::new(),
        }
    }
}

/// One recorded schedule decision: `chosen` of `candidates` tied cores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Number of cores tied at the minimum timestamp (always >= 2).
    pub candidates: u8,
    /// Index of the chosen core within the ascending-id candidate list.
    pub chosen: u8,
}

/// What a finished virtual-time run looked like.
#[derive(Clone, Debug, Default)]
pub struct VReport {
    /// The run's makespan: the maximum final core timestamp. This is the
    /// virtual-time analogue of wall-clock elapsed time.
    pub makespan: u64,
    /// The decision trace (first [`struct@Decision`] entries up to an internal cap).
    pub decisions: Vec<Decision>,
    /// Total decisions made (may exceed `decisions.len()` past the cap).
    pub n_decisions: u64,
    /// `(core, virtual time)` per hardware commit, in commit order (capped).
    pub commit_log: Vec<(usize, u64)>,
    /// Total commits noted (may exceed `commit_log.len()` past the cap).
    pub n_commits: u64,
}

impl VReport {
    /// Canonical text rendering of the decision trace — byte-comparable across
    /// runs ("two identical invocations produce byte-identical traces").
    pub fn trace_text(&self) -> String {
        let mut out = String::with_capacity(self.decisions.len() * 8 + 32);
        out.push_str(&format!(
            "decisions={} commits={} makespan={}\n",
            self.n_decisions, self.n_commits, self.makespan
        ));
        for (i, d) in self.decisions.iter().enumerate() {
            out.push_str(&format!("{i}:{}/{}\n", d.chosen, d.candidates));
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Status {
    NotArrived,
    Runnable,
    Done,
}

struct CoreState {
    time: u64,
    status: Status,
}

struct VState {
    cores: Vec<CoreState>,
    /// The core currently holding the floor (`None` before start / after end).
    current: Option<usize>,
    spec: SchedSpec,
    /// Tie-break RNG for [`SchedPolicy::Seeded`].
    rng: SmallRng,
    decisions: Vec<Decision>,
    n_decisions: u64,
    commit_log: Vec<(usize, u64)>,
    n_commits: u64,
}

struct Inner {
    state: Mutex<VState>,
    cv: Condvar,
}

/// Pick the next core to run: minimum timestamp among runnable cores, ties
/// resolved by forced prefix / policy and recorded as a decision.
fn pick_next(st: &mut VState) -> Option<usize> {
    let mut min_t = u64::MAX;
    let mut n: usize = 0;
    let mut cand = [0usize; MAX_CORES];
    for (i, c) in st.cores.iter().enumerate() {
        if c.status == Status::Runnable {
            if c.time < min_t {
                min_t = c.time;
                n = 0;
            }
            if c.time == min_t {
                cand[n] = i;
                n += 1;
            }
        }
    }
    if n == 0 {
        return None;
    }
    let chosen = if n == 1 {
        0
    } else {
        let pick = if (st.n_decisions as usize) < st.spec.forced.len() {
            (st.spec.forced[st.n_decisions as usize] as usize) % n
        } else {
            match st.spec.policy {
                SchedPolicy::MinId => 0,
                SchedPolicy::Seeded => st.rng.gen_range(0..n as u32) as usize,
            }
        };
        if st.decisions.len() < TRACE_CAP {
            st.decisions.push(Decision {
                candidates: n as u8,
                chosen: pick as u8,
            });
        }
        st.n_decisions += 1;
        pick
    };
    Some(cand[chosen])
}

/// Minimum timestamp of the runnable cores other than `me` (frozen while `me`
/// holds the floor), or `u64::MAX` when `me` is the only runnable core.
fn run_until_for(st: &VState, me: usize) -> u64 {
    st.cores
        .iter()
        .enumerate()
        .filter(|&(i, c)| i != me && c.status == Status::Runnable)
        .map(|(_, c)| c.time)
        .min()
        .unwrap_or(u64::MAX)
}

/// The calling thread's binding to a clock core.
struct Handle {
    inner: Arc<Inner>,
    core: usize,
    /// Local mirror of this core's timestamp (flushed to shared state on every
    /// scheduler entry).
    time: u64,
    /// Enter the scheduler once `time >= run_until` (equality is a tie).
    run_until: u64,
    /// Per-core RNG for injected-interrupt draws — part of the schedule spec,
    /// so `--replay` reproduces injected interrupts bit-exactly.
    irng: SmallRng,
}

thread_local! {
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

/// Process-wide count of attached cores: lets the hot-path hooks skip even the
/// thread-local lookup when no virtual-time run exists anywhere.
static ATTACHED: AtomicUsize = AtomicUsize::new(0);

/// Flush the local timestamp, reschedule, and block until this core holds the
/// floor again.
fn sync(h: &mut Handle) {
    let inner = Arc::clone(&h.inner);
    let mut st = inner.state.lock().unwrap();
    st.cores[h.core].time = h.time;
    st.current = pick_next(&mut st);
    if st.current != Some(h.core) {
        inner.cv.notify_all();
        while st.current != Some(h.core) {
            st = inner.cv.wait(st).unwrap();
        }
    }
    h.run_until = run_until_for(&st, h.core);
}

/// A discrete-event virtual clock coordinating `cores` worker threads.
///
/// Construct with [`VClock::new`], hand a reference to each worker, have every
/// worker call [`VClock::attach`] exactly once, and read the [`VReport`] with
/// [`VClock::report`] after the workers joined.
pub struct VClock {
    inner: Arc<Inner>,
    cores: usize,
    seed: u64,
}

impl VClock {
    /// A clock for exactly `cores` simulated cores under schedule `spec`.
    pub fn new(cores: usize, spec: SchedSpec) -> Self {
        assert!(
            (1..=MAX_CORES).contains(&cores),
            "cores must be in 1..={MAX_CORES}"
        );
        let seed = spec.seed;
        let rng = SmallRng::seed_from_u64(seed ^ 0x7EA1_5EED_C0DE_C10C);
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(VState {
                    cores: (0..cores)
                        .map(|_| CoreState {
                            time: 0,
                            status: Status::NotArrived,
                        })
                        .collect(),
                    current: None,
                    spec,
                    rng,
                    decisions: Vec::new(),
                    n_decisions: 0,
                    commit_log: Vec::new(),
                    n_commits: 0,
                }),
                cv: Condvar::new(),
            }),
            cores,
            seed,
        }
    }

    /// Number of cores this clock schedules.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Bind the calling thread to `core` and block until every core arrived
    /// and the scheduler granted this core the floor. The returned guard
    /// detaches on drop (including panic unwinds), marking the core done so
    /// the remaining cores keep running.
    ///
    /// # Panics
    ///
    /// If `core` is out of range, already attached, or the calling thread is
    /// already bound to a clock.
    pub fn attach(&self, core: usize) -> CoreGuard {
        assert!(core < self.cores, "core {core} out of range");
        let mut st = self.inner.state.lock().unwrap();
        assert!(
            st.cores[core].status == Status::NotArrived,
            "core {core} attached twice"
        );
        st.cores[core].status = Status::Runnable;
        if st.cores.iter().all(|c| c.status != Status::NotArrived) {
            // Last arriver releases the barrier and makes decision 0.
            st.current = pick_next(&mut st);
            self.inner.cv.notify_all();
        }
        while st.current != Some(core) {
            st = self.inner.cv.wait(st).unwrap();
        }
        let run_until = run_until_for(&st, core);
        drop(st);
        let h = Handle {
            inner: Arc::clone(&self.inner),
            core,
            time: 0,
            run_until,
            irng: SmallRng::seed_from_u64(
                self.seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1A7E_11A7,
            ),
        };
        CURRENT.with(|c| {
            let mut b = c.borrow_mut();
            assert!(b.is_none(), "thread already bound to a virtual clock");
            *b = Some(h);
        });
        ATTACHED.fetch_add(1, Ordering::SeqCst);
        CoreGuard {
            inner: Arc::clone(&self.inner),
            core,
        }
    }

    /// Snapshot the run's report. Call after the worker threads joined; calling
    /// mid-run yields a consistent-but-partial view.
    pub fn report(&self) -> VReport {
        let st = self.inner.state.lock().unwrap();
        VReport {
            makespan: st.cores.iter().map(|c| c.time).max().unwrap_or(0),
            decisions: st.decisions.clone(),
            n_decisions: st.n_decisions,
            commit_log: st.commit_log.clone(),
            n_commits: st.n_commits,
        }
    }
}

/// Detaches the calling thread's core on drop (see [`VClock::attach`]).
pub struct CoreGuard {
    inner: Arc<Inner>,
    core: usize,
}

impl Drop for CoreGuard {
    fn drop(&mut self) {
        let h = CURRENT.with(|c| c.borrow_mut().take());
        let final_time = h.map(|h| h.time).unwrap_or(0);
        ATTACHED.fetch_sub(1, Ordering::SeqCst);
        let mut st = self.inner.state.lock().unwrap();
        st.cores[self.core].time = st.cores[self.core].time.max(final_time);
        st.cores[self.core].status = Status::Done;
        // Only hand the floor over if we held it (a panicking core that never
        // got the floor must not preempt the one that has it).
        if st.current == Some(self.core) || st.current.is_none() {
            st.current = pick_next(&mut st);
        }
        self.inner.cv.notify_all();
    }
}

/// True when the calling thread is attached to a virtual clock.
pub fn is_attached() -> bool {
    ATTACHED.load(Ordering::Relaxed) != 0 && CURRENT.with(|c| c.borrow().is_some())
}

/// Advance the calling core's virtual time by `units`. No-op when the thread
/// is not attached. May block (hand the floor to another core).
#[inline]
pub fn charge(units: u64) {
    if ATTACHED.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(h) = c.borrow_mut().as_mut() {
            h.time = h.time.saturating_add(units);
            if h.time >= h.run_until {
                sync(h);
            }
        }
    });
}

/// Virtual yield: the calling core concedes the floor, advancing its clock to
/// the point where another core can act (a spin-wait costs exactly the time
/// until the peer proceeds). Falls back to [`std::thread::yield_now`] when the
/// thread is not attached — spin loops call this unconditionally.
pub fn yield_now() {
    if ATTACHED.load(Ordering::Relaxed) != 0 {
        let handled = CURRENT.with(|c| {
            if let Some(h) = c.borrow_mut().as_mut() {
                let bump = h.time.saturating_add(1);
                h.time = if h.run_until == u64::MAX {
                    bump
                } else {
                    bump.max(h.run_until)
                };
                if h.time >= h.run_until {
                    sync(h);
                }
                true
            } else {
                false
            }
        });
        if handled {
            return;
        }
    }
    std::thread::yield_now();
}

/// The calling core's current virtual time, or `None` when the thread is not
/// attached. Read-only — unlike [`charge`] it never advances the clock or
/// hands over the floor, so pacing loops (e.g. an open-loop load generator
/// comparing arrival timestamps against "now") can poll it freely.
#[inline]
pub fn now() -> Option<u64> {
    if ATTACHED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow().as_ref().map(|h| h.time))
}

/// A uniform `[0, 1)` draw from the calling core's schedule-seeded interrupt
/// RNG, or `None` when the thread is not attached (callers fall back to their
/// own RNG). Routing injected interrupts through this makes them part of the
/// schedule: replaying a `(seed, policy, prefix)` spec reproduces them
/// bit-exactly.
pub fn interrupt_draw() -> Option<f64> {
    if ATTACHED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|c| c.borrow_mut().as_mut().map(|h| h.irng.gen::<f64>()))
}

/// Record a hardware commit at the calling core's current virtual time.
/// No-op when the thread is not attached.
pub fn note_commit() {
    if ATTACHED.load(Ordering::Relaxed) == 0 {
        return;
    }
    CURRENT.with(|c| {
        if let Some(h) = c.borrow_mut().as_mut() {
            let mut st = h.inner.state.lock().unwrap();
            if st.commit_log.len() < COMMIT_CAP {
                st.commit_log.push((h.core, h.time));
            }
            st.n_commits += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_runs_unimpeded() {
        let clock = VClock::new(1, SchedSpec::default());
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = clock.attach(0);
                for _ in 0..100 {
                    charge(3);
                }
                note_commit();
            });
        });
        let r = clock.report();
        assert_eq!(r.makespan, 300);
        assert_eq!(r.n_decisions, 0, "one core never ties");
        assert_eq!(r.commit_log, vec![(0, 300)]);
    }

    #[test]
    fn unattached_hooks_are_noops() {
        assert!(!is_attached());
        charge(10);
        yield_now();
        note_commit();
        assert_eq!(interrupt_draw(), None);
    }

    #[test]
    fn min_id_breaks_the_initial_tie() {
        let clock = VClock::new(2, SchedSpec::default());
        std::thread::scope(|s| {
            for t in 0..2 {
                let clock = &clock;
                s.spawn(move || {
                    let _g = clock.attach(t);
                    charge(1);
                    note_commit();
                });
            }
        });
        let r = clock.report();
        assert_eq!(r.commit_log[0].0, 0, "MinId schedules core 0 first");
        assert!(r.n_decisions >= 1);
        assert_eq!(r.decisions[0], Decision { candidates: 2, chosen: 0 });
    }

    #[test]
    fn forced_prefix_flips_the_commit_order() {
        // Decision 0 gives core 1 the first charge; decision 1 (the tie at
        // time 1, where both cores' next actions start) keeps core 1 on the
        // floor so its post-charge action — the commit — runs first.
        let spec = SchedSpec {
            forced: vec![1, 1],
            ..SchedSpec::default()
        };
        let clock = VClock::new(2, spec);
        std::thread::scope(|s| {
            for t in 0..2 {
                let clock = &clock;
                s.spawn(move || {
                    let _g = clock.attach(t);
                    charge(1);
                    note_commit();
                });
            }
        });
        let r = clock.report();
        assert_eq!(r.commit_log[0].0, 1, "forced prefix schedules core 1 first");
        assert_eq!(r.decisions[0], Decision { candidates: 2, chosen: 1 });
    }
}
