//! Workspace-local, dependency-free stand-in for the subset of the crates.io
//! `proptest` 1.x API this repository uses.
//!
//! The build environment has no network access (see `docs/offline.md`), so the
//! real `proptest` cannot be fetched. This shim keeps the repository's
//! property-test files compiling and running unchanged:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges and
//!   tuples of strategies;
//! * [`strategy::Just`], [`collection::vec`], the [`prop_oneof!`] macro;
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** On failure the offending inputs are printed verbatim
//!   (their `Debug` form) instead of being minimised. Re-run with the printed
//!   case to reproduce — generation is deterministic per test name.
//! * **Deterministic seeding.** Each test derives its RNG seed from its own
//!   name, so a failing case reproduces on every run; there is no persistence
//!   file (any `*.proptest-regressions` files in the tree are inert).

use rand::rngs::SmallRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    #[doc(hidden)]
    pub __non_exhaustive: (),
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            __non_exhaustive: (),
        }
    }
}

pub mod strategy {
    use rand::rngs::SmallRng;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        pub arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            use rand::Rng;
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                #[inline]
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                #[inline]
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy for `Vec`s of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the repo's test files import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    use super::*;

    /// Deterministic per-test seed derived from the test path (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `cases` random cases of `body`, printing the generated inputs of a
    /// failing case before propagating its panic.
    pub fn run_cases<I: std::fmt::Debug>(
        name: &str,
        cases: u32,
        generate: impl Fn(&mut SmallRng) -> I,
        body: impl Fn(I),
    ) {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed_for(name));
        for case in 0..cases {
            let input = generate(&mut rng);
            let guard = FailureReporter {
                name,
                case,
                desc: format!("{input:?}"),
            };
            body(input);
            std::mem::forget(guard);
        }
    }

    struct FailureReporter<'a> {
        name: &'a str,
        case: u32,
        desc: String,
    }

    impl Drop for FailureReporter<'_> {
        fn drop(&mut self) {
            // Only reached on unwind (success path forgets the guard).
            eprintln!(
                "proptest[offline-shim] {} failed at case {} with input:\n  {}",
                self.name, self.case, self.desc
            );
        }
    }
}

/// `prop_assert!` — plain assert (no shrinking in the offline shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union {
            arms: vec![$($crate::strategy::Strategy::boxed($arm)),+],
        }
    };
}

/// The `proptest!` test-definition macro (offline shim: random cases, no
/// shrinking, deterministic per-test seed).
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)) => {};
    // The `#[test]` attribute the test files write is captured by `$(#[$m])*`
    // and re-emitted verbatim on the generated zero-argument function.
    (@cfg ($cfg:expr)
        $(#[$m:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$m])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::__rt::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                __cfg.cases,
                |__rng| ( $( ($strat).generate(__rng), )+ ),
                |( $($arg,)+ )| $body,
            );
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // With a leading config block.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one.
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let s = collection::vec((0u8..8, 1u64..100).prop_map(|(a, b)| (a, b)), 1..30);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..30).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 8);
                assert!((1..100).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let s = prop_oneof![
            (0u8..1).prop_map(|_| 0usize),
            (0u8..1).prop_map(|_| 1usize),
            (0u8..1).prop_map(|_| 2usize),
        ];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: multiple args, doc comments, config.
        #[test]
        fn macro_roundtrip(xs in collection::vec(0u32..10, 0..5), y in 5u64..6) {
            prop_assert!(xs.len() < 5);
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn second_property(v in (1usize..4, 0u8..2)) {
            prop_assert!(v.0 >= 1 && v.0 < 4);
        }
    }
}
