//! Reduced-Hardware NOrec (Matveev & Shavit — SPAA'13 / TRANSACT'14 "NOrecRH"):
//! the Hybrid-TM competitor of the paper's evaluation.
//!
//! Transactions first try pure HTM (subscribing NOrec's sequence lock so software
//! commits abort them, and bumping it on hardware commit so software transactions
//! revalidate). Transactions that fail in hardware fall back to NOrec — but the
//! commit procedure (validate + write back + sequence bump) executes as a *small*
//! hardware transaction, the "reduced hardware transaction", which removes the
//! software commit's lock acquisition from the common case. If even the reduced
//! transaction cannot commit in hardware (e.g. the redo log exceeds HTM capacity),
//! the plain software NOrec commit is the final fallback.

use htm_sim::abort::TxResult;
use htm_sim::{AbortCode, Addr};
use part_htm_core::api::spin_work;
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};

use crate::htm_gl::PureHtmCtx;
use crate::norec::{validate, wait_even};
use crate::redo::RedoLog;

/// Explicit-abort payload: the sequence lock moved under the reduced hardware
/// commit; software revalidation is required.
const XABORT_SEQ_CHANGED: u8 = 0xB0;

struct RhStmCtx<'c, 'r> {
    th: &'c TmThread<'r>,
    seqlock: Addr,
    snapshot: &'c mut u64,
    reads: &'c mut Vec<(Addr, u64)>,
    redo: &'c mut RedoLog,
}

impl TxCtx for RhStmCtx<'_, '_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        spin_work(crate::STM_READ_COST);
        if let Some(v) = self.redo.get(addr) {
            return Ok(v);
        }
        let mut v = self.th.hw.nt_read(addr);
        while *self.snapshot != self.th.hw.nt_read(self.seqlock) {
            match validate(self.th, self.seqlock, self.reads) {
                Ok(ts) => *self.snapshot = ts,
                Err(()) => return Err(AbortCode::Conflict),
            }
            v = self.th.hw.nt_read(addr);
        }
        self.reads.push((addr, v));
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        spin_work(crate::STM_WRITE_COST);
        self.redo.insert(addr, val);
        Ok(())
    }

    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// The NOrecRH executor.
pub struct NOrecRh<'r> {
    th: TmThread<'r>,
    reads: Vec<(Addr, u64)>,
    redo: RedoLog,
}

impl<'r> NOrecRh<'r> {
    /// Pure-hardware attempt: subscribe the sequence lock; a writer bumps it (by 2,
    /// staying even) inside the transaction so concurrent software transactions
    /// revalidate their value-based read logs.
    fn try_htm<W: Workload>(&mut self, w: &mut W) -> TxResult<()> {
        w.reset();
        let seqlock = self.th.rt.seqlock();
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            let snap = match tx.read(seqlock) {
                Ok(s) if s & 1 == 0 => s,
                Ok(_) => break 'b Err(tx.xabort(XABORT_SEQ_CHANGED)),
                Err(e) => break 'b Err(e),
            };
            let wbefore = tx.write_lines();
            {
                let mut ctx = PureHtmCtx { tx: &mut tx };
                for seg in 0..w.segments() {
                    if let Err(e) = w.segment(seg, &mut ctx) {
                        break 'b Err(e);
                    }
                }
            }
            if tx.write_lines() > wbefore {
                if let Err(e) = tx.write(seqlock, snap + 2) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }

    /// One STM attempt with the reduced-hardware commit.
    fn try_stm<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let seqlock = self.th.rt.seqlock();
        w.reset();
        self.reads.clear();
        self.redo.clear();
        let mut snapshot = wait_even(&self.th, seqlock);

        {
            let mut ctx = RhStmCtx {
                th: &self.th,
                seqlock,
                snapshot: &mut snapshot,
                reads: &mut self.reads,
                redo: &mut self.redo,
            };
            for seg in 0..w.segments() {
                if w.software_segment(seg) {
                    let mut sctx = part_htm_core::ctx::SoftwareCtx {
                        th: &ctx.th.hw,
                        mask_values: false,
                    };
                    w.segment(seg, &mut sctx)
                        .expect("software segments cannot abort");
                    continue;
                }
                if w.segment(seg, &mut ctx).is_err() {
                    return Err(());
                }
            }
        }
        if self.redo.is_empty() {
            return Ok(());
        }

        // Reduced hardware commit: {check sequence unchanged, write everything back,
        // bump} as one small hardware transaction.
        let mut hw_attempts = 0u32;
        loop {
            // Software revalidation first, so the hardware part only has to compare
            // the sequence number.
            while snapshot != self.th.hw.nt_read(seqlock) {
                match validate(&self.th, seqlock, &self.reads) {
                    Ok(ts) => snapshot = ts,
                    Err(()) => return Err(()),
                }
            }
            let redo = &self.redo;
            let commit = self.th.hw.attempt(|tx| {
                match tx.read(seqlock) {
                    Ok(s) if s == snapshot => {}
                    Ok(_) => return Err(tx.xabort(XABORT_SEQ_CHANGED)),
                    Err(e) => return Err(e),
                }
                for (a, v) in redo.iter() {
                    tx.write(a, v)?;
                }
                tx.write(seqlock, snapshot + 2)
            });
            match commit {
                Ok(()) => return Ok(()),
                Err(code) => {
                    hw_attempts += 1;
                    let out_of_hw = code.is_resource_failure()
                        || hw_attempts >= self.th.rt.config().fast_retries;
                    if out_of_hw {
                        // Final fallback: the plain software NOrec commit.
                        while self.th.hw.nt_cas(seqlock, snapshot, snapshot + 1).is_err() {
                            match validate(&self.th, seqlock, &self.reads) {
                                Ok(ts) => snapshot = ts,
                                Err(()) => return Err(()),
                            }
                        }
                        for (a, v) in self.redo.iter() {
                            self.th.hw.nt_write(a, v);
                        }
                        self.th.hw.nt_write(seqlock, snapshot + 2);
                        return Ok(());
                    }
                    htm_sim::vclock::yield_now();
                }
            }
        }
    }
}

impl<'r> TmExecutor<'r> for NOrecRh<'r> {
    const NAME: &'static str = "NOrecRH";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self {
            th: TmThread::new(rt, thread_id),
            reads: Vec::new(),
            redo: RedoLog::default(),
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        let seqlock = self.th.rt.seqlock();
        if !w.is_irrevocable() {
            for _ in 0..self.th.rt.config().fast_retries {
                // Anti-lemming: wait for any software committer to drain.
                wait_even(&self.th, seqlock);
                match self.try_htm(w) {
                    Ok(()) => {
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    // No-retry hint: capacity/interrupt aborts go straight to the
                    // software path.
                    Err(code) if code.is_resource_failure() => break,
                    Err(_) => {}
                }
            }
        }
        loop {
            if w.is_irrevocable() {
                // Inevitable software execution under the sequence lock.
                let ts = wait_even(&self.th, seqlock);
                if self.th.hw.nt_cas(seqlock, ts, ts + 1).is_err() {
                    continue;
                }
                w.reset();
                let mut ctx = part_htm_core::ctx::SlowCtx {
                    th: &self.th.hw,
                    mask_values: false,
                };
                for seg in 0..w.segments() {
                    w.segment(seg, &mut ctx)
                        .expect("direct execution cannot abort");
                }
                self.th.hw.nt_write(seqlock, ts + 2);
                w.after_commit();
                self.th.stats.record_commit(CommitPath::Stm);
                return CommitPath::Stm;
            }
            if self.try_stm(w).is_ok() {
                w.after_commit();
                self.th.stats.record_commit(CommitPath::Stm);
                return CommitPath::Stm;
            }
            self.th.stats.stm_aborts += 1;
            htm_sim::vclock::yield_now();
        }
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::HtmConfig;
    use part_htm_core::TmConfig;
    use rand::rngs::SmallRng;

    struct Incr {
        n: usize,
        base: Addr,
    }

    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            for i in 0..self.n {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    #[test]
    fn small_tx_commits_in_hardware() {
        let rt = TmRuntime::with_defaults(1, 256);
        let mut e = NOrecRh::new(&rt, 0);
        let mut w = Incr {
            n: 4,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(rt.verify_read(0), 1);
        // The hardware writer bumped the sequence lock.
        assert_eq!(rt.system().nt_read(rt.seqlock()), 2);
    }

    #[test]
    fn capacity_limited_tx_uses_stm_with_reduced_commit() {
        let rt = TmRuntime::new(
            HtmConfig {
                l1_sets: 4,
                l1_ways: 2,
                ..HtmConfig::default()
            },
            TmConfig::default(),
            1,
            4096,
        );
        let mut e = NOrecRh::new(&rt, 0);
        // 32 written lines: far over the 8-line capacity, so the body runs in
        // software; the reduced commit (32 writes + seqlock) also exceeds capacity
        // and takes the software-commit fallback.
        let mut w = Incr {
            n: 32,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Stm);
        for i in 0..32 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
        assert_eq!(rt.system().nt_read(rt.seqlock()) & 1, 0);
    }

    #[test]
    fn mixed_hardware_software_conserve_counters() {
        let rt = TmRuntime::new(
            HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                ..HtmConfig::default()
            },
            TmConfig::default(),
            4,
            4096,
        );
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = NOrecRh::new(rt, t);
                    // Even threads run small (hardware-friendly) transactions, odd
                    // threads big (software) ones, all over the same counters.
                    let n = if t % 2 == 0 { 4 } else { 96 };
                    let mut w = Incr { n, base: rt.app(0) };
                    for _ in 0..30 {
                        e.execute(&mut w);
                    }
                });
            }
        });
        // Counters 0..4 are touched by all 4 threads' transactions.
        for i in 0..4 {
            assert_eq!(rt.verify_read(i * 8), 120, "counter {i}");
        }
        // Counters 4..96 only by the two odd (software) threads.
        for i in 4..96 {
            assert_eq!(rt.verify_read(i * 8), 60, "counter {i}");
        }
    }
}
