//! NOrec (Dalessandro, Spear, Scott — PPoPP'10): an STM with a single global
//! sequence lock and **value-based validation**.
//!
//! No per-location metadata ("no ownership records"): a transaction snapshots the
//! global sequence number, logs `(address, value)` for every read, buffers writes in
//! a redo log, and re-validates its read log by value whenever the sequence number
//! moves. Writers commit by CAS-ing the sequence number odd, writing back, and
//! bumping it even. The paper uses NOrec as the state-of-the-art low-overhead STM
//! competitor; its weakness — O(reads) revalidation on every concurrent commit —
//! shows in the large read-set workloads (Fig. 3(b)).

use htm_sim::abort::TxResult;
use htm_sim::{AbortCode, Addr};
use part_htm_core::api::spin_work;
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};

use crate::redo::RedoLog;

/// Wait until the sequence lock is even (no writer committing) and return it.
pub(crate) fn wait_even(th: &TmThread<'_>, seqlock: Addr) -> u64 {
    loop {
        let ts = th.hw.nt_read(seqlock);
        if ts & 1 == 0 {
            return ts;
        }
        htm_sim::vclock::yield_now();
    }
}

/// Value-based validation: wait for a quiescent (even) sequence number, check every
/// logged read still has its logged value, and confirm the sequence number did not
/// move meanwhile. Returns the new snapshot, or `Err` if a value changed.
pub(crate) fn validate(th: &TmThread<'_>, seqlock: Addr, reads: &[(Addr, u64)]) -> Result<u64, ()> {
    loop {
        let ts = wait_even(th, seqlock);
        if reads.iter().any(|&(a, v)| th.hw.nt_read(a) != v) {
            return Err(());
        }
        if th.hw.nt_read(seqlock) == ts {
            return Ok(ts);
        }
    }
}

/// NOrec's transactional context.
struct NorecCtx<'c, 'r> {
    th: &'c TmThread<'r>,
    seqlock: Addr,
    snapshot: &'c mut u64,
    reads: &'c mut Vec<(Addr, u64)>,
    redo: &'c mut RedoLog,
}

impl TxCtx for NorecCtx<'_, '_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        spin_work(crate::STM_READ_COST);
        if let Some(v) = self.redo.get(addr) {
            return Ok(v);
        }
        let mut v = self.th.hw.nt_read(addr);
        // If the sequence number moved, revalidate the whole read log by value and
        // re-read (the NOrec read loop).
        while *self.snapshot != self.th.hw.nt_read(self.seqlock) {
            match validate(self.th, self.seqlock, self.reads) {
                Ok(ts) => *self.snapshot = ts,
                Err(()) => return Err(AbortCode::Conflict),
            }
            v = self.th.hw.nt_read(addr);
        }
        self.reads.push((addr, v));
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        spin_work(crate::STM_WRITE_COST);
        self.redo.insert(addr, val);
        Ok(())
    }

    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// The NOrec executor.
pub struct NOrec<'r> {
    th: TmThread<'r>,
    reads: Vec<(Addr, u64)>,
    redo: RedoLog,
}

impl<'r> NOrec<'r> {
    fn try_once<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let seqlock = self.th.rt.seqlock();
        w.reset();
        self.reads.clear();
        self.redo.clear();
        let mut snapshot = wait_even(&self.th, seqlock);

        {
            let mut ctx = NorecCtx {
                th: &self.th,
                seqlock,
                snapshot: &mut snapshot,
                reads: &mut self.reads,
                redo: &mut self.redo,
            };
            for seg in 0..w.segments() {
                if w.software_segment(seg) {
                    // Non-transactional code (STAMP's unmonitored blocks): plain
                    // loads, no instrumentation — same treatment every runtime
                    // gives it.
                    let mut sctx = part_htm_core::ctx::SoftwareCtx {
                        th: &ctx.th.hw,
                        mask_values: false,
                    };
                    w.segment(seg, &mut sctx)
                        .expect("software segments cannot abort");
                    continue;
                }
                if w.segment(seg, &mut ctx).is_err() {
                    return Err(());
                }
            }
        }

        // Read-only transactions commit without touching the sequence lock.
        if self.redo.is_empty() {
            return Ok(());
        }
        // Writer commit: acquire the sequence lock (odd), write back, release (even).
        while self.th.hw.nt_cas(seqlock, snapshot, snapshot + 1).is_err() {
            match validate(&self.th, seqlock, &self.reads) {
                Ok(ts) => snapshot = ts,
                Err(()) => return Err(()),
            }
        }
        for (a, v) in self.redo.iter() {
            self.th.hw.nt_write(a, v);
        }
        self.th.hw.nt_write(seqlock, snapshot + 2);
        Ok(())
    }

    /// Irrevocable transactions run *inevitably*: acquire the sequence lock for the
    /// whole execution, blocking every concurrent commit and validation.
    fn run_inevitable<W: Workload>(&mut self, w: &mut W) {
        let seqlock = self.th.rt.seqlock();
        loop {
            let ts = wait_even(&self.th, seqlock);
            if self.th.hw.nt_cas(seqlock, ts, ts + 1).is_ok() {
                w.reset();
                let mut ctx = part_htm_core::ctx::SlowCtx {
                    th: &self.th.hw,
                    mask_values: false,
                };
                for seg in 0..w.segments() {
                    w.segment(seg, &mut ctx)
                        .expect("direct execution cannot abort");
                }
                self.th.hw.nt_write(seqlock, ts + 2);
                return;
            }
        }
    }
}

impl<'r> TmExecutor<'r> for NOrec<'r> {
    const NAME: &'static str = "NOrec";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self {
            th: TmThread::new(rt, thread_id),
            reads: Vec::new(),
            redo: RedoLog::default(),
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        if w.is_irrevocable() {
            self.run_inevitable(w);
            w.after_commit();
            self.th.stats.record_commit(CommitPath::Stm);
            return CommitPath::Stm;
        }
        loop {
            if self.try_once(w).is_ok() {
                w.after_commit();
                self.th.stats.record_commit(CommitPath::Stm);
                return CommitPath::Stm;
            }
            self.th.stats.stm_aborts += 1;
            htm_sim::vclock::yield_now();
        }
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    struct Transfer {
        from: Addr,
        to: Addr,
        amount: u64,
    }

    impl Workload for Transfer {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let f = ctx.read(self.from)?;
            let t = ctx.read(self.to)?;
            ctx.write(self.from, f.wrapping_sub(self.amount))?;
            ctx.write(self.to, t.wrapping_add(self.amount))
        }
    }

    #[test]
    fn single_thread_commit() {
        let rt = TmRuntime::with_defaults(1, 64);
        rt.setup_write(0, 100);
        let mut e = NOrec::new(&rt, 0);
        let mut w = Transfer {
            from: rt.app(0),
            to: rt.app(8),
            amount: 30,
        };
        assert_eq!(e.execute(&mut w), CommitPath::Stm);
        assert_eq!(rt.verify_read(0), 70);
        assert_eq!(rt.verify_read(8), 30);
        // Sequence lock bumped by exactly one writer commit.
        assert_eq!(rt.system().nt_read(rt.seqlock()), 2);
    }

    #[test]
    fn read_only_does_not_bump_seqlock() {
        let rt = TmRuntime::with_defaults(1, 64);
        struct Ro(Addr);
        impl Workload for Ro {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
                ctx.read(self.0).map(|_| ())
            }
        }
        let mut e = NOrec::new(&rt, 0);
        e.execute(&mut Ro(rt.app(0)));
        assert_eq!(rt.system().nt_read(rt.seqlock()), 0);
    }

    #[test]
    fn conserved_sum_under_contention() {
        let rt = TmRuntime::with_defaults(4, 256);
        const ACCOUNTS: usize = 8;
        for i in 0..ACCOUNTS {
            rt.setup_write(i * 8, 1000);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = NOrec::new(rt, t);
                    for i in 0..100usize {
                        let from = (i + t) % ACCOUNTS;
                        let to = (i + t * 3 + 1) % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        let mut w = Transfer {
                            from: rt.app(from * 8),
                            to: rt.app(to * 8),
                            amount: 7,
                        };
                        e.execute(&mut w);
                    }
                });
            }
        });
        let total: u64 = (0..ACCOUNTS).map(|i| rt.verify_read(i * 8)).sum();
        assert_eq!(total, 8000, "transfers must conserve the total");
    }

    #[test]
    fn irrevocable_runs_inevitably() {
        let rt = TmRuntime::with_defaults(1, 64);
        struct Irrev(Addr);
        impl Workload for Irrev {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn is_irrevocable(&self) -> bool {
                true
            }
            fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
                let v = ctx.read(self.0)?;
                ctx.write(self.0, v + 1)
            }
        }
        let mut e = NOrec::new(&rt, 0);
        assert_eq!(e.execute(&mut Irrev(rt.app(0))), CommitPath::Stm);
        assert_eq!(rt.verify_read(0), 1);
        assert_eq!(rt.system().nt_read(rt.seqlock()) & 1, 0, "seqlock released");
    }
}
