//! # tm-baselines — the competitor protocols of the Part-HTM evaluation (§7)
//!
//! * [`HtmGl`] — best-effort HTM with the default global-lock fallback: 5 hardware
//!   retries, then mutual exclusion. The industry-standard baseline.
//! * [`NOrec`] — Dalessandro/Spear/Scott's STM: a single global sequence lock with
//!   value-based validation; minimal metadata, commit-time write-back.
//! * [`RingStm`] — Spear/Michael/von Praun's STM: Bloom-filter signatures validated
//!   against a global ring of committed write signatures (Part-HTM borrows its ring
//!   from this design, so both share the same ring geometry, as in the paper's setup).
//! * [`NOrecRh`] — Matveev/Shavit's Reduced-Hardware NOrec: transactions try pure
//!   HTM first; the software fallback is NOrec whose commit (validate + write-back +
//!   sequence bump) executes inside a small hardware transaction.
//! * [`Sequential`] — uninstrumented single-threaded execution, the denominator of
//!   the paper's speedup figures (Figs. 5 and 6).
//!
//! All executors run against the same [`part_htm_core::TmRuntime`] and implement
//! [`part_htm_core::TmExecutor`], so the harness swaps protocols freely. The
//! anti-lemming policy (never retry in hardware while a lock is held) is applied
//! throughout, as the paper prescribes.

/// Calibrated cost (in [`part_htm_core::spin_work`] units) of one instrumented STM
/// *read* beyond the raw memory access.
///
/// On real hardware an HTM access is a plain cached load (~1 ns) while an
/// instrumented STM read multiplies that several-fold (NOrec: load + sequence-lock
/// load + value-log append; RingSTM: Bloom-filter update + ring poll). In the
/// simulator, both worlds' accesses otherwise cost similar *wall* time (the
/// simulator's own bookkeeping dominates), which would invert the paper's premise
/// that "hardware transactions are much faster than their software version" (§1).
/// These constants restore the hardware:software per-access cost ratio; see
/// DESIGN.md ("simulator calibration") and EXPERIMENTS.md.
pub const STM_READ_COST: u64 = 96;

/// Calibrated cost of one instrumented STM *write* beyond the raw buffering
/// (redo-log insertion is cheaper than a validated read).
pub const STM_WRITE_COST: u64 = 48;

/// Calibrated cost of one *plain* (uninstrumented) memory access in the
/// [`Sequential`] baseline. On real hardware a sequential access and a
/// hardware-transactional access are the same cached load; in the simulator a
/// transactional access carries bookkeeping that a raw `Heap::load` does not, so
/// the sequential denominator must be charged the same amount for speed-ups to be
/// meaningful (see DESIGN.md "Simulator calibration").
pub const PLAIN_ACCESS_COST: u64 = 16;

pub mod hle;
pub mod htm_gl;
pub mod norec;
pub mod norec_rh;
pub mod redo;
pub mod ringstm;
pub mod seq;
pub mod spht;

pub use hle::Hle;
pub use htm_gl::HtmGl;
pub use norec::NOrec;
pub use norec_rh::NOrecRh;
pub use redo::RedoLog;
pub use ringstm::RingStm;
pub use seq::Sequential;
pub use spht::SpHt;
