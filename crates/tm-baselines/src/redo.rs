//! A redo log: buffered transactional writes for the lazy-versioning STM baselines
//! (NOrec, RingSTM, NOrecRH).

use htm_sim::util::FastMap;
use htm_sim::Addr;

/// Write buffer keyed by word address.
#[derive(Default)]
pub struct RedoLog {
    map: FastMap<Addr, u64>,
}

impl RedoLog {
    /// Buffer a write (overwrites a previous buffered value for the same address).
    #[inline]
    pub fn insert(&mut self, addr: Addr, val: u64) {
        self.map.insert(addr, val);
    }

    /// Look up a buffered write (read-own-writes).
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<u64> {
        self.map.get(&addr).copied()
    }

    /// Number of buffered writes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no writes are buffered (read-only transaction).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drop all buffered writes (abort or post-commit).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate over the buffered writes in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.map.iter().map(|(&a, &v)| (a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_own_writes() {
        let mut r = RedoLog::default();
        assert!(r.is_empty());
        r.insert(10, 1);
        r.insert(10, 2);
        assert_eq!(r.get(10), Some(2));
        assert_eq!(r.get(11), None);
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn iter_covers_all_writes() {
        let mut r = RedoLog::default();
        for i in 0..10 {
            r.insert(i, u64::from(i) + 100);
        }
        let mut seen: Vec<_> = r.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen[3], (3, 103));
    }
}
