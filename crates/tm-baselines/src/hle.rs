//! HLE — Hardware Lock Elision (§2 of the paper): "each critical section protected
//! by a lock is attempted before as transaction and, in case of abort, the original
//! lock is acquired and mutual exclusion is enforced."
//!
//! Unlike RTM (the paper's focus), HLE gives the programmer no retry policy: one
//! elided attempt, then the real lock. This executor models that contract on the
//! global lock. The paper notes that "applying Part-HTM to HLE's first speculative
//! trial before the lock acquisition is a simple extension" — that extension is
//! expressible here as `TmConfig { fast_retries: 1, .. }` on [`part_htm_core::PartHtm`],
//! which the tests below demonstrate.

use htm_sim::abort::TxResult;
use part_htm_core::api::XABORT_GLOCK;
use part_htm_core::parthtm::{run_global_lock, wait_glock_released};
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, Workload};

use crate::htm_gl::PureHtmCtx;

/// The HLE executor: one elided hardware attempt, then the lock.
pub struct Hle<'r> {
    th: TmThread<'r>,
}

impl<'r> Hle<'r> {
    fn try_elide<W: Workload>(&mut self, w: &mut W) -> TxResult<()> {
        w.reset();
        let glock = self.th.rt.glock();
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            // The elided lock is read (added to the read set) but not acquired —
            // exactly HLE's semantics: the lock word stays "free" unless someone
            // aborts and takes it for real, which then dooms all elisions.
            match tx.read(glock) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = PureHtmCtx { tx: &mut tx };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }
}

impl<'r> TmExecutor<'r> for Hle<'r> {
    const NAME: &'static str = "HLE";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self { th: TmThread::new(rt, thread_id) }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        if !w.is_irrevocable() {
            wait_glock_released(&self.th);
            if self.try_elide(w).is_ok() {
                w.after_commit();
                self.th.stats.record_commit(CommitPath::Htm);
                return CommitPath::Htm;
            }
        }
        self.th.stats.fallbacks_gl += 1;
        run_global_lock(&self.th, w, false);
        w.after_commit();
        self.th.stats.record_commit(CommitPath::GlobalLock);
        CommitPath::GlobalLock
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::{Addr, HtmConfig};
    use part_htm_core::{PartHtm, TmConfig, TxCtx};
    use rand::rngs::SmallRng;

    struct Incr {
        n: usize,
        base: Addr,
    }
    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segments(&self) -> usize {
            4
        }
        fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
            let per = self.n / 4;
            for i in seg * per..(seg + 1) * per {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    #[test]
    fn small_section_elides() {
        let rt = TmRuntime::with_defaults(1, 512);
        let mut e = Hle::new(&rt, 0);
        let mut w = Incr { n: 4, base: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(e.thread().stats.commits_htm, 1);
    }

    #[test]
    fn oversized_section_takes_lock_after_one_attempt() {
        let htm = HtmConfig { l1_sets: 4, l1_ways: 2, ..HtmConfig::default() };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, 2048);
        let mut e = Hle::new(&rt, 0);
        let mut w = Incr { n: 32, base: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);
        // HLE's contract: exactly one wasted speculative attempt, not five.
        assert_eq!(e.thread().stats.fast_aborts, 1);
        for i in 0..32 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
    }

    #[test]
    fn part_htm_applied_to_hle_rescues_the_section() {
        // The paper's §2 extension: Part-HTM with a single fast-path trial is
        // HLE whose fallback is the partitioned path instead of the lock.
        let htm = HtmConfig { l1_sets: 16, l1_ways: 4, quantum: 100_000, ..HtmConfig::default() };
        let rt = TmRuntime::new(htm, TmConfig { fast_retries: 1, ..TmConfig::default() }, 1, 2048);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr { n: 96, base: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        assert!(e.thread().stats.fast_aborts <= 1, "a single speculative trial");
    }

    #[test]
    fn concurrent_elision_is_serializable() {
        let rt = TmRuntime::with_defaults(4, 512);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = Hle::new(rt, t);
                    let mut w = Incr { n: 8, base: rt.app(0) };
                    for _ in 0..50 {
                        e.execute(&mut w);
                    }
                });
            }
        });
        for i in 0..8 {
            assert_eq!(rt.verify_read(i * 8), 200);
        }
    }
}
