//! Sequential (non-transactional) execution: the denominator of the paper's
//! speed-up figures (Figs. 5 and 6 report "speed-up over sequential execution").
//!
//! Runs the workload with direct, uninstrumented accesses and **no synchronisation
//! at all** — only meaningful single-threaded. Each access is charged
//! [`crate::PLAIN_ACCESS_COST`] so it costs what the simulator charges a
//! hardware-transactional access (on silicon the two are the same cached load).

use htm_sim::abort::TxResult;
use htm_sim::{Addr, Heap};
use part_htm_core::api::spin_work;
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};

/// Raw single-threaded context: plain heap loads and stores, no conflict
/// detection, no instrumentation of any kind — the true uninstrumented baseline
/// the paper's speed-up figures divide by.
struct SeqCtx<'c> {
    heap: &'c Heap,
}

impl TxCtx for SeqCtx<'_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        spin_work(crate::PLAIN_ACCESS_COST);
        Ok(self.heap.load(addr))
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        spin_work(crate::PLAIN_ACCESS_COST);
        self.heap.store(addr, val);
        Ok(())
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    #[inline]
    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// The sequential reference executor.
pub struct Sequential<'r> {
    th: TmThread<'r>,
}

impl<'r> TmExecutor<'r> for Sequential<'r> {
    const NAME: &'static str = "Sequential";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self {
            th: TmThread::new(rt, thread_id),
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        w.reset();
        let mut ctx = SeqCtx {
            heap: self.th.rt.system().heap(),
        };
        for seg in 0..w.segments() {
            w.segment(seg, &mut ctx)
                .expect("direct execution cannot abort");
        }
        w.after_commit();
        self.th.stats.record_commit(CommitPath::Stm);
        CommitPath::Stm
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use part_htm_core::TxCtx;
    use rand::rngs::SmallRng;

    #[test]
    fn runs_directly() {
        struct W(htm_sim::Addr);
        impl Workload for W {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
                let v = ctx.read(self.0)?;
                ctx.work(5)?;
                ctx.write(self.0, v + 2)
            }
        }
        let rt = TmRuntime::with_defaults(1, 64);
        let mut e = Sequential::new(&rt, 0);
        e.execute(&mut W(rt.app(0)));
        e.execute(&mut W(rt.app(0)));
        assert_eq!(rt.verify_read(0), 4);
        assert_eq!(e.thread().stats.commits_total(), 2);
    }
}
