//! RingSTM (Spear, Michael, von Praun — SPAA'08): signatures + a global ring.
//!
//! Reads and writes are summarised in Bloom-filter signatures; committed writers
//! append their write signature to a global ring ordered by commit timestamp, and
//! in-flight transactions validate their read signature against every ring entry
//! newer than their start time. Part-HTM reuses exactly this validation machinery
//! for its partitioned path, so — as in the paper's evaluation — both protocols here
//! share the same ring size and signature geometry.
//!
//! This is the single-writer-commit variant: writers serialise on the ring lock for
//! {validate, publish signature, write back}.

use htm_sim::abort::TxResult;
use htm_sim::{AbortCode, Addr};
use part_htm_core::api::spin_work;
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};
use tm_sig::{Ring, Sig};

use crate::redo::RedoLog;

struct RingCtx<'c, 'r> {
    th: &'c TmThread<'r>,
    ring: &'c Ring,
    start: &'c mut u64,
    rsig: &'c mut Sig,
    wsig: &'c mut Sig,
    redo: &'c mut RedoLog,
}

impl TxCtx for RingCtx<'_, '_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        spin_work(crate::STM_READ_COST);
        if let Some(v) = self.redo.get(addr) {
            return Ok(v);
        }
        let v = self.th.hw.nt_read(addr);
        self.rsig.add(addr);
        // Poll the ring: validate against commits newer than our start time.
        if self.ring.timestamp_nt(&self.th.hw) != *self.start {
            match self.ring.validate_nt(&self.th.hw, self.rsig, *self.start) {
                Ok(ts) => *self.start = ts,
                Err(_) => return Err(AbortCode::Conflict),
            }
        }
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        spin_work(crate::STM_WRITE_COST);
        self.wsig.add(addr);
        self.redo.insert(addr, val);
        Ok(())
    }

    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// The RingSTM executor.
pub struct RingStm<'r> {
    th: TmThread<'r>,
    rsig: Sig,
    wsig: Sig,
    redo: RedoLog,
}

impl<'r> RingStm<'r> {
    fn try_once<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let ring = self.th.rt.ring();
        w.reset();
        self.rsig.clear();
        self.wsig.clear();
        self.redo.clear();
        let mut start = ring.timestamp_nt(&self.th.hw);

        {
            let mut ctx = RingCtx {
                th: &self.th,
                ring,
                start: &mut start,
                rsig: &mut self.rsig,
                wsig: &mut self.wsig,
                redo: &mut self.redo,
            };
            for seg in 0..w.segments() {
                if w.segment(seg, &mut ctx).is_err() {
                    return Err(());
                }
            }
        }

        if self.redo.is_empty() {
            // Read-only: every read was validated on arrival; the transaction
            // serialises at its last validation point.
            return Ok(());
        }
        // Writer commit under the ring lock: final validation, then publish the
        // write signature *before* writing values back, so a concurrent reader that
        // observes a new value necessarily sees a timestamp that makes it validate
        // against our signature.
        while self.th.hw.nt_cas(ring.lock_addr(), 0, 1).is_err() {
            htm_sim::vclock::yield_now();
        }
        let ok = match ring.validate_nt(&self.th.hw, &self.rsig, start) {
            Ok(_) => {
                let ts = self.th.hw.nt_read(ring.timestamp_addr()) + 1;
                ring.write_entry_nt(&self.th.hw, ts, &self.wsig);
                self.th.hw.nt_write(ring.timestamp_addr(), ts);
                for (a, v) in self.redo.iter() {
                    self.th.hw.nt_write(a, v);
                }
                true
            }
            Err(_) => false,
        };
        self.th.hw.nt_write(ring.lock_addr(), 0);
        if ok {
            Ok(())
        } else {
            Err(())
        }
    }
}

impl<'r> TmExecutor<'r> for RingStm<'r> {
    const NAME: &'static str = "RingSTM";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        let spec = rt.config().sig_spec;
        Self {
            th: TmThread::new(rt, thread_id),
            rsig: Sig::new(spec),
            wsig: Sig::new(spec),
            redo: RedoLog::default(),
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        if w.is_irrevocable() {
            // Irrevocable transactions take the ring lock *first*: with every writer
            // commit excluded, their reads are stable (no validation can fail, so
            // they can never be asked to abort). Writes stay redo-buffered and are
            // published exactly like a normal writer commit — signature and
            // timestamp before write-back — so concurrent readers validate against
            // them as usual.
            let ring = self.th.rt.ring();
            while self.th.hw.nt_cas(ring.lock_addr(), 0, 1).is_err() {
                htm_sim::vclock::yield_now();
            }
            w.reset();
            self.rsig.clear();
            self.wsig.clear();
            self.redo.clear();
            let mut start = ring.timestamp_nt(&self.th.hw);
            {
                let mut ctx = RingCtx {
                    th: &self.th,
                    ring,
                    start: &mut start,
                    rsig: &mut self.rsig,
                    wsig: &mut self.wsig,
                    redo: &mut self.redo,
                };
                for seg in 0..w.segments() {
                    w.segment(seg, &mut ctx)
                        .expect("irrevocable execution cannot abort");
                }
            }
            if !self.redo.is_empty() {
                let ts = self.th.hw.nt_read(ring.timestamp_addr()) + 1;
                ring.write_entry_nt(&self.th.hw, ts, &self.wsig);
                self.th.hw.nt_write(ring.timestamp_addr(), ts);
                for (a, v) in self.redo.iter() {
                    self.th.hw.nt_write(a, v);
                }
            }
            self.th.hw.nt_write(ring.lock_addr(), 0);
            w.after_commit();
            self.th.stats.record_commit(CommitPath::Stm);
            return CommitPath::Stm;
        }
        loop {
            if self.try_once(w).is_ok() {
                w.after_commit();
                self.th.stats.record_commit(CommitPath::Stm);
                return CommitPath::Stm;
            }
            self.th.stats.stm_aborts += 1;
            htm_sim::vclock::yield_now();
        }
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    struct Transfer {
        from: Addr,
        to: Addr,
    }

    impl Workload for Transfer {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let f = ctx.read(self.from)?;
            let t = ctx.read(self.to)?;
            ctx.write(self.from, f.wrapping_sub(1))?;
            ctx.write(self.to, t.wrapping_add(1))
        }
    }

    #[test]
    fn single_thread_commit_publishes_to_ring() {
        let rt = TmRuntime::with_defaults(1, 64);
        rt.setup_write(0, 10);
        let mut e = RingStm::new(&rt, 0);
        let mut w = Transfer {
            from: rt.app(0),
            to: rt.app(8),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Stm);
        assert_eq!(rt.verify_read(0), 9);
        assert_eq!(rt.verify_read(8), 1);
        let th = TmThread::new(&rt, 0);
        assert_eq!(rt.ring().timestamp_nt(&th.hw), 1);
        assert!(rt.ring().entry(1).snapshot_nt(&th.hw).contains(rt.app(0)));
    }

    #[test]
    fn conserved_sum_under_contention() {
        let rt = TmRuntime::with_defaults(4, 256);
        const ACCOUNTS: usize = 8;
        for i in 0..ACCOUNTS {
            rt.setup_write(i * 8, 100);
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = RingStm::new(rt, t);
                    for i in 0..80usize {
                        let from = (i + t) % ACCOUNTS;
                        let to = (i * 5 + t + 1) % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        let mut w = Transfer {
                            from: rt.app(from * 8),
                            to: rt.app(to * 8),
                        };
                        e.execute(&mut w);
                    }
                });
            }
        });
        let total: u64 = (0..ACCOUNTS).map(|i| rt.verify_read(i * 8)).sum();
        assert_eq!(total, 800);
        assert_eq!(
            rt.system().nt_read(rt.ring().lock_addr()),
            0,
            "ring lock released"
        );
    }
}
