//! HTM-GL: best-effort HTM with the default single-global-lock fallback.
//!
//! The industry-default usage of Intel TSX (§1 "GL-software path"): try the
//! transaction as pure hardware a bounded number of times (the paper uses 5, §7),
//! then acquire the global lock. Hardware attempts subscribe the lock so a fallback
//! acquisition aborts them; the anti-lemming policy waits for the lock to be free
//! before retrying in hardware.

use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmTx};
use part_htm_core::api::{spin_work, XABORT_GLOCK};
use part_htm_core::parthtm::{run_global_lock, wait_glock_released};
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};

/// Completely uninstrumented hardware-transaction context: HTM-GL adds no software
/// metadata at all — that is its appeal and its limitation.
pub struct PureHtmCtx<'c, 'a, 's> {
    /// The enclosing hardware transaction.
    pub tx: &'c mut HtmTx<'a, 's>,
}

impl TxCtx for PureHtmCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        self.tx.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// The HTM-GL executor.
pub struct HtmGl<'r> {
    th: TmThread<'r>,
}

impl<'r> HtmGl<'r> {
    fn try_htm<W: Workload>(&mut self, w: &mut W) -> TxResult<()> {
        w.reset();
        let glock = self.th.rt.glock();
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            match tx.read(glock) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = PureHtmCtx { tx: &mut tx };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }
}

impl<'r> TmExecutor<'r> for HtmGl<'r> {
    const NAME: &'static str = "HTM-GL";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self {
            th: TmThread::new(rt, thread_id),
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        let retries = self.th.rt.config().fast_retries;
        if !w.is_irrevocable() {
            for _ in 0..retries {
                wait_glock_released(&self.th);
                match self.try_htm(w) {
                    Ok(()) => {
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    // TSX clears the "retry may succeed" hint on capacity and
                    // interrupt aborts: production fallback code takes the lock
                    // immediately instead of burning the remaining retries.
                    Err(code) if code.is_resource_failure() => break,
                    Err(_) => {}
                }
            }
        }
        self.th.stats.fallbacks_gl += 1;
        run_global_lock(&self.th, w, false);
        w.after_commit();
        self.th.stats.record_commit(CommitPath::GlobalLock);
        CommitPath::GlobalLock
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::HtmConfig;
    use part_htm_core::TmConfig;
    use rand::rngs::SmallRng;

    struct Incr {
        n: usize,
        base: Addr,
    }

    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            for i in 0..self.n {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    #[test]
    fn small_tx_commits_in_hardware() {
        let rt = TmRuntime::with_defaults(1, 256);
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Incr {
            n: 4,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(rt.verify_read(0), 1);
        assert_eq!(e.thread().stats.commits_htm, 1);
    }

    #[test]
    fn capacity_limited_tx_falls_to_global_lock() {
        let rt = TmRuntime::new(
            HtmConfig {
                l1_sets: 4,
                l1_ways: 2,
                ..HtmConfig::default()
            },
            TmConfig::default(),
            1,
            2048,
        );
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Incr {
            n: 32,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);
        for i in 0..32 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
        // Exactly one wasted hardware attempt: the capacity abort carries no
        // retry hint, so the fallback takes the lock immediately.
        assert_eq!(e.thread().stats.fast_aborts, 1);
        assert_eq!(rt.system().nt_read(rt.glock()), 0);
    }

    #[test]
    fn concurrent_increments_exact() {
        let rt = TmRuntime::with_defaults(4, 256);
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = HtmGl::new(rt, t);
                    let mut w = Incr {
                        n: 8,
                        base: rt.app(0),
                    };
                    for _ in 0..50 {
                        e.execute(&mut w);
                    }
                });
            }
        });
        for i in 0..8 {
            assert_eq!(rt.verify_read(i * 8), 200);
        }
    }
}
