//! SpHT — Split Hardware Transactions (Lev & Maessen, PPoPP'08): the *lazy*
//! transaction-splitting alternative the paper contrasts Part-HTM against (§3).
//!
//! Like Part-HTM, SpHT executes a transaction as a sequence of sub-HTM
//! transactions. Unlike Part-HTM's eager write-in-place, SpHT keeps writes
//! **invisible between segments**: each sub-HTM transaction starts by *replaying the
//! redo log* (re-applying every write accumulated so far) and ends — except the last
//! one — by *restoring the original values* (hiding the writes again) before
//! committing. Reads are logged by value and revalidated at every sub-transaction
//! begin, which restores isolation across the unprotected gaps.
//!
//! The paper's criticism (§3) falls straight out of this structure: "the last
//! sub-HTM transaction still has a redo-log that is as big as the original
//! transaction" — every sub-transaction's hardware write set contains the *whole*
//! accumulated redo log plus the hide-phase restores, so splitting does not shrink
//! the write footprint the way Part-HTM's eager scheme does. The `ablations` bench
//! compares the two on a space-limited workload.
//!
//! Upsides SpHT keeps: aborting a split transaction needs no undo (memory is
//! pristine between segments), and the slow path needs no `active_tx` handshake
//! (between segments a split transaction holds no visible state).

use htm_sim::abort::TxResult;
use htm_sim::util::FastMap;
use htm_sim::{AbortCode, Addr, HtmTx};
use part_htm_core::api::{spin_work, XABORT_GLOCK};
use part_htm_core::ctx::SoftwareCtx;
use part_htm_core::parthtm::{run_global_lock, wait_glock_released};
use part_htm_core::{CommitPath, TmExecutor, TmRuntime, TmThread, TxCtx, Workload};

use crate::htm_gl::PureHtmCtx;

/// Explicit-abort payload: a logged read changed value between sub-transactions.
const XABORT_INVALID: u8 = 0xB1;

/// SpHT's per-transaction logs.
#[derive(Default)]
struct Logs {
    /// Intended values of every written location (replayed at each sub begin).
    redo: FastMap<Addr, u64>,
    /// Original memory value of every written location, captured at first write
    /// (restored by the hide phase of every non-final sub-transaction).
    orig: FastMap<Addr, u64>,
    /// Value-logged reads (validated at each sub begin). Only reads served from
    /// memory are logged; reads of own written locations come from the redo log.
    reads: Vec<(Addr, u64)>,
}

impl Logs {
    fn clear(&mut self) {
        self.redo.clear();
        self.orig.clear();
        self.reads.clear();
    }
}

struct SpHtCtx<'c, 'a, 's> {
    tx: &'c mut HtmTx<'a, 's>,
    logs: &'c mut Logs,
}

impl TxCtx for SpHtCtx<'_, '_, '_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if let Some(&v) = self.logs.redo.get(&addr) {
            return Ok(v);
        }
        let v = self.tx.read(addr)?;
        self.logs.reads.push((addr, v));
        Ok(v)
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        if !self.logs.orig.contains_key(&addr) {
            let old = self.tx.read(addr)?;
            self.logs.orig.insert(addr, old);
        }
        self.logs.redo.insert(addr, val);
        self.tx.write(addr, val)
    }

    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// The SpHT executor: fast path (pure HTM) → split path → global lock.
pub struct SpHt<'r> {
    th: TmThread<'r>,
    logs: Logs,
}

impl<'r> SpHt<'r> {
    fn try_htm<W: Workload>(&mut self, w: &mut W) -> TxResult<()> {
        w.reset();
        let glock = self.th.rt.glock();
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            match tx.read(glock) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = PureHtmCtx { tx: &mut tx };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }

    /// One attempt of the split path. `Err(())` aborts the whole transaction
    /// (memory is already pristine — writes were hidden).
    fn try_split<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let rt = self.th.rt;
        let glock = rt.glock();
        self.logs.clear();
        w.reset();
        let nseg = w.segments();
        let last_htm_seg = match (0..nseg).rev().find(|&s| !w.software_segment(s)) {
            Some(s) => s,
            None => {
                // Pure computation: nothing transactional to do.
                for seg in 0..nseg {
                    let mut ctx = SoftwareCtx { th: &self.th.hw, mask_values: false };
                    w.segment(seg, &mut ctx).expect("software segments cannot abort");
                }
                return Ok(());
            }
        };

        for seg in 0..nseg {
            if w.software_segment(seg) {
                let mut ctx = SoftwareCtx { th: &self.th.hw, mask_values: false };
                w.segment(seg, &mut ctx).expect("software segments cannot abort");
                continue;
            }
            let snap = w.snapshot();
            let reads_mark = self.logs.reads.len();
            let mut attempts = 0u32;
            loop {
                let redo_snapshot: Vec<(Addr, u64)> =
                    self.logs.redo.iter().map(|(&a, &v)| (a, v)).collect();
                let orig_snapshot: Vec<(Addr, u64)> =
                    self.logs.orig.iter().map(|(&a, &v)| (a, v)).collect();
                let mut tx = self.th.hw.begin();
                let body: TxResult<()> = 'b: {
                    // Subscribe the global lock (the split path has no active_tx
                    // handshake: between segments a split transaction holds no
                    // visible state, so the slow path never has to wait for it).
                    match tx.read(glock) {
                        Ok(0) => {}
                        Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                        Err(e) => break 'b Err(e),
                    }
                    // Revalidate every logged read (isolation across the gap).
                    for &(a, v) in &self.logs.reads {
                        match tx.read(a) {
                            Ok(cur) if cur == v => {}
                            Ok(_) => break 'b Err(tx.xabort(XABORT_INVALID)),
                            Err(e) => break 'b Err(e),
                        }
                    }
                    // Replay the redo log: this is the step whose footprint grows
                    // with every segment (the paper's criticism of lazy splitting).
                    for &(a, v) in &redo_snapshot {
                        if let Err(e) = tx.write(a, v) {
                            break 'b Err(e);
                        }
                    }
                    {
                        let mut ctx = SpHtCtx { tx: &mut tx, logs: &mut self.logs };
                        if let Err(e) = w.segment(seg, &mut ctx) {
                            break 'b Err(e);
                        }
                    }
                    if seg != last_htm_seg {
                        // Hide phase: restore original values so nothing is visible
                        // when this sub-transaction commits.
                        for (a, v) in self.logs.orig.iter() {
                            if let Err(e) = tx.write(*a, *v) {
                                break 'b Err(e);
                            }
                        }
                    }
                    Ok(())
                };
                let res = match body {
                    Ok(()) => tx.commit(),
                    Err(code) => {
                        drop(tx);
                        Err(code)
                    }
                };
                match res {
                    Ok(()) => break,
                    Err(code) => {
                        self.th.stats.sub_aborts += 1;
                        // Roll the software logs back to the segment entry.
                        self.logs.reads.truncate(reads_mark);
                        self.logs.redo = redo_snapshot.into_iter().collect();
                        self.logs.orig = orig_snapshot.into_iter().collect();
                        w.restore(snap.clone());
                        attempts += 1;
                        let give_up = matches!(code, AbortCode::Explicit(x) if x == XABORT_INVALID)
                            || attempts >= rt.config().sub_retries;
                        if give_up {
                            self.th.stats.global_aborts += 1;
                            return Err(());
                        }
                        htm_sim::vclock::yield_now();
                    }
                }
            }
        }
        Ok(())
    }
}

impl<'r> TmExecutor<'r> for SpHt<'r> {
    const NAME: &'static str = "SpHT";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self { th: TmThread::new(rt, thread_id), logs: Logs::default() }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        let cfg = self.th.rt.config().clone();
        if w.is_irrevocable() {
            self.th.stats.fallbacks_gl += 1;
            run_global_lock(&self.th, w, false);
            w.after_commit();
            self.th.stats.record_commit(CommitPath::GlobalLock);
            return CommitPath::GlobalLock;
        }
        if !cfg.skip_fast && w.profiled_resource_limited() != Some(true) {
            let mut fails = 0;
            loop {
                wait_glock_released(&self.th);
                match self.try_htm(w) {
                    Ok(()) => {
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    // No-retry hint: resource failures split immediately.
                    Err(code) if code.is_resource_failure() => {
                        self.th.stats.fallbacks_partitioned += 1;
                        break;
                    }
                    Err(_) => {
                        fails += 1;
                        if fails >= cfg.fast_retries {
                            self.th.stats.fallbacks_gl += 1;
                            run_global_lock(&self.th, w, false);
                            w.after_commit();
                            self.th.stats.record_commit(CommitPath::GlobalLock);
                            return CommitPath::GlobalLock;
                        }
                    }
                }
            }
        }
        let mut gfails = 0;
        loop {
            wait_glock_released(&self.th);
            if self.try_split(w).is_ok() {
                w.after_commit();
                self.th.stats.record_commit(CommitPath::SubHtm);
                return CommitPath::SubHtm;
            }
            gfails += 1;
            if gfails >= cfg.part_retries {
                self.th.stats.fallbacks_gl += 1;
                run_global_lock(&self.th, w, false);
                w.after_commit();
                self.th.stats.record_commit(CommitPath::GlobalLock);
                return CommitPath::GlobalLock;
            }
            spin_work(cfg.backoff_units << gfails.min(6));
            htm_sim::vclock::yield_now();
        }
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::HtmConfig;
    use part_htm_core::TmConfig;
    use rand::rngs::SmallRng;

    struct Incr {
        n: usize,
        segs: usize,
        base: Addr,
    }

    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segments(&self) -> usize {
            self.segs
        }
        fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
            let per = self.n / self.segs;
            for i in seg * per..(seg + 1) * per {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    #[test]
    fn small_tx_commits_in_hardware() {
        let rt = TmRuntime::with_defaults(1, 512);
        let mut e = SpHt::new(&rt, 0);
        let mut w = Incr { n: 4, segs: 1, base: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(rt.verify_read(0), 1);
    }

    #[test]
    fn time_limited_tx_commits_on_split_path() {
        // Time-limited (not space-limited): SpHT's sweet spot.
        struct Long {
            base: Addr,
        }
        impl Workload for Long {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn segments(&self) -> usize {
                4
            }
            fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
                let a = self.base + (seg * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.work(500)?;
                ctx.write(a, v + 1)
            }
        }
        let htm = HtmConfig { quantum: 900, ..HtmConfig::default() };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, 64);
        let mut e = SpHt::new(&rt, 0);
        assert_eq!(e.execute(&mut Long { base: rt.app(0) }), CommitPath::SubHtm);
        for i in 0..4 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
    }

    #[test]
    fn writes_invisible_between_segments() {
        // Deterministic hiding check: the workload writes word 0 in segment 0,
        // then a *software* segment (outside any sub-transaction) hands control to
        // a checker thread, which samples memory while the split transaction is
        // parked between its sub-transactions. The hidden write must not be
        // visible; after the final segment commits, both words appear atomically.
        use std::sync::atomic::{AtomicU8, Ordering};
        static PHASE: AtomicU8 = AtomicU8::new(0); // 0=idle 1=parked 2=checked

        struct TwoPhase {
            base: Addr,
        }
        impl Workload for TwoPhase {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn segments(&self) -> usize {
                3
            }
            fn software_segment(&self, seg: usize) -> bool {
                seg == 1
            }
            fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
                match seg {
                    0 => {
                        let v = ctx.read(self.base)?;
                        ctx.write(self.base, v + 1)
                    }
                    1 => {
                        // Park between sub-transactions until the checker sampled.
                        PHASE.store(1, Ordering::SeqCst);
                        while PHASE.load(Ordering::SeqCst) != 2 {
                            htm_sim::vclock::yield_now();
                        }
                        Ok(())
                    }
                    _ => {
                        let v = ctx.read(self.base + 8)?;
                        ctx.write(self.base + 8, v + 1)
                    }
                }
            }
        }

        let rt = TmRuntime::new(
            HtmConfig::default(),
            TmConfig { skip_fast: true, ..TmConfig::default() },
            2,
            64,
        );
        std::thread::scope(|s| {
            let rt = &rt;
            s.spawn(move || {
                let mut e = SpHt::new(rt, 0);
                let mut w = TwoPhase { base: rt.app(0) };
                e.execute(&mut w);
            });
            s.spawn(move || {
                while PHASE.load(std::sync::atomic::Ordering::SeqCst) != 1 {
                    htm_sim::vclock::yield_now();
                }
                // The split transaction is parked between sub-transactions: its
                // segment-0 write must be hidden.
                assert_eq!(rt.verify_read(0), 0, "write leaked between sub-transactions");
                assert_eq!(rt.verify_read(8), 0);
                PHASE.store(2, std::sync::atomic::Ordering::SeqCst);
            });
        });
        // After the final sub-transaction, both writes are visible.
        assert_eq!(rt.verify_read(0), 1);
        assert_eq!(rt.verify_read(8), 1);
    }

    #[test]
    fn space_limited_tx_defeats_lazy_splitting() {
        // The paper's §3 criticism, as an executable fact: a transaction whose
        // *write set* exceeds HTM capacity cannot be rescued by lazy splitting
        // (the last sub-transaction replays the whole redo log), so SpHT ends on
        // the global lock where Part-HTM commits on its partitioned path.
        let htm = HtmConfig { l1_sets: 16, l1_ways: 4, quantum: 100_000, ..HtmConfig::default() };
        let rt = TmRuntime::new(htm.clone(), TmConfig::default(), 1, 2048);
        let mut e = SpHt::new(&rt, 0);
        let mut w = Incr { n: 96, segs: 8, base: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);

        let rt2 = TmRuntime::new(htm, TmConfig::default(), 1, 2048);
        let mut e2 = part_htm_core::PartHtm::new(&rt2, 0);
        let mut w2 = Incr { n: 96, segs: 8, base: rt2.app(0) };
        assert_eq!(e2.execute(&mut w2), CommitPath::SubHtm);
    }
}
