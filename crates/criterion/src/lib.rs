//! Workspace-local, dependency-free stand-in for the subset of the crates.io
//! `criterion` 0.5 API this repository's bench targets use.
//!
//! The build environment has no network access (see `docs/offline.md`), so the
//! real `criterion` cannot be fetched. This shim keeps every `benches/*.rs`
//! target compiling and running under `cargo bench` unchanged, with a simple
//! mean/min/max wall-clock measurement loop instead of criterion's statistical
//! machinery (no outlier analysis, no HTML reports, no comparison to saved
//! baselines). Results print one line per benchmark:
//!
//! ```text
//! group/param            time: [min 1.234 ms  mean 1.250 ms  max 1.301 ms]  (12 samples)
//! ```

use std::time::{Duration, Instant};

/// Re-export hint: `criterion::black_box`.
pub use std::hint::black_box;

/// Measurement types (only wall-clock time in the shim).
pub mod measurement {
    /// Wall-clock measurement marker.
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark named after its parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self { id: p.to_string() }
    }

    /// Benchmark with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        Self {
            id: format!("{name}/{p}"),
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Measure `f`, calling it repeatedly: a warm-up phase, then `sample_size`
    /// timed samples (each one call — the workloads here are macro-benchmarks).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let meas_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            // Respect the measurement-time budget as an upper bound.
            if meas_start.elapsed() > self.measurement * 4 {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'c mut Criterion,
    _m: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measurement-time budget (upper bound in the shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Run one benchmark without an input value.
    pub fn bench_function(&mut self, id: BenchmarkId, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Finish the group (no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} time: [no samples]");
        return;
    }
    let min = *samples.iter().min().unwrap();
    let max = *samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<40} time: [min {}  mean {}  max {}]  ({} samples)",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max),
        samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            _parent: self,
            _m: std::marker::PhantomData,
        }
    }
}

/// `criterion_group!(name, fn1, fn2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// `criterion_main!(group1, group2, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &v| {
            b.iter(|| {
                calls += 1;
                black_box(v * 2)
            })
        });
        g.finish();
        assert!(calls >= 3, "warm-up + samples must call the closure");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_dur(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(2)).ends_with("s"));
    }
}
