//! # part-htm-core — the Part-HTM and Part-HTM-O protocols
//!
//! Part-HTM (§4–§5 of the paper) is a hybrid TM that rescues transactions aborted by
//! best-effort HTM's **resource limitations** (capacity and time). Its three-path
//! design:
//!
//! 1. **Fast path** ([`PartHtm`] first tries the whole transaction as a single,
//!    lightly instrumented hardware transaction);
//! 2. **Partitioned path** (on a resource failure, the transaction is re-executed as
//!    a sequence of small *sub-HTM* transactions glued together by a software
//!    framework of Bloom-filter signatures, a global ring, a write-locks signature
//!    and a value-based undo log);
//! 3. **Slow path** (a single global lock, only for irrevocable transactions and
//!    pathological contention).
//!
//! [`PartHtmO`] is the opacity-preserving variant (§5.5): encounter-time lock
//! detection through *address-embedded write locks* (a stolen bit co-located with the
//! datum) and global-timestamp subscription at every sub-HTM begin.
//!
//! The crate also defines the protocol-agnostic execution interface shared with the
//! baselines: [`Workload`], [`TxCtx`], [`TmExecutor`], [`TmRuntime`] and
//! [`TmThread`].

#![deny(missing_docs)]

pub mod api;
pub mod ctx;
pub mod opaque;
pub mod parthtm;
pub mod planner;
pub mod runtime;
pub mod stats;
pub mod stretch;
pub mod undo;

pub use api::{
    spin_work, CommitPath, TmExecutor, TxCtx, Workload, LOCK_BIT, VALUE_MASK, XABORT_GLOCK,
    XABORT_LOCKED, XABORT_NOT_QUIET, XABORT_TS_CHANGED, XABORT_UNDO_FULL,
};
pub use opaque::PartHtmO;
pub use parthtm::PartHtm;
pub use planner::{
    backend_group_cap, batch_site, build_plan, FastProfile, FastRoute, PlanStep, SiteTable,
};
pub use runtime::{TmConfig, TmRuntime, TmThread};
pub use stats::TmStats;
pub use stretch::{StretchCtx, StretchHtm};
