//! The shared runtime: heap layout of the global and per-thread metadata, and the
//! per-thread context every executor builds on.

use crate::planner::SiteTable;
use crate::stats::TmStats;
use htm_sim::{Addr, HeapBuilder, HtmConfig, HtmSystem, HtmThread};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tm_sig::{
    CacheAligned, HeapSig, ResetMode, Ring, RingSummary, ShardedRing, ShardedSummary, SigArena,
    SigSpec, SummaryTuning,
};

/// Protocol configuration (paper defaults).
#[derive(Clone, Debug)]
pub struct TmConfig {
    /// Signature geometry (paper: 2048 bits = 4 cache lines, §5.1).
    pub sig_spec: SigSpec,
    /// Global ring entries (power of two). RingSTM and Part-HTM share the same ring
    /// size and signature, as in the evaluation setup (§7). With sharding, this is
    /// the entry count *per shard*.
    pub ring_entries: usize,
    /// Ring shards (power of two, clamped to the signature word count and
    /// [`tm_sig::MAX_RING_SHARDS`]). 1 recovers the single global ring; the
    /// default of 8 gives disjoint-region commits independent serialisation
    /// points (see `docs/ring-sharding.md`).
    pub ring_shards: usize,
    /// Hardware attempts on the fast path before concluding the failure mode
    /// (§7: competitors "retry a transaction 5 times as HTM before falling back").
    pub fast_retries: u32,
    /// Sub-HTM attempts before aborting the enclosing global transaction (§5.3.5
    /// "retries for a limited number of times").
    pub sub_retries: u32,
    /// Global (partitioned-path) attempts before the slow path (§5.3.7: "the
    /// transaction is retried 5 times before falling back to the slow path").
    pub part_retries: u32,
    /// Skip the fast path entirely — the Part-HTM-no-fast variant of Fig. 3(b).
    pub skip_fast: bool,
    /// Run the in-flight validation after every sub-HTM commit (the paper's choice,
    /// §5.3.6) instead of only once before the global commit (the serializability
    /// minimum; ablation knob).
    pub validate_every_sub: bool,
    /// Per-thread undo-log arena size in words (2 words per logged write).
    pub undo_words: usize,
    /// Base of the exponential backoff after a global abort, in spin-work units.
    pub backoff_units: u64,
    /// Run the ring summaries under the epoch-bank reset protocol (stall-free
    /// resets, adaptive density controller; `docs/ring-sharding.md`,
    /// "Epoch-based resets"). `false` pins PR 3's generation-seqlock protocol
    /// with the fixed legacy threshold — the `ring_shards: 1` differential
    /// oracles set this to keep the pre-epoch behaviour exact.
    pub summary_epochs: bool,
    /// Density threshold numerator: a shard summary wants a reset once more
    /// than `num/den` of its live bits are set. Initial value of the adaptive
    /// controller (which only moves it when `summary_epochs` is on).
    pub summary_density_num: u32,
    /// Density threshold denominator.
    pub summary_density_den: u32,
    /// Publishes between summary density checks (controller initial value).
    pub summary_check_interval: u64,
    /// Route the signature hot loops through the original scalar word loops
    /// instead of the 4-wide-unrolled kernels ([`tm_sig::kernels`]): the
    /// differential oracle and the `membench` baseline. Process-wide (the
    /// kernels dispatch off one flag), applied by [`TmRuntime::new`]; every
    /// scalar dispatch is counted into [`TmStats::scalar_kernel_falls`].
    pub scalar_kernels: bool,
    /// Drive the executors from the adaptive abort-profile controller
    /// ([`crate::planner`]): learned fast-path demotion (the static
    /// [`crate::Workload::profiled_resource_limited`] hint becomes a prior
    /// with a periodic re-probe), dynamic merging of consecutive declared
    /// segments into one sub-HTM transaction each (un-merged on
    /// capacity-class aborts), and per-site retry budgets scaled by observed
    /// success odds. `false` pins today's static behaviour exactly — the
    /// hint is absolute, the legacy resource-streak profiler routes unhinted
    /// sites, every `plan_group` declared segments form one sub-HTM, retry
    /// budgets are the paper constants — and is the differential oracle for
    /// the planner proptests (`docs/adaptive-partitioner.md`).
    pub adaptive_plan: bool,
    /// Static merge factor: run every `plan_group` consecutive non-software
    /// segments as one sub-HTM transaction (1 = the workload's declared
    /// plan, unchanged). With `adaptive_plan` this is only the *initial*
    /// group size per site; without it the plan is pinned, which is how the
    /// benchmarks express hand-tuned static segmentations.
    pub plan_group: u32,
}

impl Default for TmConfig {
    fn default() -> Self {
        Self {
            sig_spec: SigSpec::PAPER,
            ring_entries: 1024,
            ring_shards: 8,
            fast_retries: 5,
            sub_retries: 5,
            part_retries: 5,
            skip_fast: false,
            validate_every_sub: true,
            undo_words: 16 * 1024,
            backoff_units: 64,
            summary_epochs: true,
            summary_density_num: 1,
            summary_density_den: 3,
            summary_check_interval: 256,
            scalar_kernels: false,
            adaptive_plan: true,
            plan_group: 1,
        }
    }
}

impl TmConfig {
    /// The [`SummaryTuning`] this configuration selects for every shard
    /// summary.
    pub fn summary_tuning(&self) -> SummaryTuning {
        SummaryTuning {
            mode: if self.summary_epochs {
                ResetMode::Epoch
            } else {
                ResetMode::Seqlock
            },
            density_num: self.summary_density_num,
            density_den: self.summary_density_den,
            check_interval: self.summary_check_interval,
        }
    }
}

/// Heap handles of one thread's local metadata (§5.1 "Local Metadata"). The
/// signatures are heap-resident so that updating them inside hardware transactions
/// consumes HTM capacity, as in the real system.
#[derive(Clone, Copy, Debug)]
pub struct ThreadArena {
    /// read-set-signature.
    pub read_sig: HeapSig,
    /// write-set-signature (current sub-HTM transaction on the partitioned path).
    pub write_sig: HeapSig,
    /// aggregate write-set-signature (all committed sub-HTM transactions of the
    /// enclosing global transaction).
    pub agg_sig: HeapSig,
    /// Undo-log arena: pairs of (address, old value) words.
    pub undo_base: Addr,
    /// Undo-log arena capacity in words.
    pub undo_words: usize,
}

/// The shared state of one experiment: the simulated machine plus the global TM
/// metadata (§5.1 "Global Metadata") and the application region.
///
/// ```
/// use part_htm_core::TmRuntime;
///
/// // 2 worker threads, 128 words of application data, default (Haswell-like) HTM.
/// let rt = TmRuntime::with_defaults(2, 128);
/// rt.setup_write(3, 42);
/// assert_eq!(rt.verify_read(3), 42);
/// assert!(rt.system().heap().len() > 128); // metadata lives in the same heap
/// ```
pub struct TmRuntime {
    sys: HtmSystem,
    cfg: TmConfig,
    threads: usize,
    /// The global lock of the slow path.
    glock: Addr,
    /// Count of transactions running in the partitioned path.
    active_tx: Addr,
    /// NOrec's global sequence lock (global metadata so every baseline shares the
    /// same runtime).
    seqlock: Addr,
    /// The global ring, sharded by signature word range (shard 0 doubles as the
    /// single-ring view the baselines use).
    ring: ShardedRing,
    /// Host-side summary signatures of everything published to each ring shard
    /// since its last reset (the validation fast path). Deliberately *not* in the
    /// simulated heap: validators probe them non-transactionally on every
    /// in-flight validation, and heap reads there would doom concurrent hardware
    /// publishers.
    summaries: ShardedSummary,
    /// Host-side per-site abort profiles driving the adaptive planner. Like
    /// the summaries, deliberately *not* in the simulated heap: the
    /// controller is a scheduling heuristic and must not consume simulated
    /// HTM capacity or create simulated conflicts.
    sites: SiteTable,
    write_locks: HeapSig,
    arenas: Vec<ThreadArena>,
    app_base: Addr,
    app_words: usize,
}

impl TmRuntime {
    /// Build a runtime for `threads` worker threads with `app_words` words of
    /// application data. The heap is sized to fit all metadata plus the application
    /// region.
    pub fn new(mut htm_cfg: HtmConfig, cfg: TmConfig, threads: usize, app_words: usize) -> Self {
        assert!((1..=64).contains(&threads));
        htm_cfg.max_threads = threads;
        let spec = cfg.sig_spec;

        let mut b = HeapBuilder::new(u32::MAX as usize);
        let glock = b.alloc_lines(1);
        let active_tx = b.alloc_lines(1);
        let seqlock = b.alloc_lines(1);
        let ring = ShardedRing::alloc(&mut b, cfg.ring_shards, cfg.ring_entries, spec);
        let write_locks = HeapSig::alloc(&mut b, spec);
        let arenas: Vec<ThreadArena> = (0..threads)
            .map(|_| ThreadArena {
                read_sig: HeapSig::alloc(&mut b, spec),
                write_sig: HeapSig::alloc(&mut b, spec),
                agg_sig: HeapSig::alloc(&mut b, spec),
                undo_base: b.alloc_lines(cfg.undo_words.div_ceil(8)),
                undo_words: cfg.undo_words,
            })
            .collect();
        let app_base = b.alloc_lines(app_words.div_ceil(8));
        let total = b.used();

        let sys = HtmSystem::new(htm_cfg, total);
        let summaries = ring.new_summary_tuned(cfg.summary_tuning());
        // With an explicit backend, the planner's merge ceiling scales with
        // the backend's write-set budget (its capacity class:
        // [`crate::planner::backend_group_cap`]). Backend-less configs keep
        // the unconditional MAX_GROUP ceiling — the legacy differential
        // oracles pin that behaviour bit-for-bit, and their capacity
        // landscape is probed dynamically by split/merge anyway.
        let group_cap = match sys.config().backend {
            Some(_) => crate::planner::backend_group_cap(sys.capacity_model().write_lines_max()),
            None => crate::planner::MAX_GROUP,
        };
        let sites = SiteTable::with_group_cap(cfg.plan_group, group_cap);
        tm_sig::kernels::set_scalar(cfg.scalar_kernels);
        Self {
            sys,
            cfg,
            threads,
            glock,
            active_tx,
            seqlock,
            ring,
            summaries,
            sites,
            write_locks,
            arenas,
            app_base,
            app_words,
        }
    }

    /// Convenience constructor with default HTM and TM configs.
    pub fn with_defaults(threads: usize, app_words: usize) -> Self {
        Self::new(
            HtmConfig::default(),
            TmConfig::default(),
            threads,
            app_words,
        )
    }

    /// The simulated machine.
    pub fn system(&self) -> &HtmSystem {
        &self.sys
    }

    /// Protocol configuration.
    pub fn config(&self) -> &TmConfig {
        &self.cfg
    }

    /// Number of worker threads this runtime was built for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Global-lock word address.
    pub fn glock(&self) -> Addr {
        self.glock
    }

    /// `active_tx` counter address.
    pub fn active_tx(&self) -> Addr {
        self.active_tx
    }

    /// NOrec sequence-lock address.
    pub fn seqlock(&self) -> Addr {
        self.seqlock
    }

    /// The sharded global ring.
    pub fn sharded_ring(&self) -> &ShardedRing {
        &self.ring
    }

    /// The per-shard host-side summary signatures (validation fast path).
    pub fn summaries(&self) -> &ShardedSummary {
        &self.summaries
    }

    /// The per-site abort-profile table of the adaptive planner.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// The single-ring view: shard 0, which is a complete [`Ring`]. The RingSTM
    /// baseline publishes full signatures through it, so with `ring_shards: 1`
    /// the pre-sharding behaviour is recovered exactly.
    pub fn ring(&self) -> &Ring {
        self.ring.shard(0)
    }

    /// Shard 0's host-side summary (single-ring view; see [`TmRuntime::ring`]).
    pub fn summary(&self) -> &RingSummary {
        self.summaries.shard(0)
    }

    /// The global write-locks signature.
    pub fn write_locks(&self) -> &HeapSig {
        &self.write_locks
    }

    /// Thread `id`'s local-metadata arena.
    pub fn arena(&self, id: usize) -> ThreadArena {
        self.arenas[id]
    }

    /// Base address of the application region.
    pub fn app_base(&self) -> Addr {
        self.app_base
    }

    /// Size of the application region in words.
    pub fn app_words(&self) -> usize {
        self.app_words
    }

    /// Address of application word `i` (bounds-checked).
    #[inline]
    pub fn app(&self, i: usize) -> Addr {
        debug_assert!(
            i < self.app_words,
            "app index {i} out of {}",
            self.app_words
        );
        self.app_base + i as Addr
    }

    /// Raw store for single-threaded experiment setup (no conflict detection).
    pub fn setup_write(&self, i: usize, val: u64) {
        self.sys.heap().store(self.app(i), val);
    }

    /// Raw load for single-threaded verification (no conflict detection).
    pub fn setup_read(&self, i: usize) -> u64 {
        self.sys.heap().load(self.app(i))
    }

    /// Strongly atomic read of application word `i` (for cross-thread verification
    /// while transactions may still be running).
    pub fn verify_read(&self, i: usize) -> u64 {
        self.sys.nt_read(self.app(i))
    }
}

/// Per-thread context shared by every executor: the hardware thread handle, an RNG
/// and the protocol statistics.
pub struct TmThread<'r> {
    /// The runtime this thread belongs to.
    pub rt: &'r TmRuntime,
    /// The hardware-thread handle (hardware statistics live in `hw.stats`).
    pub hw: HtmThread<'r>,
    /// Deterministic per-thread RNG (seeded by thread id).
    pub rng: SmallRng,
    /// Protocol statistics, padded to a cache line: worker threads bump their
    /// counters on every transaction, and without the padding two contexts
    /// allocated back to back would false-share (`Deref` keeps every
    /// `stats.field` call site unchanged).
    pub stats: CacheAligned<TmStats>,
    id: usize,
}

impl<'r> TmThread<'r> {
    /// Create the context for worker `id`.
    pub fn new(rt: &'r TmRuntime, id: usize) -> Self {
        Self {
            rt,
            hw: rt.sys.thread(id),
            rng: SmallRng::seed_from_u64(0xC0FFEE ^ (id as u64) << 16),
            stats: CacheAligned::new(TmStats::default()),
            id,
        }
    }

    /// Worker id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// This thread's metadata arena.
    pub fn arena(&self) -> ThreadArena {
        self.rt.arena(self.id)
    }

    /// Fold this thread's host-side counters — the signature-arena
    /// reuse/alloc tallies and the scalar-kernel dispatch count — into
    /// `stats`. The harness calls it once after the workload loop; executors
    /// may call it earlier, the counters drain idempotently.
    pub fn harvest_host_counters(&mut self) {
        let (reuses, allocs) = SigArena::with(|a| a.take_counters());
        self.stats.arena_reuses += reuses;
        self.stats.arena_allocs += allocs;
        self.stats.scalar_kernel_falls += tm_sig::kernels::take_scalar_calls();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_disjoint_and_aligned() {
        let rt = TmRuntime::with_defaults(4, 1000);
        assert_eq!(rt.glock() % 8, 0);
        assert_ne!(
            htm_sim::line_of(rt.glock()),
            htm_sim::line_of(rt.active_tx())
        );
        assert_ne!(
            htm_sim::line_of(rt.active_tx()),
            htm_sim::line_of(rt.seqlock())
        );
        // Arenas do not overlap the app region.
        for t in 0..4 {
            let a = rt.arena(t);
            assert!(a.undo_base + a.undo_words as Addr <= rt.app_base());
        }
        assert!(rt.system().heap().len() >= rt.app_base() as usize + 1000);
    }

    #[test]
    fn app_read_write_roundtrip() {
        let rt = TmRuntime::with_defaults(2, 64);
        rt.setup_write(10, 1234);
        assert_eq!(rt.setup_read(10), 1234);
        assert_eq!(rt.verify_read(10), 1234);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn app_bounds_checked() {
        let rt = TmRuntime::with_defaults(1, 8);
        rt.setup_read(8);
    }

    #[test]
    fn thread_contexts_distinct() {
        let rt = TmRuntime::with_defaults(2, 64);
        let t0 = TmThread::new(&rt, 0);
        let t1 = TmThread::new(&rt, 1);
        assert_ne!(t0.arena().read_sig.base(), t1.arena().read_sig.base());
        assert_ne!(t0.id(), t1.id());
    }
}
