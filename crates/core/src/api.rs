//! Protocol-agnostic execution interface: how workloads express transactions and how
//! executors run them.

use crate::runtime::{TmRuntime, TmThread};
use htm_sim::abort::TxResult;
use htm_sim::Addr;
use rand::rngs::SmallRng;

/// Explicit-abort payload: the global lock was observed held (fast-path begin,
/// Fig. 1 line 2).
pub const XABORT_GLOCK: u8 = 0xA0;
/// Explicit-abort payload: a write-locked (non-visible) location was observed
/// (pre-commit validation in Part-HTM, encounter-time check in Part-HTM-O).
pub const XABORT_LOCKED: u8 = 0xA2;
/// Explicit-abort payload: the global timestamp moved under a Part-HTM-O sub-HTM
/// transaction (Fig. 2 lines 23–24).
pub const XABORT_TS_CHANGED: u8 = 0xA3;
/// Explicit-abort payload: the heap-resident undo-log arena overflowed; the global
/// transaction must fall back.
pub const XABORT_UNDO_FULL: u8 = 0xA4;
/// Explicit-abort payload: the fast path speculated that no partitioned-path
/// transaction was active but found `active_tx != 0` inside the transaction; it
/// restarts with full instrumentation.
pub const XABORT_NOT_QUIET: u8 = 0xA5;

/// Part-HTM-O's address-embedded write lock: the stolen bit. The paper steals the
/// least-significant bit of a memory-aligned pointer behind an indirection wrapper;
/// on this word-addressable heap we steal the top bit of the 64-bit value itself,
/// which preserves the two properties the trick exists for — an exact per-location
/// lock with zero false conflicts, co-located with the datum in the same cache line —
/// while restricting application values to 63 bits.
pub const LOCK_BIT: u64 = 1 << 63;

/// Mask extracting the application value from a possibly-locked word.
pub const VALUE_MASK: u64 = !LOCK_BIT;

/// Which execution path finally committed a transaction. The paper's Table 1 reports
/// the distribution over these paths ("GL / HTM / SW").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommitPath {
    /// A single hardware transaction (Part-HTM's fast path; HTM-GL's and NOrecRH's
    /// hardware attempts).
    Htm,
    /// Part-HTM's partitioned path: a chain of sub-HTM transactions.
    SubHtm,
    /// The global-lock slow path.
    GlobalLock,
    /// A pure software commit (NOrec, RingSTM, NOrecRH's software fallback).
    Stm,
}

/// The transactional memory interface a workload programs against. The same workload
/// code runs unchanged on every executor and path — the ctx supplies the
/// path-appropriate instrumentation, exactly like the paper's manually inserted
/// transactional barriers (§7: "transactional barriers (read and write) are inserted
/// manually").
pub trait TxCtx {
    /// Transactional read of the word at `addr`.
    fn read(&mut self, addr: Addr) -> TxResult<u64>;

    /// Transactional write of `val` (must fit in 63 bits so the Part-HTM-O lock bit
    /// can be embedded) to the word at `addr`.
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()>;

    /// Transactional computation of `units` work (charged against the HTM quantum on
    /// hardware paths, plus real CPU time on every path).
    fn work(&mut self, units: u64) -> TxResult<()>;

    /// Computation that the programmer marked as *non-transactional* (it touches no
    /// shared state). On hardware paths it still burns quantum — that is exactly the
    /// problem §4 "Non-transactional Code" describes — but the partitioned path's
    /// software segments run it outside any hardware transaction.
    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        self.work(units)
    }
}

/// A transaction generator plus the transaction body, with the static partitioning
/// the paper derives from profiling (§5.3.1).
///
/// Lifecycle per transaction: `sample` (choose parameters) → [executor may attempt
/// any path any number of times; before each whole-transaction attempt it calls
/// `reset`; around each *segment* attempt on the partitioned path it uses
/// `snapshot`/`restore`] → commit.
///
/// ```
/// use part_htm_core::{PartHtm, TmExecutor, TmRuntime, TxCtx, Workload};
/// use htm_sim::abort::TxResult;
///
/// /// Adds 1 to two counters, one per segment, so the partitioned path can split
/// /// it into two sub-HTM transactions.
/// struct TwoCounters(htm_sim::Addr);
///
/// impl Workload for TwoCounters {
///     type Snap = ();
///     fn sample(&mut self, _rng: &mut rand::rngs::SmallRng) {}
///     fn segments(&self) -> usize { 2 }
///     fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
///         let a = self.0 + (seg * 8) as htm_sim::Addr;
///         let v = ctx.read(a)?;
///         ctx.write(a, v + 1)
///     }
/// }
///
/// let rt = TmRuntime::with_defaults(1, 64);
/// let mut exec = PartHtm::new(&rt, 0);
/// exec.execute(&mut TwoCounters(rt.app(0)));
/// assert_eq!(rt.verify_read(0), 1);
/// assert_eq!(rt.verify_read(8), 1);
/// ```
pub trait Workload {
    /// Cursor state that must survive segment boundaries but roll back when a single
    /// segment retries (e.g. a list-traversal position).
    type Snap: Clone + Default;

    /// Choose the next transaction's parameters. Called once per transaction —
    /// never per retry, so every attempt replays the same logical transaction.
    fn sample(&mut self, rng: &mut SmallRng);

    /// Number of static segments (sub-HTM partitions). 1 means unpartitioned.
    fn segments(&self) -> usize {
        1
    }

    /// True if segment `seg` touches no shared state and should run outside any
    /// hardware transaction on the partitioned path (§5.3.1: "we manually excluded
    /// basic blocks that access no shared objects from being executed in sub-HTM
    /// transactions").
    fn software_segment(&self, _seg: usize) -> bool {
        false
    }

    /// True if the transaction performs irrevocable operations and must take the
    /// global-lock path directly.
    fn is_irrevocable(&self) -> bool {
        false
    }

    /// The static profiler's verdict for the *sampled* transaction (§4: the paper's
    /// profiler routes transactions that "likely (or certainly) fail in HTM" to the
    /// partitioned path directly). `Some(true)` = known to exceed HTM resources,
    /// skip the fast path; `Some(false)` = known to fit, always try the fast path;
    /// `None` = unknown, let the executor adapt from observed outcomes.
    ///
    /// Under `TmConfig::adaptive_plan` this is a *prior*, not a verdict: it
    /// routes the site until the abort-profile controller
    /// ([`crate::planner`]) has observed real fast-path outcomes, after which
    /// the learned history decides (and periodically re-probes).
    fn profiled_resource_limited(&self) -> Option<bool> {
        None
    }

    /// The transaction *site* of the sampled transaction: a small stable id
    /// for "transactions of this shape" (e.g. one id per operation type, or
    /// per long/short class). The adaptive planner keeps one abort profile —
    /// demotion history, segment plan, retry budgets — per site, so
    /// transactions with different resource appetites should report
    /// different sites. The default (one site for the whole workload) is
    /// always safe, just coarser.
    fn site(&self) -> u32 {
        0
    }

    /// Reset all mutable execution state before a whole-transaction (re)attempt.
    fn reset(&mut self) {}

    /// Capture the cursor state at a segment boundary.
    fn snapshot(&self) -> Self::Snap {
        Self::Snap::default()
    }

    /// Restore cursor state captured by [`Workload::snapshot`] (segment retry).
    fn restore(&mut self, _s: Self::Snap) {}

    /// Execute segment `seg` against `ctx`. The fast and slow paths run all segments
    /// under one context; the partitioned path gives each segment its own sub-HTM
    /// transaction.
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()>;

    /// Called by the executor exactly once after the transaction commits. Use for
    /// thread-local accounting of committed effects (segment bodies can run multiple
    /// times due to retries, so counting inside `segment` over-counts).
    fn after_commit(&mut self) {}
}

/// A per-thread transaction executor: one of the TM protocols under evaluation.
///
/// An executor instance owns all of its thread's protocol state (signatures, logs,
/// statistics) and borrows the shared [`TmRuntime`].
pub trait TmExecutor<'r>: Send + Sized {
    /// Display name used in experiment reports (matches the paper's figure legends).
    const NAME: &'static str;

    /// Create the executor for `thread_id`.
    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self;

    /// Run one transaction to commit, retrying internally as the protocol dictates.
    /// Returns the path that committed it.
    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath;

    /// Run one transaction that an admission controller decided to *shed*:
    /// skip the speculative paths and commit on the protocol's cheapest
    /// serialized path directly. Under overload the speculative retries are
    /// what convoy the ring shards (backoff + global-lock waits), so a shed
    /// request must not add to them. The default simply delegates to
    /// [`TmExecutor::execute`] — protocols with a distinguished slow path
    /// (Part-HTM, Part-HTM-O) override it to take the global lock without
    /// any fast or partitioned attempt, recording the commit in
    /// [`crate::TmStats::shed_commits`].
    fn execute_shed<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        self.execute(w)
    }

    /// The thread context (statistics live here).
    fn thread(&self) -> &TmThread<'r>;

    /// Mutable thread context (the harness samples workloads with its RNG).
    fn thread_mut(&mut self) -> &mut TmThread<'r>;
}

/// Burn roughly `units` of real CPU work. Used by every path for the computation a
/// workload declares via [`TxCtx::work`]/[`TxCtx::nt_work`], so that time-limited
/// transactions cost real time no matter which path executes them — the throughput
/// comparisons in the paper's figures depend on that.
#[inline]
pub fn spin_work(units: u64) {
    let mut acc = 0x2545F4914F6CDD1Du64;
    for i in 0..units {
        acc = std::hint::black_box(acc.rotate_left(7).wrapping_mul(0x9E3779B97F4A7C15) ^ i);
    }
    std::hint::black_box(acc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_bit_is_top_bit() {
        assert_eq!(LOCK_BIT, 0x8000_0000_0000_0000);
        assert_eq!(VALUE_MASK, 0x7FFF_FFFF_FFFF_FFFF);
        assert_eq!(LOCK_BIT & VALUE_MASK, 0);
    }

    #[test]
    fn spin_work_zero_is_noop() {
        spin_work(0);
        spin_work(10);
    }

    #[test]
    fn xabort_codes_distinct() {
        let codes = [
            XABORT_GLOCK,
            XABORT_LOCKED,
            XABORT_TS_CHANGED,
            XABORT_UNDO_FULL,
            tm_sig::ring::XABORT_RING_LOCKED,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
