//! The adaptive abort-profile controller: per-site profiles that steer the
//! three-path executor at runtime.
//!
//! The paper treats partitioning policy as an orthogonal problem (§3) and
//! derives both the fast-path skip hint and the segment boundaries from a
//! *static* profiling pass (§4, §5.3.1). This module closes that loop with a
//! runtime controller fed by the abort codes the simulator already classifies
//! ([`htm_sim::AbortCode`]): every workload keeps declaring its
//! finest-granularity segments, and a lock-free table of per-site profiles
//! ([`SiteTable`]) makes three decisions per transaction:
//!
//! 1. **Futility demotion** — sites whose fast attempts persistently die of
//!    resource failures skip the fast path directly, re-probing every
//!    [`PROBE_PERIOD`]th transaction. The static
//!    [`crate::Workload::profiled_resource_limited`] hint is folded in as a
//!    *prior*: it routes the site until the first observed fast-path outcome,
//!    after which the learned EWMA decides.
//! 2. **Dynamic segment planning** — the executor runs a *plan*
//!    ([`build_plan`]) that merges up to `group` consecutive non-software
//!    segments into one sub-HTM transaction each. The controller doubles
//!    `group` after [`MERGE_AFTER`] clean partitioned commits (fewer
//!    begin/commit/validate round-trips) and halves it when a merged group
//!    dies of a capacity-class abort (capacity, quantum interrupt, or an
//!    overflowing undo log). A `limit` watermark remembers the largest group
//!    that survived, so the plan converges instead of oscillating; the limit
//!    re-probes upward after [`RAISE_AFTER`] clean commits at the plateau.
//! 3. **Adaptive retry budgets** — per-site `fast_retries`/`sub_retries`
//!    scaled down from the paper defaults when the observed odds say the
//!    retries are futile (persistent conflict exhaustion on the fast path,
//!    persistent capacity trouble on the sub path), clamped to `[1, default]`.
//!
//! `TmConfig::adaptive_plan: false` bypasses the table entirely and pins
//! today's static behaviour — hint-is-absolute fast-path routing, the legacy
//! resource-streak probe, one sub-HTM per `plan_group` declared segments,
//! paper retry constants — as the exact differential oracle, matching the
//! repo's fast-path/oracle convention (`docs/adaptive-partitioner.md`).
//!
//! All profile state is host-side (like the ring summaries): the controller
//! is a scheduling heuristic and must not consume simulated HTM capacity or
//! create simulated conflicts. Updates use relaxed atomics and are lossy
//! under races by design — a dropped sample shifts a heuristic, never a
//! protocol invariant.

use crate::runtime::TmConfig;
use crate::stats::TmStats;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use tm_sig::CacheAligned;

/// Fixed-point one for the EWMA counters (probabilities in `0..=EWMA_ONE`).
pub const EWMA_ONE: u32 = 1024;
/// EWMA smoothing shift: `new = old + (sample - old) / 2^EWMA_SHIFT`
/// (α = 1/4 — a site demotes after ~5 consecutive resource failures and
/// re-admits after ~2 consecutive probe successes).
pub const EWMA_SHIFT: u32 = 2;
/// Demote the fast path once the resource-failure EWMA reaches 3/4.
pub const DEMOTE_THRESHOLD: u32 = EWMA_ONE * 3 / 4;
/// A demoted site re-probes the fast path every `PROBE_PERIOD`th transaction
/// (same cadence as the legacy resource-streak profiler it replaces).
pub const PROBE_PERIOD: u64 = 64;
/// Clean partitioned commits at the current plan before the group doubles.
pub const MERGE_AFTER: u32 = 4;
/// Clean commits at the `limit` plateau before the limit re-probes upward
/// (the cost of re-discovery is one split per `RAISE_AFTER` transactions).
pub const RAISE_AFTER: u32 = 64;
/// Largest segments-per-group merge factor the controller will plan.
pub const MAX_GROUP: u32 = 16;
/// Reference write-set budget [`MAX_GROUP`] was tuned against: the TSX-like
/// default geometry (64 sets x 8 ways = 512 written lines).
pub const REFERENCE_WRITE_LINES: usize = 512;
/// Site-table slots (power of two). Sites beyond the table share slots by
/// hash collision — profiles blend, decisions stay safe (every decision is a
/// performance hint, never a correctness input).
pub const SITE_SLOTS: usize = 64;

/// `flags` bits: which EWMAs have observed at least one sample (before the
/// first sample the static prior decides instead of the unseeded EWMA).
const F_RES: u32 = 1;
const F_EXH: u32 = 1 << 1;
const F_SUBCAP: u32 = 1 << 2;

/// How a fast-path episode ended (the samples the fast-gate EWMAs consume).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastExit {
    /// The transaction committed on the fast path.
    Commit,
    /// The attempt died of a resource failure (capacity/interrupt) and the
    /// transaction fell to the partitioned path.
    Resource,
    /// Conflict retries exhausted the budget; the transaction took the
    /// global lock.
    Exhausted,
}

/// A controller plan adjustment, reported so the executor can count it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanChange {
    /// No adjustment this transaction.
    None,
    /// The site's merge factor grew (fewer sub-HTM round-trips planned).
    Merged,
}

/// One site's lock-free abort profile. All fields are racy-by-design relaxed
/// atomics; see the module docs.
pub struct SiteSlot {
    /// Hard merge-factor ceiling for this table (backend capacity class; see
    /// [`backend_group_cap`]). Plans, limits and plateau re-probes never
    /// exceed it.
    cap: u32,
    /// Claimed site id + 1 (0 = empty slot).
    key: AtomicU32,
    /// Which EWMAs have samples (`F_*` bits).
    flags: AtomicU32,
    /// EWMA of fast-path episodes ending in a resource failure.
    res_ewma: AtomicU32,
    /// EWMA of fast-path episodes ending with the conflict budget exhausted.
    exh_ewma: AtomicU32,
    /// EWMA of partitioned runs that hit capacity trouble (a group split or a
    /// capacity-class sub-HTM give-up).
    sub_cap_ewma: AtomicU32,
    /// Current merge factor: declared segments per planned sub-HTM group.
    group: AtomicU32,
    /// Largest group size not known to split (merges never plan past it).
    limit: AtomicU32,
    /// Consecutive clean partitioned commits at the current plan.
    credit: AtomicU32,
    /// Transactions routed through this site (drives the demotion re-probe).
    clock: AtomicU64,
}

impl SiteSlot {
    fn new(init_group: u32, cap: u32) -> Self {
        let cap = cap.clamp(1, MAX_GROUP);
        Self {
            cap,
            key: AtomicU32::new(0),
            flags: AtomicU32::new(0),
            res_ewma: AtomicU32::new(0),
            exh_ewma: AtomicU32::new(0),
            sub_cap_ewma: AtomicU32::new(0),
            group: AtomicU32::new(init_group.clamp(1, cap)),
            limit: AtomicU32::new(cap),
            credit: AtomicU32::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// Move `cell` toward 0 or [`EWMA_ONE`] by one α-step (lossy under races).
    fn ewma(cell: &AtomicU32, sample: bool) {
        let old = cell.load(Relaxed) as i64;
        let target = if sample { EWMA_ONE as i64 } else { 0 };
        let new = old + ((target - old) >> EWMA_SHIFT);
        cell.store(new.clamp(0, EWMA_ONE as i64) as u32, Relaxed);
    }

    #[inline]
    fn set_flag(&self, bit: u32) {
        if self.flags.load(Relaxed) & bit == 0 {
            self.flags.fetch_or(bit, Relaxed);
        }
    }

    /// Advance the site clock; returns the previous tick.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed)
    }

    /// Would the controller route this site straight to the partitioned path?
    /// Before any fast-path outcome was observed the static `prior` decides;
    /// afterwards the learned resource EWMA does. (The re-probe exception is
    /// the caller's job — it owns the tick.)
    #[inline]
    pub fn wants_demotion(&self, prior: Option<bool>) -> bool {
        if self.flags.load(Relaxed) & F_RES != 0 {
            self.res_ewma.load(Relaxed) >= DEMOTE_THRESHOLD
        } else {
            prior == Some(true)
        }
    }

    /// Feed one fast-path episode outcome.
    pub fn record_fast_exit(&self, exit: FastExit) {
        match exit {
            FastExit::Commit => {
                Self::ewma(&self.res_ewma, false);
                Self::ewma(&self.exh_ewma, false);
                self.set_flag(F_RES | F_EXH);
            }
            FastExit::Resource => {
                Self::ewma(&self.res_ewma, true);
                self.set_flag(F_RES);
            }
            FastExit::Exhausted => {
                Self::ewma(&self.exh_ewma, true);
                self.set_flag(F_EXH);
            }
        }
    }

    /// Scale `default` retries down by the futility odds in `cell` (linear,
    /// clamped to `[1, default]`); identity until the EWMA has a sample.
    fn scaled_budget(&self, flag: u32, cell: &AtomicU32, default: u32) -> u32 {
        if self.flags.load(Relaxed) & flag == 0 || default <= 1 {
            return default.max(1);
        }
        // Round the scaling: the integer EWMA saturates just below EWMA_ONE
        // (the shifted step truncates to 0 near the target), and a
        // fully-futile site must still floor at budget 1.
        let futile = cell.load(Relaxed).min(EWMA_ONE);
        let cut = ((default - 1) * futile + EWMA_ONE / 2) / EWMA_ONE;
        (default - cut).max(1)
    }

    /// Fast-path conflict-retry budget for this site.
    #[inline]
    pub fn fast_budget(&self, default: u32) -> u32 {
        self.scaled_budget(F_EXH, &self.exh_ewma, default)
    }

    /// Sub-HTM retry budget for this site.
    #[inline]
    pub fn sub_budget(&self, default: u32) -> u32 {
        self.scaled_budget(F_SUBCAP, &self.sub_cap_ewma, default)
    }

    /// The merge factor the executor should plan with right now.
    #[inline]
    pub fn plan_group(&self) -> u32 {
        self.group.load(Relaxed).clamp(1, self.cap)
    }

    /// A group of `used` segments died of a capacity-class abort: halve the
    /// plan and remember `used` is beyond this site's budget.
    pub fn record_capacity_split(&self, used: u32) {
        let new = (used / 2).max(1);
        self.limit.fetch_min(new, Relaxed);
        self.group.fetch_min(new, Relaxed);
        self.credit.store(0, Relaxed);
        Self::ewma(&self.sub_cap_ewma, true);
        self.set_flag(F_SUBCAP);
    }

    /// A sub-HTM transaction gave up after exhausting its retries on a
    /// capacity-class code with nothing left to split (group of 1).
    pub fn record_sub_futility(&self) {
        self.credit.store(0, Relaxed);
        Self::ewma(&self.sub_cap_ewma, true);
        self.set_flag(F_SUBCAP);
    }

    /// A partitioned commit completed without capacity trouble. `max_run` is
    /// the longest run of consecutive mergeable (non-software) segments the
    /// transaction declared — the largest group worth planning. Returns
    /// [`PlanChange::Merged`] when the plan grew.
    pub fn record_clean_commit(&self, max_run: u32) -> PlanChange {
        Self::ewma(&self.sub_cap_ewma, false);
        self.set_flag(F_SUBCAP);
        let group = self.group.load(Relaxed);
        let ceiling = max_run.clamp(1, self.cap);
        if group >= ceiling {
            return PlanChange::None;
        }
        let credit = self.credit.fetch_add(1, Relaxed) + 1;
        let limit = self.limit.load(Relaxed);
        if group < limit && credit >= MERGE_AFTER {
            self.group.store((group * 2).min(limit).min(ceiling), Relaxed);
            self.credit.store(0, Relaxed);
            return PlanChange::Merged;
        }
        if group >= limit && limit < ceiling && credit >= RAISE_AFTER {
            // Plateau re-probe: the capacity landscape may have changed (e.g.
            // less cache pressure); try one size up and let a split re-cap it.
            self.limit.store((limit * 2).min(ceiling), Relaxed);
            self.group.store((group * 2).min(ceiling), Relaxed);
            self.credit.store(0, Relaxed);
            return PlanChange::Merged;
        }
        PlanChange::None
    }
}

/// Map a backend's write-set budget to the planner's merge-factor ceiling —
/// the *capacity class* of the backend. [`MAX_GROUP`] was tuned against the
/// TSX-like [`REFERENCE_WRITE_LINES`] budget; a backend with an `n`-times
/// smaller write set gets an `n`-times smaller ceiling (floored at 1), so
/// merged sub-HTM groups never plan wildly past what the hardware can hold:
///
/// | backend  | write lines | group cap |
/// |----------|-------------|-----------|
/// | tsx      | 512         | 16        |
/// | power    | 64          | 2         |
/// | limited  | 16          | 1         |
pub fn backend_group_cap(write_lines_max: usize) -> u32 {
    ((MAX_GROUP as usize * write_lines_max) / REFERENCE_WRITE_LINES).clamp(1, MAX_GROUP as usize)
        as u32
}

/// The lock-free site table: [`SITE_SLOTS`] cache-line-aligned profiles,
/// hash-indexed by site id with short linear probing. A site that finds
/// neither itself nor an empty slot within the probe window shares the home
/// slot of its hash — blended profiles degrade decisions, never safety.
pub struct SiteTable {
    slots: Box<[CacheAligned<SiteSlot>]>,
}

impl SiteTable {
    /// Build the table; fresh sites start planning `init_group` segments per
    /// sub-HTM transaction, up to [`MAX_GROUP`].
    pub fn new(init_group: u32) -> Self {
        Self::with_group_cap(init_group, MAX_GROUP)
    }

    /// Build the table with a hard merge-factor ceiling (the backend's
    /// capacity class, see [`backend_group_cap`]): `init_group`, every
    /// learned plan, and the plateau re-probe are all clamped to `cap`.
    /// `cap = MAX_GROUP` reproduces [`SiteTable::new`] exactly.
    pub fn with_group_cap(init_group: u32, cap: u32) -> Self {
        Self {
            slots: (0..SITE_SLOTS)
                .map(|_| CacheAligned::new(SiteSlot::new(init_group, cap)))
                .collect(),
        }
    }

    /// The profile slot for `site` (claiming an empty slot on first sight).
    pub fn slot(&self, site: u32) -> &SiteSlot {
        let key = site.wrapping_add(1);
        // Fibonacci-hash the site id so dense ids spread over the table.
        let home = (site.wrapping_mul(0x9E37_79B9) >> 16) as usize & (SITE_SLOTS - 1);
        for probe in 0..4 {
            let slot = &self.slots[(home + probe) & (SITE_SLOTS - 1)];
            let k = slot.key.load(Relaxed);
            if k == key {
                return slot;
            }
            if k == 0
                && slot
                    .key
                    .compare_exchange(0, key, Relaxed, Relaxed)
                    .is_ok()
            {
                return slot;
            }
            if slot.key.load(Relaxed) == key {
                return slot; // lost the claim race to ourselves on another thread
            }
        }
        &self.slots[home]
    }
}

/// One step of a segment plan: either one sub-HTM transaction covering the
/// declared segments `start..end`, or a single software segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanStep {
    /// First declared segment of the step.
    pub start: usize,
    /// One past the last declared segment of the step.
    pub end: usize,
    /// True for a software (non-transactional) segment; always a single
    /// segment — software segments never merge.
    pub software: bool,
}

impl PlanStep {
    /// Segments covered by this step.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the step covers no segments (never produced by
    /// [`build_plan`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Build the segment plan for a transaction of `nseg` declared segments:
/// group up to `group` consecutive non-software segments per sub-HTM step,
/// never across a software segment. `group == 1` reproduces the static plan
/// byte-for-byte — one step per declared segment, in declaration order (the
/// `adaptive_plan: false` oracle guarantee, pinned by proptest).
///
/// Returns the longest run of consecutive non-software segments (the largest
/// group worth planning for this shape).
pub fn build_plan(
    nseg: usize,
    group: u32,
    is_software: impl Fn(usize) -> bool,
    out: &mut Vec<PlanStep>,
) -> u32 {
    out.clear();
    let group = group.max(1) as usize;
    let mut max_run = 0usize;
    let mut seg = 0;
    while seg < nseg {
        if is_software(seg) {
            out.push(PlanStep {
                start: seg,
                end: seg + 1,
                software: true,
            });
            seg += 1;
            continue;
        }
        // The full mergeable run, chunked into groups.
        let mut run_end = seg + 1;
        while run_end < nseg && !is_software(run_end) {
            run_end += 1;
        }
        max_run = max_run.max(run_end - seg);
        while seg < run_end {
            let end = (seg + group).min(run_end);
            out.push(PlanStep {
                start: seg,
                end,
                software: false,
            });
            seg = end;
        }
    }
    (max_run.max(1)).min(u32::MAX as usize) as u32
}

/// Site id for a *batched request group*: `batch_max`-bounded groups of
/// coalesced same-shard server requests executed as one multi-segment
/// transaction (`crates/tm-server`). The planner keeps one abort profile per
/// site, and a batch's resource appetite scales with its width — so batches
/// report a site derived from `(op_class, shard, width-class)` rather than
/// the per-request site: a shard whose 8-wide batches die of capacity aborts
/// learns a smaller merge plan without also demoting the 2-wide batches.
///
/// The width class is `ceil(log2(width))` (1, 2, 3–4, 5–8, ... share a
/// class), so the id space stays small enough for [`SITE_SLOTS`] while still
/// separating the capacity regimes that matter. Ids are offset by `1 << 16`
/// to keep clear of the hand-assigned per-workload sites.
pub fn batch_site(op_class: u32, shard: u32, width: u32) -> u32 {
    let wclass = 32 - (width.max(1) - 1).leading_zeros(); // ceil(log2(w))
    (1 << 16) | (op_class << 12) | (shard << 4) | wclass
}

/// The single fast-path routing decision point shared by both executors
/// (replacing the three-way `skip_fast` / static-hint / resource-streak
/// branching that used to be duplicated in `parthtm.rs` and `opaque.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastRoute {
    /// Try the fast path, with this many conflict retries before the global
    /// lock.
    Attempt {
        /// Conflict-retry budget (≤ the configured `fast_retries`).
        budget: u32,
    },
    /// Skip straight to the partitioned path.
    Demote,
}

/// Per-executor fast-path profile: owns the legacy (static-mode) streak state
/// and mediates between the executor and the shared [`SiteSlot`].
#[derive(Default)]
pub struct FastProfile {
    /// Legacy mode: consecutive transactions whose fast attempt died of a
    /// resource failure (the pre-controller adaptive stand-in, kept
    /// bit-exact for the `adaptive_plan: false` oracle).
    resource_streak: u32,
    /// Legacy mode: transactions executed (drives the periodic re-probe).
    tx_count: u64,
}

impl FastProfile {
    /// Decide the fast-path route for one transaction. Counts a
    /// [`TmStats::site_demotions`] whenever the *profiler* (learned history,
    /// static hint or legacy streak — not the `skip_fast` config override)
    /// routes the transaction straight to the partitioned path.
    pub fn route(
        &mut self,
        cfg: &TmConfig,
        slot: &SiteSlot,
        prior: Option<bool>,
        stats: &mut TmStats,
    ) -> FastRoute {
        if !cfg.adaptive_plan {
            self.tx_count += 1;
            if cfg.skip_fast {
                return FastRoute::Demote;
            }
            let skip = match prior {
                Some(limited) => limited,
                None => self.resource_streak >= 3 && !self.tx_count.is_multiple_of(64),
            };
            if skip {
                stats.site_demotions += 1;
                return FastRoute::Demote;
            }
            return FastRoute::Attempt {
                budget: cfg.fast_retries,
            };
        }
        let tick = slot.tick();
        if cfg.skip_fast {
            return FastRoute::Demote;
        }
        if slot.wants_demotion(prior) && !tick.is_multiple_of(PROBE_PERIOD) {
            stats.site_demotions += 1;
            return FastRoute::Demote;
        }
        FastRoute::Attempt {
            budget: slot.fast_budget(cfg.fast_retries),
        }
    }

    /// Feed the episode outcome back (updates the legacy streak or the site
    /// EWMAs, whichever mode is live).
    pub fn note_exit(&mut self, cfg: &TmConfig, slot: &SiteSlot, exit: FastExit) {
        if !cfg.adaptive_plan {
            match exit {
                FastExit::Commit => self.resource_streak = 0,
                FastExit::Resource => {
                    self.resource_streak = self.resource_streak.saturating_add(1);
                }
                FastExit::Exhausted => {}
            }
            return;
        }
        slot.record_fast_exit(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demote_after(slot: &SiteSlot) -> u32 {
        let mut n = 0;
        while !slot.wants_demotion(None) {
            slot.record_fast_exit(FastExit::Resource);
            n += 1;
            assert!(n < 100, "demotion never reached");
        }
        n
    }

    #[test]
    fn demotion_learns_and_recovers() {
        let t = SiteTable::new(1);
        let s = t.slot(7);
        // Unseeded: the prior decides.
        assert!(!s.wants_demotion(None));
        assert!(!s.wants_demotion(Some(false)));
        assert!(s.wants_demotion(Some(true)));
        // A handful of consecutive resource failures demotes...
        let n = demote_after(s);
        assert!((3..=8).contains(&n), "demoted after {n}");
        // ...and once sampled, the learned EWMA overrides the prior.
        assert!(s.wants_demotion(Some(false)));
        // Probe successes re-admit.
        s.record_fast_exit(FastExit::Commit);
        s.record_fast_exit(FastExit::Commit);
        assert!(!s.wants_demotion(Some(true)), "prior no longer absolute");
    }

    #[test]
    fn budgets_scale_down_and_clamp() {
        let t = SiteTable::new(1);
        let s = t.slot(1);
        assert_eq!(s.fast_budget(5), 5, "unseeded budget is the default");
        for _ in 0..32 {
            s.record_fast_exit(FastExit::Exhausted);
        }
        assert_eq!(s.fast_budget(5), 1, "persistent exhaustion floors at 1");
        assert_eq!(s.fast_budget(1), 1);
        for _ in 0..32 {
            s.record_sub_futility();
        }
        assert_eq!(s.sub_budget(5), 1);
        for _ in 0..32 {
            s.record_clean_commit(1);
        }
        assert_eq!(s.sub_budget(5), 5, "clean history restores the default");
    }

    #[test]
    fn plan_merges_then_splits_then_converges() {
        let t = SiteTable::new(1);
        let s = t.slot(3);
        assert_eq!(s.plan_group(), 1);
        let mut merges = 0;
        for _ in 0..2 * MERGE_AFTER {
            if s.record_clean_commit(16) == PlanChange::Merged {
                merges += 1;
            }
        }
        assert_eq!(merges, 2);
        assert_eq!(s.plan_group(), 4);
        // A capacity split at 4 halves and caps the plan.
        s.record_capacity_split(4);
        assert_eq!(s.plan_group(), 2);
        for _ in 0..4 * MERGE_AFTER {
            s.record_clean_commit(16);
        }
        assert_eq!(s.plan_group(), 2, "limit pins the plateau");
        // The plateau re-probes upward only after RAISE_AFTER clean commits.
        for _ in 0..RAISE_AFTER {
            s.record_clean_commit(16);
        }
        assert_eq!(s.plan_group(), 4, "plateau re-probe");
    }

    #[test]
    fn backend_group_cap_matches_capacity_classes() {
        assert_eq!(backend_group_cap(512), MAX_GROUP, "tsx default unchanged");
        assert_eq!(backend_group_cap(64), 2, "power: 64-entry write set");
        assert_eq!(backend_group_cap(16), 1, "limited: FORTH-style small set");
        assert_eq!(backend_group_cap(1), 1, "floors at 1");
        assert_eq!(backend_group_cap(1 << 20), MAX_GROUP, "caps at MAX_GROUP");
    }

    #[test]
    fn group_cap_bounds_merges_and_plateau_reprobes() {
        let t = SiteTable::with_group_cap(8, 2);
        let s = t.slot(5);
        assert_eq!(s.plan_group(), 2, "init group clamped to the cap");
        for _ in 0..10 * RAISE_AFTER {
            s.record_clean_commit(16);
        }
        assert_eq!(s.plan_group(), 2, "plateau re-probe never exceeds the cap");
    }

    #[test]
    fn plan_never_exceeds_declared_run() {
        let t = SiteTable::new(1);
        let s = t.slot(9);
        for _ in 0..10 * RAISE_AFTER {
            s.record_clean_commit(2);
        }
        assert_eq!(s.plan_group(), 2, "no point planning past the longest run");
    }

    #[test]
    fn build_plan_group1_is_the_static_plan() {
        let mut out = Vec::new();
        let sw = |s: usize| s == 2;
        build_plan(5, 1, sw, &mut out);
        let expect: Vec<PlanStep> = (0..5)
            .map(|s| PlanStep {
                start: s,
                end: s + 1,
                software: s == 2,
            })
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn build_plan_groups_respect_software_boundaries() {
        let mut out = Vec::new();
        // segments: hw hw hw SW hw hw, group 4.
        let max_run = build_plan(6, 4, |s| s == 3, &mut out);
        assert_eq!(
            out,
            vec![
                PlanStep { start: 0, end: 3, software: false },
                PlanStep { start: 3, end: 4, software: true },
                PlanStep { start: 4, end: 6, software: false },
            ]
        );
        assert_eq!(max_run, 3);
        // Full coverage, in order, no overlap.
        let covered: Vec<usize> = out.iter().flat_map(|p| p.start..p.end).collect();
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn batch_sites_separate_width_classes() {
        // Same shard, widths 1 / 2 / 4 / 8 — 2 and 3..=4 share a class edge:
        assert_ne!(batch_site(0, 3, 1), batch_site(0, 3, 2));
        assert_ne!(batch_site(0, 3, 2), batch_site(0, 3, 4));
        assert_eq!(batch_site(0, 3, 3), batch_site(0, 3, 4));
        assert_eq!(batch_site(0, 3, 5), batch_site(0, 3, 8));
        // Distinct shards and op classes get distinct sites.
        assert_ne!(batch_site(0, 3, 4), batch_site(0, 5, 4));
        assert_ne!(batch_site(0, 3, 4), batch_site(1, 3, 4));
        // Clear of the hand-assigned per-workload id space.
        assert!(batch_site(0, 0, 1) >= 1 << 16);
    }

    #[test]
    fn site_table_distinguishes_and_shares() {
        let t = SiteTable::new(1);
        let a = t.slot(0) as *const _;
        let b = t.slot(1) as *const _;
        assert_ne!(a, b, "distinct sites get distinct slots");
        assert_eq!(a, t.slot(0) as *const _, "stable mapping");
    }

    #[test]
    fn legacy_route_matches_the_streak_profiler() {
        let cfg = TmConfig {
            adaptive_plan: false,
            ..TmConfig::default()
        };
        let t = SiteTable::new(1);
        let slot = t.slot(0);
        let mut p = FastProfile::default();
        let mut stats = TmStats::default();
        // Hint overrides everything but skip_fast.
        assert_eq!(p.route(&cfg, slot, Some(true), &mut stats), FastRoute::Demote);
        assert_eq!(
            p.route(&cfg, slot, Some(false), &mut stats),
            FastRoute::Attempt { budget: 5 }
        );
        // Three resource failures demote; every 64th transaction re-probes.
        for _ in 0..3 {
            p.note_exit(&cfg, slot, FastExit::Resource);
        }
        let mut skipped = 0;
        let mut probed = 0;
        for _ in 0..128 {
            match p.route(&cfg, slot, None, &mut stats) {
                FastRoute::Demote => skipped += 1,
                FastRoute::Attempt { .. } => probed += 1,
            }
        }
        assert_eq!(probed, 2, "exactly the 64th-transaction probes");
        assert_eq!(skipped, 126);
        assert_eq!(stats.site_demotions, 127);
    }
}
