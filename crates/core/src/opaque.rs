//! Part-HTM-O: the opacity-preserving variant (§5.5, Fig. 2).
//!
//! Two extensions over the base protocol make every memory access consistent, not
//! just every commit:
//!
//! 1. **Address-embedded write locks**: a lock bit co-located with each datum
//!    ([`crate::LOCK_BIT`]), checked at *encounter time* on every read and write.
//!    Observing a foreign lock explicitly aborts the hardware transaction before the
//!    value can be used. Embedding eliminates the false conflicts a shared lock
//!    table would cause.
//! 2. **Timestamp subscription**: every sub-HTM transaction reads the global
//!    timestamp first (Fig. 2 lines 23–24), so any global commit during its
//!    execution dooms it via hardware conflict detection, and a commit *between*
//!    sub-transactions is caught by the explicit `TS_CHANGED` check; both trigger an
//!    in-flight validation before any further memory access.
//!
//! These make the base protocol's sub-HTM pre-commit signature validation
//! unnecessary ("useless in Part-HTM-O", §5.5). One addition over the paper's
//! pseudo-code: writers run a final in-flight validation at global commit. Fig. 2
//! omits it, but without it a transaction whose read set is invalidated *after its
//! last sub-HTM transaction commits and before its global commit* could publish —
//! see DESIGN.md ("soundness fixes") for the interleaving; the base protocol closes
//! the same window with the validation that follows its last sub-transaction.

use crate::api::{spin_work, XABORT_GLOCK, XABORT_NOT_QUIET};
use crate::api::{
    CommitPath, TmExecutor, TxCtx, Workload, LOCK_BIT, VALUE_MASK, XABORT_LOCKED,
    XABORT_TS_CHANGED, XABORT_UNDO_FULL,
};
use crate::ctx::{RawCtx, SigPair, SoftwareCtx};
use crate::parthtm::{capacity_class, run_global_lock, wait_glock_released, GroupRun};
use crate::planner::{build_plan, FastExit, FastProfile, FastRoute, PlanChange, PlanStep};
use crate::runtime::{ThreadArena, TmRuntime, TmThread};
use crate::undo::UndoLog;
use htm_sim::abort::TxResult;
use htm_sim::util::FastSet;
use htm_sim::{AbortCode, Addr, HtmTx};
use tm_sig::{ShardTimes, Sig, SigArena, SigJournal, SigSlot, SigSpec};

/// The set of addresses this global transaction holds embedded locks on, with
/// mark/rollback for failed sub-HTM attempts. Stands in for the paper's
/// `not_self_lock` undo-log scan (Fig. 2 lines 18–21) with identical semantics —
/// an address is self-locked iff this transaction logged a write to it — at O(1)
/// per query instead of O(log length).
#[derive(Default)]
pub struct LockedSet {
    order: Vec<Addr>,
    set: FastSet<Addr>,
}

impl LockedSet {
    /// True if `addr` is locked by the current global transaction.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.set.contains(&addr)
    }

    /// Record a newly acquired lock.
    #[inline]
    pub fn insert(&mut self, addr: Addr) {
        debug_assert!(!self.set.contains(&addr));
        self.order.push(addr);
        self.set.insert(addr);
    }

    /// Current length, for [`LockedSet::truncate`].
    pub fn mark(&self) -> usize {
        self.order.len()
    }

    /// Roll back to a previous mark (failed sub-HTM attempt: its lock-bit writes
    /// were never published).
    pub fn truncate(&mut self, mark: usize) {
        while self.order.len() > mark {
            let a = self.order.pop().expect("mark below zero");
            self.set.remove(&a);
        }
    }

    /// Forget everything (global transaction finished).
    pub fn clear(&mut self) {
        self.order.clear();
        self.set.clear();
    }

    /// Number of held locks.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no locks are held.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Fast-path context with encounter-time lock checks (Fig. 2 lines 3–7).
struct OFastCtx<'c, 'a, 's> {
    tx: &'c mut HtmTx<'a, 's>,
    wsig: SigPair<'c>,
    wrote: &'c mut bool,
}

impl TxCtx for OFastCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let v = self.tx.read(addr)?;
        if v & LOCK_BIT != 0 {
            return Err(self.tx.xabort(XABORT_LOCKED));
        }
        Ok(v)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        let v = self.tx.read(addr)?;
        if v & LOCK_BIT != 0 {
            return Err(self.tx.xabort(XABORT_LOCKED));
        }
        self.wsig.add(self.tx, addr)?;
        *self.wrote = true;
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// Sub-HTM context with encounter-time lock checks and eager lock acquisition
/// (Fig. 2 lines 25–35).
struct OSubCtx<'c, 'a, 's> {
    tx: &'c mut HtmTx<'a, 's>,
    rsig: SigPair<'c>,
    wsig: SigPair<'c>,
    undo: &'c mut UndoLog,
    locked: &'c mut LockedSet,
    journal: &'c mut SigJournal,
    wrote: &'c mut bool,
}

impl TxCtx for OSubCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let v = self.tx.read(addr)?;
        if v & LOCK_BIT != 0 && !self.locked.contains(addr) {
            return Err(self.tx.xabort(XABORT_LOCKED));
        }
        self.rsig
            .add_journaled(self.tx, addr, self.journal, SigSlot::Read)?;
        Ok(v & VALUE_MASK)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        let v = self.tx.read(addr)?;
        if v & LOCK_BIT != 0 {
            if !self.locked.contains(addr) {
                return Err(self.tx.xabort(XABORT_LOCKED));
            }
            // Already ours: overwrite in place, keeping the lock.
            return self.tx.write(addr, val | LOCK_BIT);
        }
        self.undo.append_tx(self.tx, addr, v)?;
        self.wsig
            .add_journaled(self.tx, addr, self.journal, SigSlot::Write)?;
        self.locked.insert(addr);
        *self.wrote = true;
        // Acquire the embedded lock together with the value (Fig. 2 lines 34–35).
        self.tx.write(addr, val | LOCK_BIT)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// The Part-HTM-O protocol (opaque variant, Fig. 2).
pub struct PartHtmO<'r> {
    th: TmThread<'r>,
    arena: ThreadArena,
    undo: UndoLog,
    locked: LockedSet,
    /// Read-signature software mirror (drives in-flight validation).
    rmir: Sig,
    /// Write-signature software mirror, accumulated over the whole global
    /// transaction (no aggregate signature in `-O`: locks are embedded).
    wmir: Sig,
    /// Per-segment signature undo journal (zero-clone sub-HTM retries; see the base
    /// executor).
    journal: SigJournal,
    /// Per-shard validation window (doubles as the sub-HTM subscription vector:
    /// every sub-transaction re-checks all shard timestamps against it).
    times: ShardTimes,
    /// The fast-path routing profile — the single decision point shared with
    /// the base executor via [`crate::planner::FastProfile`].
    profile: FastProfile,
    /// Reusable segment-plan buffer (see the base executor).
    plan: Vec<PlanStep>,
}

impl<'r> PartHtmO<'r> {
    /// Quiet fast path (see the base executor's documentation): with `active_tx`
    /// subscribed at zero, no embedded lock bit can be set anywhere — locks are only
    /// held while their global transaction is active — so the encounter-time checks,
    /// the value masking and the ring publish all become unnecessary.
    fn try_fast_quiet<W: Workload>(&mut self, w: &mut W) -> Result<(), AbortCode> {
        w.reset();
        let rt = self.th.rt;
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            match tx.read(rt.glock()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            match tx.read(rt.active_tx()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_NOT_QUIET)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = RawCtx { tx: &mut tx };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }

    fn try_fast<W: Workload>(&mut self, w: &mut W) -> Result<(), AbortCode> {
        let rt = self.th.rt;
        if self.th.hw.nt_read(rt.active_tx()) == 0 {
            match self.try_fast_quiet(w) {
                Err(AbortCode::Explicit(XABORT_NOT_QUIET)) => {} // re-run instrumented
                other => return other,
            }
        }
        w.reset();
        self.wmir.clear();
        let a = self.arena;
        let mut wrote = false;

        let mut tx = self.th.hw.begin();
        // Body result: the announced publish's shard mask and per-shard commit
        // timestamps (mask 0 = nothing announced).
        let body: TxResult<(u32, ShardTimes)> = 'b: {
            match tx.read(rt.glock()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            {
                let mut ctx = OFastCtx {
                    tx: &mut tx,
                    wsig: SigPair {
                        heap: a.write_sig,
                        mirror: &mut self.wmir,
                    },
                    wrote: &mut wrote,
                };
                for seg in 0..w.segments() {
                    if let Err(e) = w.segment(seg, &mut ctx) {
                        break 'b Err(e);
                    }
                }
            }
            // No pre-commit signature validation: encounter-time lock checks already
            // guarantee no non-visible location was touched (Fig. 2 lines 8–11).
            if wrote {
                match rt
                    .sharded_ring()
                    .publish_tx_summarized(&mut tx, &self.wmir, rt.summaries())
                {
                    Ok(announced) => break 'b Ok(announced),
                    Err(e) => break 'b Err(e),
                }
            }
            Ok((0, ShardTimes::new()))
        };
        let (pub_mask, pub_times) = *body.as_ref().unwrap_or(&(0, ShardTimes::new()));
        let res = match body {
            Ok(_) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        match res {
            Ok(()) => {
                if pub_mask != 0 {
                    rt.sharded_ring().complete_publish(
                        &self.wmir,
                        pub_mask,
                        &pub_times,
                        rt.summaries(),
                    );
                    self.th.stats.record_shard_publish(pub_mask);
                }
                self.wmir.clear();
                Ok(())
            }
            Err(code) => {
                if pub_mask != 0 {
                    rt.sharded_ring().cancel_publish(pub_mask, rt.summaries());
                }
                self.th.stats.fast_aborts += 1;
                Err(code)
            }
        }
    }

    #[inline]
    fn dec_active(&self) {
        self.th
            .hw
            .system()
            .nt_fetch_sub_by(self.th.hw.id(), self.th.rt.active_tx(), 1);
    }

    fn cleanup_partitioned(&mut self) {
        self.rmir.clear();
        self.wmir.clear();
        self.undo.clear();
        self.locked.clear();
        self.dec_active();
    }

    /// Global abort (Fig. 2 lines 60–65): the undo-log restore puts back the old,
    /// *unlocked* values, releasing every embedded lock in the same stores.
    fn global_abort(&mut self) {
        self.th.stats.global_aborts += 1;
        self.undo.undo_nt(&self.th.hw);
        self.cleanup_partitioned();
    }

    /// In-flight validation against every ring shard (per-shard summary fast path
    /// first); advances the per-shard window `times` on success.
    fn validate(&mut self) -> bool {
        let rt = self.th.rt;
        let v = rt.sharded_ring().validate_summarized_nt(
            &self.th.hw,
            rt.summaries(),
            &self.rmir,
            &mut self.times,
        );
        self.th.stats.record_sharded_validation(&v);
        v.result.is_ok()
    }

    /// Run the declared segments `start..end` as one sub-HTM transaction with
    /// bounded retries (see the base executor's `run_group`): a merged group
    /// that dies of a capacity-class abort reports [`GroupRun::Split`] for
    /// single-segment re-execution instead of retrying futilely.
    fn run_group<W: Workload>(
        &mut self,
        w: &mut W,
        start: usize,
        end: usize,
        wrote: &mut bool,
        budget: u32,
    ) -> GroupRun {
        let rt = self.th.rt;
        let a = self.arena;
        let snap = w.snapshot();
        let undo_mark = self.undo.len();
        let locked_mark = self.locked.mark();
        let mut attempts = 0u32;
        loop {
            // Zero-clone retries: journal the mirrors' dirtied words per attempt.
            self.journal.begin(self.rmir.spec());
            let mut tx = self.th.hw.begin();
            let body: TxResult<()> = 'b: {
                // Timestamp subscription (Fig. 2 lines 23–24), per shard: reading
                // every shard's timestamp subscribes their lines, so any global
                // commit in any shard during this sub-transaction dooms it; one
                // that already happened is caught here explicitly.
                match rt.sharded_ring().timestamps_match_tx(&mut tx, &self.times) {
                    Ok(true) => {}
                    Ok(false) => break 'b Err(tx.xabort(XABORT_TS_CHANGED)),
                    Err(e) => break 'b Err(e),
                }
                {
                    let mut ctx = OSubCtx {
                        tx: &mut tx,
                        rsig: SigPair {
                            heap: a.read_sig,
                            mirror: &mut self.rmir,
                        },
                        wsig: SigPair {
                            heap: a.write_sig,
                            mirror: &mut self.wmir,
                        },
                        undo: &mut self.undo,
                        locked: &mut self.locked,
                        journal: &mut self.journal,
                        wrote,
                    };
                    for seg in start..end {
                        if let Err(e) = w.segment(seg, &mut ctx) {
                            break 'b Err(e);
                        }
                    }
                }
                // No pre-commit validation and no lock-signature acquisition: the
                // two -O extensions provide both earlier (§5.5).
                Ok(())
            };
            let res = match body {
                Ok(()) => tx.commit(),
                Err(code) => {
                    drop(tx);
                    Err(code)
                }
            };
            match res {
                Ok(()) => {
                    self.journal.discard();
                    return GroupRun::Committed;
                }
                Err(code) => {
                    self.th.stats.sub_aborts += 1;
                    self.undo.truncate(undo_mark);
                    self.locked.truncate(locked_mark);
                    self.journal.rollback(&mut self.rmir, &mut self.wmir);
                    self.th.stats.journal_rollbacks += 1;
                    w.restore(snap.clone());
                    attempts += 1;
                    let capacity = capacity_class(code);
                    if capacity && end - start > 1 {
                        return GroupRun::Split;
                    }
                    // Fig. 2 lines 36–39: a timestamp change (explicit, or the
                    // hardware conflict the subscription converts commits into)
                    // triggers validation; if the snapshot is still valid only the
                    // sub-transaction restarts, otherwise the global transaction
                    // aborts. Foreign locks and undo overflow abort the global
                    // transaction directly.
                    let give_up = match code {
                        AbortCode::Explicit(XABORT_TS_CHANGED) | AbortCode::Conflict => {
                            !self.validate()
                        }
                        AbortCode::Explicit(x) => x == XABORT_LOCKED || x == XABORT_UNDO_FULL,
                        AbortCode::Capacity | AbortCode::Timer | AbortCode::Interrupt => false,
                    } || attempts >= budget;
                    if give_up {
                        if attempts >= budget && budget < rt.config().sub_retries {
                            self.th.stats.adaptive_retry_saves +=
                                (rt.config().sub_retries - budget) as u64;
                        }
                        return GroupRun::Fail { capacity };
                    }
                    htm_sim::vclock::yield_now();
                }
            }
        }
    }

    fn try_partitioned<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let rt = self.th.rt;
        loop {
            wait_glock_released(&self.th);
            self.th.hw.nt_fetch_add(rt.active_tx(), 1);
            if self.th.hw.nt_read(rt.glock()) == 0 {
                break;
            }
            self.dec_active();
        }
        rt.sharded_ring().timestamps_nt(&self.th.hw, &mut self.times);
        self.rmir.clear();
        self.wmir.clear();
        self.undo.clear();
        self.locked.clear();
        w.reset();
        let mut wrote = false;

        // The segment plan (see the base executor): the site's learned merge
        // factor under the adaptive controller, the pinned static group
        // otherwise.
        let cfg = rt.config();
        let adaptive = cfg.adaptive_plan;
        let slot = rt.sites().slot(w.site());
        let group = if adaptive {
            slot.plan_group()
        } else {
            cfg.plan_group.max(1)
        };
        let sub_budget = if adaptive {
            slot.sub_budget(cfg.sub_retries)
        } else {
            cfg.sub_retries
        };
        let mut plan = std::mem::take(&mut self.plan);
        let max_run = build_plan(w.segments(), group, |s| w.software_segment(s), &mut plan);
        self.plan = plan;
        let mut split_tx = false;

        for i in 0..self.plan.len() {
            let step = self.plan[i];
            if step.software {
                let mut ctx = SoftwareCtx {
                    th: &self.th.hw,
                    mask_values: true,
                };
                w.segment(step.start, &mut ctx)
                    .expect("software segments cannot abort");
                continue;
            }
            match self.run_group(w, step.start, step.end, &mut wrote, sub_budget) {
                GroupRun::Committed => {}
                GroupRun::Split => {
                    self.th.stats.plan_splits += 1;
                    split_tx = true;
                    if adaptive {
                        slot.record_capacity_split(step.len() as u32);
                    }
                    for seg in step.start..step.end {
                        match self.run_group(w, seg, seg + 1, &mut wrote, sub_budget) {
                            GroupRun::Committed => {}
                            GroupRun::Split => unreachable!("single segments never split"),
                            GroupRun::Fail { capacity } => {
                                if adaptive && capacity {
                                    slot.record_sub_futility();
                                }
                                self.global_abort();
                                return Err(());
                            }
                        }
                    }
                }
                GroupRun::Fail { capacity } => {
                    if adaptive && capacity {
                        slot.record_sub_futility();
                    }
                    self.global_abort();
                    return Err(());
                }
            }
        }

        // Global commit (Fig. 2 lines 48–59), plus the final writer validation this
        // implementation adds (see module docs).
        if wrote {
            if !self.validate() {
                self.global_abort();
                return Err(());
            }
            let (pub_mask, _) = rt.sharded_ring().publish_software_summarized(
                &self.th.hw,
                &self.wmir,
                rt.summaries(),
            );
            self.th.stats.record_shard_publish(pub_mask);
            self.undo.unlock_all_nt(&self.th.hw);
            let resets = rt
                .sharded_ring()
                .maybe_reset_summaries(&self.th.hw, rt.summaries());
            self.th.stats.record_summary_resets(&resets);
        }
        self.cleanup_partitioned();
        // Controller feedback (see the base executor).
        if adaptive && !split_tx && slot.record_clean_commit(max_run) == PlanChange::Merged {
            self.th.stats.plan_merges += 1;
        }
        Ok(())
    }

    fn drive<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        let cfg = self.th.rt.config().clone();
        if w.is_irrevocable() {
            self.th.stats.fallbacks_gl += 1;
            run_global_lock(&self.th, w, true);
            w.after_commit();
            self.th.stats.record_commit(CommitPath::GlobalLock);
            return CommitPath::GlobalLock;
        }
        // Single fast-path routing decision (see `planner::FastProfile`).
        let slot = self.th.rt.sites().slot(w.site());
        let prior = w.profiled_resource_limited();
        let route = self.profile.route(&cfg, slot, prior, &mut self.th.stats);
        if let FastRoute::Attempt { budget } = route {
            let mut fails = 0;
            loop {
                wait_glock_released(&self.th);
                match self.try_fast(w) {
                    Ok(()) => {
                        self.profile.note_exit(&cfg, slot, FastExit::Commit);
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    Err(code) if code.is_resource_failure() => {
                        self.profile.note_exit(&cfg, slot, FastExit::Resource);
                        self.th.stats.fallbacks_partitioned += 1;
                        break;
                    }
                    Err(_) => {
                        fails += 1;
                        if fails >= budget {
                            self.profile.note_exit(&cfg, slot, FastExit::Exhausted);
                            if budget < cfg.fast_retries {
                                self.th.stats.adaptive_retry_saves +=
                                    (cfg.fast_retries - budget) as u64;
                            }
                            self.th.stats.fallbacks_gl += 1;
                            run_global_lock(&self.th, w, true);
                            w.after_commit();
                            self.th.stats.record_commit(CommitPath::GlobalLock);
                            return CommitPath::GlobalLock;
                        }
                    }
                }
            }
        }
        let mut gfails = 0;
        loop {
            match self.try_partitioned(w) {
                Ok(()) => {
                    w.after_commit();
                    self.th.stats.record_commit(CommitPath::SubHtm);
                    return CommitPath::SubHtm;
                }
                Err(()) => {
                    gfails += 1;
                    if gfails >= cfg.part_retries {
                        self.th.stats.fallbacks_gl += 1;
                        run_global_lock(&self.th, w, true);
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::GlobalLock);
                        return CommitPath::GlobalLock;
                    }
                    spin_work(cfg.backoff_units << gfails.min(6));
                    htm_sim::vclock::yield_now();
                }
            }
        }
    }
}

impl Drop for PartHtmO<'_> {
    /// Return the signature mirrors and the journal to this thread's
    /// [`SigArena`] (see the base executor's `Drop`).
    fn drop(&mut self) {
        let empty = Sig::new(SigSpec::new(64));
        let rmir = std::mem::replace(&mut self.rmir, empty.clone());
        let wmir = std::mem::replace(&mut self.wmir, empty);
        let journal = std::mem::take(&mut self.journal);
        SigArena::with(|a| {
            a.recycle_sig(rmir);
            a.recycle_sig(wmir);
            a.recycle_journal(journal);
        });
    }
}

impl<'r> TmExecutor<'r> for PartHtmO<'r> {
    const NAME: &'static str = "Part-HTM-O";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        let th = TmThread::new(rt, thread_id);
        let arena = rt.arena(thread_id);
        let spec = rt.config().sig_spec;
        let (rmir, wmir, journal) =
            SigArena::with(|a| (a.take_sig(spec), a.take_sig(spec), a.take_journal()));
        Self {
            undo: UndoLog::new(arena.undo_base, arena.undo_words),
            locked: LockedSet::default(),
            arena,
            rmir,
            wmir,
            journal,
            times: ShardTimes::new(),
            profile: FastProfile::default(),
            plan: Vec::new(),
            th,
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        self.drive(w)
    }

    /// Shed: commit under the global lock (value-masked reads, as on this
    /// executor's slow path) with no speculative attempt — see
    /// [`PartHtm::execute_shed`](crate::PartHtm).
    fn execute_shed<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        self.th.stats.shed_commits += 1;
        run_global_lock(&self.th, w, true);
        w.after_commit();
        self.th.stats.record_commit(CommitPath::GlobalLock);
        CommitPath::GlobalLock
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm_sim::abort::TxResult;
    use rand::rngs::SmallRng;

    struct Incr {
        n: usize,
        segs: usize,
        base: Addr,
    }

    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segments(&self) -> usize {
            self.segs
        }
        fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
            let per = self.n / self.segs;
            for i in seg * per..(seg + 1) * per {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    #[test]
    fn locked_set_mark_truncate() {
        let mut l = LockedSet::default();
        l.insert(1);
        let m = l.mark();
        l.insert(2);
        l.insert(3);
        assert!(l.contains(3));
        l.truncate(m);
        assert!(l.contains(1));
        assert!(!l.contains(2));
        assert_eq!(l.len(), 1);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn fast_path_commits_small_tx() {
        let rt = TmRuntime::with_defaults(1, 1024);
        let mut e = PartHtmO::new(&rt, 0);
        let mut w = Incr {
            n: 4,
            segs: 1,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        for i in 0..4 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
    }

    #[test]
    fn partitioned_path_locks_and_unlocks() {
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            1,
            2048,
        );
        let mut e = PartHtmO::new(&rt, 0);
        let mut w = Incr {
            n: 96,
            segs: 8,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        for i in 0..96 {
            let v = rt.verify_read(i * 8);
            assert_eq!(v, 1, "counter {i} must be 1 and unlocked, got {v:#x}");
        }
    }

    use crate::runtime::TmConfig;

    #[test]
    fn values_never_observed_locked_by_fast_path() {
        // A partitioned writer keeps locking values; fast-path readers must either
        // see pre-lock or post-unlock values, never the lock bit.
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            2,
            2048,
        );
        struct ReadAll {
            n: usize,
            base: Addr,
            seen: Vec<u64>,
        }
        impl Workload for ReadAll {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn reset(&mut self) {
                self.seen.clear();
            }
            fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
                for i in 0..self.n {
                    let v = ctx.read(self.base + (i * 8) as Addr)?;
                    self.seen.push(v);
                }
                Ok(())
            }
        }
        std::thread::scope(|s| {
            let rt = &rt;
            s.spawn(move || {
                let mut e = PartHtmO::new(rt, 0);
                let mut w = Incr {
                    n: 96,
                    segs: 8,
                    base: rt.app(0),
                };
                for _ in 0..10 {
                    e.execute(&mut w);
                }
            });
            s.spawn(move || {
                let mut e = PartHtmO::new(rt, 1);
                let mut w = ReadAll {
                    n: 96,
                    base: rt.app(0),
                    seen: Vec::new(),
                };
                for _ in 0..50 {
                    e.execute(&mut w);
                    for &v in &w.seen {
                        assert_eq!(v & LOCK_BIT, 0, "observed a locked value: {v:#x}");
                    }
                }
            });
        });
        // All locks released at the end.
        for i in 0..96 {
            assert_eq!(rt.verify_read(i * 8) & LOCK_BIT, 0);
        }
    }

    #[test]
    fn concurrent_opaque_increments_exact() {
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            4,
            4096,
        );
        const TXS: usize = 25;
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = PartHtmO::new(rt, t);
                    let mut w = Incr {
                        n: 16,
                        segs: 4,
                        base: rt.app(0),
                    };
                    for _ in 0..TXS {
                        e.execute(&mut w);
                    }
                });
            }
        });
        for i in 0..16 {
            assert_eq!(rt.verify_read(i * 8), (4 * TXS) as u64);
        }
        assert_eq!(rt.system().nt_read(rt.active_tx()), 0);
        assert_eq!(rt.system().nt_read(rt.glock()), 0);
    }
}
