//! Stretch-HTM: capacity **stretching** instead of capacity **splitting**.
//!
//! Part-HTM rescues resource-limited transactions by *partitioning* them into
//! sub-HTM transactions glued together with software metadata (§5.3). On
//! hardware with suspended regions (the POWER8-style
//! [`htm_sim::BackendKind::Power`] backend), there is a second strategy: keep
//! the transaction **whole** and stretch the resources around it —
//!
//! * **Read-set stretching**: once the hardware read budget is nearly full,
//!   further reads go through [`htm_sim::HtmTx::read_stretched`]
//!   (`tsuspend.` → software-logged load → `tresume.`): the line is still
//!   conflict-tracked (serializability is preserved by construction) but no
//!   longer charges the read budget. The price is the suspend round-trip per
//!   stretched access.
//! * **Time stretching**: computation the programmer declared
//!   non-transactional ([`crate::TxCtx::nt_work`]) runs inside a suspended
//!   region ([`htm_sim::HtmTx::suspended_work`]), where neither the timer
//!   quantum nor injected interrupts abort the transaction — the same escape
//!   Part-HTM's software segments provide, without leaving the transaction.
//!
//! Writes are **not** stretchable: suspended stores are non-transactional on
//! POWER, so the write set stays bounded by the backend's budget (64 entries
//! on the Power model). A write-heavy overflow still aborts with
//! [`htm_sim::AbortCode::Capacity`] and falls back to the global lock — which
//! is exactly the trade-off the `backendbench` splitting-vs-stretching
//! ablation measures (`docs/backends.md`).
//!
//! On backends without suspended regions
//! ([`htm_sim::CapacityModel::supports_suspend`] false: TSX, the
//! limited-set model, or the legacy inline path), the ctx degrades to plain
//! transactional accesses and the executor behaves exactly like the HTM-GL
//! baseline — attempts, then the lock.

use crate::api::{spin_work, CommitPath, TmExecutor, TxCtx, Workload, XABORT_GLOCK};
use crate::parthtm::{run_global_lock, wait_glock_released};
use crate::runtime::{TmRuntime, TmThread};
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmTx};

/// Keep this many read-budget entries in reserve for protocol reads (the
/// glock subscription) before stretching kicks in.
const READ_RESERVE: usize = 8;

/// Minimum declared non-transactional work worth a suspend round-trip:
/// smaller bursts stay transactional (the suspend overhead would dominate).
pub const SUSPEND_WORK_MIN: u64 = 4;

/// The stretching transaction context: transparently re-routes reads past
/// the hardware budget through suspended loads and bulky non-transactional
/// work through suspended regions. Workload code is unchanged — the ctx *is*
/// the instrumentation, per the repo's [`TxCtx`] convention.
pub struct StretchCtx<'c, 'a, 's> {
    /// The enclosing hardware transaction.
    pub tx: &'c mut HtmTx<'a, 's>,
    /// Stretch reads once `tx.read_lines()` reaches this many lines;
    /// `usize::MAX` (no suspend support) disables stretching entirely.
    pub stretch_at: usize,
    /// Suspend declared non-transactional work of at least
    /// [`SUSPEND_WORK_MIN`] units; false when the backend cannot suspend.
    pub suspend_work: bool,
}

impl TxCtx for StretchCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.tx.read_lines() >= self.stretch_at {
            self.tx.read_stretched(addr)
        } else {
            self.tx.read(addr)
        }
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }

    #[inline]
    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        if self.suspend_work && units >= SUSPEND_WORK_MIN {
            self.tx.suspend();
            self.tx.suspended_work(units);
            spin_work(units);
            return self.tx.resume();
        }
        self.work(units)
    }
}

/// The Stretch-HTM executor: whole-transaction hardware attempts with
/// suspend/resume resource stretching, global lock as the only fallback.
pub struct StretchHtm<'r> {
    th: TmThread<'r>,
    /// Read-line threshold past which reads stretch (`usize::MAX` = never).
    stretch_at: usize,
    /// Backend supports suspended regions at all.
    can_suspend: bool,
}

impl<'r> StretchHtm<'r> {
    fn try_htm<W: Workload>(&mut self, w: &mut W) -> TxResult<()> {
        w.reset();
        let glock = self.th.rt.glock();
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            match tx.read(glock) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = StretchCtx {
                tx: &mut tx,
                stretch_at: self.stretch_at,
                suspend_work: self.can_suspend,
            };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }
}

impl<'r> TmExecutor<'r> for StretchHtm<'r> {
    const NAME: &'static str = "Stretch-HTM";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        let m = rt.system().capacity_model();
        let can_suspend = m.supports_suspend;
        // Stretch once the hardware read budget (minus a protocol reserve)
        // is consumed; without suspend support the threshold is unreachable
        // and the ctx degrades to plain transactional reads.
        let stretch_at = if can_suspend {
            m.read_lines_max.saturating_sub(READ_RESERVE).max(1)
        } else {
            usize::MAX
        };
        Self {
            th: TmThread::new(rt, thread_id),
            stretch_at,
            can_suspend,
        }
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        let retries = self.th.rt.config().fast_retries;
        if !w.is_irrevocable() {
            for _ in 0..retries {
                wait_glock_released(&self.th);
                match self.try_htm(w) {
                    Ok(()) => {
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    // With stretching there is no partitioned rescue: a
                    // resource failure that stretching could not absorb (a
                    // write-set overflow, or no suspend support) goes to the
                    // lock immediately, like HTM-GL's no-retry-hint policy.
                    Err(code) if code.is_resource_failure() => break,
                    Err(_) => {}
                }
            }
        }
        self.th.stats.fallbacks_gl += 1;
        run_global_lock(&self.th, w, false);
        w.after_commit();
        self.th.stats.record_commit(CommitPath::GlobalLock);
        CommitPath::GlobalLock
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TmConfig;
    use htm_sim::{BackendKind, HtmConfig};
    use rand::rngs::SmallRng;

    /// Read `reads` counters, increment the first `writes` of them, burn
    /// `nt_units` of declared non-transactional work.
    struct ReadHeavy {
        reads: usize,
        writes: usize,
        nt_units: u64,
        base: Addr,
    }

    impl Workload for ReadHeavy {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            let mut sum = 0u64;
            for i in 0..self.reads {
                sum = sum.wrapping_add(ctx.read(self.base + (i * 8) as Addr)?);
            }
            if self.nt_units > 0 {
                ctx.nt_work(self.nt_units)?;
            }
            for i in 0..self.writes {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            std::hint::black_box(sum);
            Ok(())
        }
    }

    fn power_rt(threads: usize, app_words: usize) -> TmRuntime {
        TmRuntime::new(
            HtmConfig {
                backend: Some(BackendKind::Power),
                ..HtmConfig::default()
            },
            TmConfig::default(),
            threads,
            app_words,
        )
    }

    #[test]
    fn over_budget_reads_commit_in_hardware_by_stretching() {
        // Power read budget: 128 lines. 180 read lines would be a certain
        // capacity abort without stretching.
        let rt = power_rt(1, 180 * 8);
        let mut e = StretchHtm::new(&rt, 0);
        let mut w = ReadHeavy {
            reads: 180,
            writes: 4,
            nt_units: 0,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        for i in 0..4 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
        assert!(
            e.thread().hw.stretch.stretched_reads > 0,
            "the read budget must have been stretched"
        );
    }

    #[test]
    fn quantum_heavy_nt_work_commits_by_suspending() {
        // Quantum 2000; 10_000 declared-non-transactional units would be a
        // certain timer abort in a plain hardware transaction.
        let rt = TmRuntime::new(
            HtmConfig {
                backend: Some(BackendKind::Power),
                quantum: 2000,
                ..HtmConfig::default()
            },
            TmConfig::default(),
            1,
            256,
        );
        let mut e = StretchHtm::new(&rt, 0);
        let mut w = ReadHeavy {
            reads: 4,
            writes: 2,
            nt_units: 10_000,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(e.thread().hw.stats.aborts_timer, 0);
        assert!(e.thread().hw.stretch.suspended_work >= 10_000);
    }

    #[test]
    fn write_overflow_still_falls_to_global_lock() {
        // 96 written lines exceed Power's 64-entry write set; writes cannot
        // stretch, so the lock must rescue the transaction.
        let rt = power_rt(1, 96 * 8);
        let mut e = StretchHtm::new(&rt, 0);
        let mut w = ReadHeavy {
            reads: 0,
            writes: 96,
            nt_units: 0,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);
        for i in 0..96 {
            assert_eq!(rt.verify_read(i * 8), 1);
        }
        assert_eq!(rt.system().nt_read(rt.glock()), 0, "lock released");
    }

    #[test]
    fn degrades_to_htm_gl_without_suspend_support() {
        // TSX backend: no suspended regions — the executor must still be
        // correct (plain attempts, then the lock).
        let rt = TmRuntime::new(
            HtmConfig {
                backend: Some(BackendKind::Tsx),
                ..HtmConfig::default()
            },
            TmConfig::default(),
            1,
            256,
        );
        let mut e = StretchHtm::new(&rt, 0);
        let mut w = ReadHeavy {
            reads: 8,
            writes: 4,
            nt_units: 100,
            base: rt.app(0),
        };
        assert_eq!(e.execute(&mut w), CommitPath::Htm);
        assert_eq!(e.thread().hw.stretch.suspends, 0);
        assert_eq!(e.thread().hw.stretch.stretched_reads, 0);
    }

    #[test]
    fn concurrent_stretched_increments_are_serializable() {
        // 4 threads read 150 shared lines (past the read budget, so every
        // transaction stretches) and increment the first 32 (within the
        // 64-entry write set) — sums must be exact: stretched lines stay
        // conflict-tracked.
        let rt = power_rt(4, 150 * 8);
        const TXS: usize = 15;
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = StretchHtm::new(rt, t);
                    let mut w = ReadHeavy {
                        reads: 150,
                        writes: 32,
                        nt_units: 0,
                        base: rt.app(0),
                    };
                    for _ in 0..TXS {
                        e.execute(&mut w);
                    }
                });
            }
        });
        for i in 0..32 {
            assert_eq!(rt.verify_read(i * 8), (4 * TXS) as u64, "counter {i}");
        }
        assert_eq!(rt.system().nt_read(rt.glock()), 0);
        assert_eq!(rt.system().nt_read(rt.active_tx()), 0);
        assert_eq!(rt.system().live_line_entries(), 0);
    }
}
