//! Protocol-level statistics: commits per path and software-framework events.
//!
//! Hardware-level abort causes are tracked separately by
//! [`htm_sim::HtmStats`]; together they regenerate the paper's Table 1.

use crate::api::CommitPath;
use tm_sig::{ShardedValidation, SummaryResetStats, MAX_RING_SHARDS};

/// Per-thread protocol counters; merged across threads by the harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TmStats {
    /// Transactions committed on the fast path / as pure HTM.
    pub commits_htm: u64,
    /// Transactions committed on the partitioned path.
    pub commits_subhtm: u64,
    /// Transactions committed under the global lock.
    pub commits_gl: u64,
    /// Transactions committed by a software (STM) commit.
    pub commits_stm: u64,
    /// Fast-path attempts that aborted.
    pub fast_aborts: u64,
    /// Sub-HTM transaction attempts that aborted.
    pub sub_aborts: u64,
    /// Global (partitioned-path) transactions aborted by validation or lock
    /// conflicts after at least one sub-HTM transaction committed.
    pub global_aborts: u64,
    /// STM attempts that aborted (baselines).
    pub stm_aborts: u64,
    /// Transactions that gave up on the fast path and entered the partitioned path.
    pub fallbacks_partitioned: u64,
    /// Transactions that fell all the way back to the global lock.
    pub fallbacks_gl: u64,
    /// In-flight validations decided by the ring-summary fast path (no per-entry
    /// walk).
    pub val_fast_hits: u64,
    /// In-flight validations that fell back to the precise per-entry ring walk.
    pub val_fast_misses: u64,
    /// Ring-summary generation resets performed by this thread.
    pub summary_resets: u64,
    /// Summary fast-pass misses caused by a dirty summary (the read signature
    /// intersected the summary words; eager resets cure these).
    pub summary_miss_dirty: u64,
    /// Summary fast-pass misses caused by transient instability (in-flight
    /// publisher, generation/epoch movement, window predating the last reset;
    /// eager resets only create more of these).
    pub summary_miss_inflight: u64,
    /// Epoch-mode summary resets that retired a bank (`<= summary_resets`).
    pub epoch_retires: u64,
    /// Due epoch resets deferred because a validator held an older epoch pin
    /// (the grace-period rule).
    pub epoch_pinned_stalls: u64,
    /// Sub-HTM segment failures rolled back through the signature journal.
    pub journal_rollbacks: u64,
    /// Signature/journal buffers recycled from the per-thread arena
    /// ([`tm_sig::SigArena`]) instead of freshly allocated.
    pub arena_reuses: u64,
    /// Arena requests the pool could not serve (fresh allocations).
    pub arena_allocs: u64,
    /// Hot-loop dispatches that fell to the scalar differential oracles
    /// ([`tm_sig::kernels`]); non-zero only under `TmConfig::scalar_kernels`.
    pub scalar_kernel_falls: u64,
    /// Transactions the abort-profile controller routed straight to the
    /// partitioned path (learned futility demotion, the static hint prior, or
    /// the legacy resource streak — not the `skip_fast` config override).
    pub site_demotions: u64,
    /// Segment-plan merges: the controller grew a site's group size, so
    /// subsequent transactions run fewer sub-HTM round-trips.
    pub plan_merges: u64,
    /// Segment-plan splits: a merged group died of a capacity-class abort and
    /// was re-run as single declared segments (the controller also halves the
    /// site's group size).
    pub plan_splits: u64,
    /// Retry attempts the adaptive budgets avoided: on every retry loop that
    /// exhausted a reduced budget, the difference to the configured default.
    pub adaptive_retry_saves: u64,
    /// Transactions an admission controller shed straight to the serialized
    /// slow path ([`crate::TmExecutor::execute_shed`]); these also count in
    /// `commits_gl`, so `shed_commits <= commits_gl`.
    pub shed_commits: u64,
    /// Multi-request group commits executed (batches of coalesced server
    /// requests run as one planner-declared multi-segment transaction).
    pub batch_groups: u64,
    /// Requests carried by those group commits (`>= batch_groups`; the mean
    /// batch width is `batch_reqs / batch_groups`).
    pub batch_reqs: u64,
    /// Ring publishes (hardware or software) that touched each shard; a
    /// cross-shard commit counts once per shard it touched.
    pub shard_publishes: [u64; MAX_RING_SHARDS],
    /// Per-shard validation decisions (summary fast pass or precise walk); one
    /// sharded validation counts once per shard its read signature touched.
    pub shard_validations: [u64; MAX_RING_SHARDS],
}

impl TmStats {
    /// Record a commit on `path`.
    #[inline]
    pub fn record_commit(&mut self, path: CommitPath) {
        match path {
            CommitPath::Htm => self.commits_htm += 1,
            CommitPath::SubHtm => self.commits_subhtm += 1,
            CommitPath::GlobalLock => self.commits_gl += 1,
            CommitPath::Stm => self.commits_stm += 1,
        }
    }

    /// Total committed transactions.
    pub fn commits_total(&self) -> u64 {
        self.commits_htm + self.commits_subhtm + self.commits_gl + self.commits_stm
    }

    /// Percentage of commits on `path` (0.0 with no commits).
    pub fn commit_pct(&self, path: CommitPath) -> f64 {
        let total = self.commits_total();
        if total == 0 {
            return 0.0;
        }
        let n = match path {
            CommitPath::Htm => self.commits_htm,
            CommitPath::SubHtm => self.commits_subhtm,
            CommitPath::GlobalLock => self.commits_gl,
            CommitPath::Stm => self.commits_stm,
        };
        n as f64 * 100.0 / total as f64
    }

    /// Credit one publish to every shard set in `shard_mask`.
    #[inline]
    pub fn record_shard_publish(&mut self, shard_mask: u32) {
        Self::bump_shards(&mut self.shard_publishes, shard_mask);
    }

    /// Credit one validation decision to every shard set in `shard_mask`.
    #[inline]
    pub fn record_shard_validation(&mut self, shard_mask: u32) {
        Self::bump_shards(&mut self.shard_validations, shard_mask);
    }

    /// Credit a sharded validation outcome: the fast/walked split, the
    /// per-shard decision counts and the fast-pass miss causes.
    #[inline]
    pub fn record_sharded_validation(&mut self, v: &ShardedValidation) {
        self.val_fast_hits += v.fast_shards.count_ones() as u64;
        self.val_fast_misses += v.walked_shards.count_ones() as u64;
        self.summary_miss_dirty += v.dirty_shards.count_ones() as u64;
        self.summary_miss_inflight += v.inflight_shards.count_ones() as u64;
        Self::bump_shards(
            &mut self.shard_validations,
            v.fast_shards | v.walked_shards,
        );
    }

    /// Credit one summary reset sweep's outcome.
    #[inline]
    pub fn record_summary_resets(&mut self, r: &SummaryResetStats) {
        self.summary_resets += r.resets;
        self.epoch_retires += r.epoch_retires;
        self.epoch_pinned_stalls += r.pinned_stalls;
    }

    fn bump_shards(arr: &mut [u64; MAX_RING_SHARDS], mut mask: u32) {
        while mask != 0 {
            let s = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            arr[s] += 1;
        }
    }

    /// Merge another thread's counters.
    pub fn merge(&mut self, o: &TmStats) {
        self.commits_htm += o.commits_htm;
        self.commits_subhtm += o.commits_subhtm;
        self.commits_gl += o.commits_gl;
        self.commits_stm += o.commits_stm;
        self.fast_aborts += o.fast_aborts;
        self.sub_aborts += o.sub_aborts;
        self.global_aborts += o.global_aborts;
        self.stm_aborts += o.stm_aborts;
        self.fallbacks_partitioned += o.fallbacks_partitioned;
        self.fallbacks_gl += o.fallbacks_gl;
        self.val_fast_hits += o.val_fast_hits;
        self.val_fast_misses += o.val_fast_misses;
        self.summary_resets += o.summary_resets;
        self.summary_miss_dirty += o.summary_miss_dirty;
        self.summary_miss_inflight += o.summary_miss_inflight;
        self.epoch_retires += o.epoch_retires;
        self.epoch_pinned_stalls += o.epoch_pinned_stalls;
        self.journal_rollbacks += o.journal_rollbacks;
        self.arena_reuses += o.arena_reuses;
        self.arena_allocs += o.arena_allocs;
        self.scalar_kernel_falls += o.scalar_kernel_falls;
        self.site_demotions += o.site_demotions;
        self.plan_merges += o.plan_merges;
        self.plan_splits += o.plan_splits;
        self.adaptive_retry_saves += o.adaptive_retry_saves;
        self.shed_commits += o.shed_commits;
        self.batch_groups += o.batch_groups;
        self.batch_reqs += o.batch_reqs;
        for s in 0..MAX_RING_SHARDS {
            self.shard_publishes[s] += o.shard_publishes[s];
            self.shard_validations[s] += o.shard_validations[s];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_percentages() {
        let mut s = TmStats::default();
        s.record_commit(CommitPath::Htm);
        s.record_commit(CommitPath::Htm);
        s.record_commit(CommitPath::SubHtm);
        s.record_commit(CommitPath::GlobalLock);
        assert_eq!(s.commits_total(), 4);
        assert!((s.commit_pct(CommitPath::Htm) - 50.0).abs() < 1e-9);
        assert!((s.commit_pct(CommitPath::SubHtm) - 25.0).abs() < 1e-9);
        assert_eq!(s.commit_pct(CommitPath::Stm), 25.0 - 25.0 + 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = TmStats {
            commits_htm: 1,
            global_aborts: 2,
            ..Default::default()
        };
        let b = TmStats {
            commits_htm: 3,
            fallbacks_gl: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits_htm, 4);
        assert_eq!(a.global_aborts, 2);
        assert_eq!(a.fallbacks_gl, 1);
    }

    #[test]
    fn empty_pct_is_zero() {
        assert_eq!(TmStats::default().commit_pct(CommitPath::Htm), 0.0);
    }
}
