//! The value-based undo-log (§5.1): old values of locations written by committed
//! sub-HTM transactions, used to roll the shared memory back when the enclosing
//! global transaction aborts.
//!
//! The log entries live in a heap arena and are appended **inside** the sub-HTM
//! transaction (Fig. 1 line 23), so — like in the real system — the log consumes HTM
//! write capacity and its entries vanish automatically when the sub-HTM transaction
//! aborts (well, almost: the simulator's buffered writes vanish; the software length
//! cursor is rolled back with [`UndoLog::truncate`]). The paper calls this log "the
//! biggest source of overhead in Part-HTM".

use crate::api::{LOCK_BIT, XABORT_UNDO_FULL};
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmThread, HtmTx};

/// Software cursor over a heap-resident undo arena of (address, old-value) pairs.
pub struct UndoLog {
    base: Addr,
    capacity_words: usize,
    len_entries: usize,
}

impl UndoLog {
    /// Wrap a heap arena of `capacity_words` words starting at `base`.
    pub fn new(base: Addr, capacity_words: usize) -> Self {
        Self {
            base,
            capacity_words,
            len_entries: 0,
        }
    }

    /// Number of logged writes.
    pub fn len(&self) -> usize {
        self.len_entries
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.len_entries == 0
    }

    /// Append `(addr, old)` transactionally (from inside a sub-HTM transaction).
    /// Explicitly aborts the hardware transaction with [`XABORT_UNDO_FULL`] when the
    /// arena is full.
    pub fn append_tx(&mut self, tx: &mut HtmTx<'_, '_>, addr: Addr, old: u64) -> TxResult<()> {
        let at = self.len_entries * 2;
        if at + 2 > self.capacity_words {
            return Err(tx.xabort(XABORT_UNDO_FULL));
        }
        // The arena is thread-private and entries beyond the software cursor are
        // dead, so the stores need capacity accounting but no versioning.
        tx.write_private(self.base + at as Addr, addr as u64)?;
        tx.write_private(self.base + at as Addr + 1, old)?;
        self.len_entries += 1;
        Ok(())
    }

    /// Roll the cursor back to `mark` entries (a failed sub-HTM attempt's appends
    /// were never published, so dropping the cursor suffices).
    pub fn truncate(&mut self, mark: usize) {
        debug_assert!(mark <= self.len_entries);
        self.len_entries = mark;
    }

    /// Forget everything (global transaction finished).
    pub fn clear(&mut self) {
        self.len_entries = 0;
    }

    /// Entry `i` as `(addr, old value)`, read non-transactionally. Valid only for
    /// entries of *committed* sub-HTM transactions (published to the heap).
    pub fn entry_nt(&self, th: &HtmThread<'_>, i: usize) -> (Addr, u64) {
        debug_assert!(i < self.len_entries);
        let at = self.base + (i * 2) as Addr;
        (th.nt_read(at) as Addr, th.nt_read(at + 1))
    }

    /// Restore all logged old values, newest first (Fig. 1 line 53
    /// `undo_log.undo()`): a location written by two sub-HTM transactions has two
    /// entries, and reverse order leaves the oldest value in memory.
    pub fn undo_nt(&self, th: &HtmThread<'_>) {
        for i in (0..self.len_entries).rev() {
            let (addr, old) = self.entry_nt(th, i);
            th.nt_write(addr, old);
        }
    }

    /// Clear the embedded lock bit on every logged address (Part-HTM-O global
    /// commit, Fig. 2 lines 55–56), keeping the committed values.
    pub fn unlock_all_nt(&self, th: &HtmThread<'_>) {
        for i in 0..self.len_entries {
            let at = self.base + (i * 2) as Addr;
            let addr = th.nt_read(at) as Addr;
            th.system().nt_fetch_and_by(th.id(), addr, !LOCK_BIT);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TmRuntime;
    use crate::runtime::TmThread;

    fn setup() -> TmRuntime {
        TmRuntime::with_defaults(1, 256)
    }

    #[test]
    fn append_and_undo_restores_in_reverse() {
        let rt = setup();
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut log = UndoLog::new(a.undo_base, a.undo_words);
        let x = rt.app(0);

        rt.setup_write(0, 100);
        // First sub-HTM: write 200, logging 100.
        th.hw
            .attempt(|tx| {
                log.append_tx(tx, x, 100)?;
                tx.write(x, 200)
            })
            .unwrap();
        // Second sub-HTM: write 300, logging 200.
        th.hw
            .attempt(|tx| {
                log.append_tx(tx, x, 200)?;
                tx.write(x, 300)
            })
            .unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(rt.verify_read(0), 300);

        log.undo_nt(&th.hw);
        assert_eq!(
            rt.verify_read(0),
            100,
            "reverse-order restore yields oldest value"
        );
    }

    #[test]
    fn truncate_discards_failed_attempt() {
        let rt = setup();
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut log = UndoLog::new(a.undo_base, a.undo_words);
        let x = rt.app(0);

        th.hw
            .attempt(|tx| {
                log.append_tx(tx, x, 0)?;
                tx.write(x, 1)
            })
            .unwrap();
        let mark = log.len();
        // Failed attempt: its appends roll back with the hardware transaction.
        let r = th.hw.attempt(|tx| -> htm_sim::abort::TxResult<()> {
            log.append_tx(tx, x, 1)?;
            tx.write(x, 2)?;
            Err(tx.xabort(9))
        });
        assert!(r.is_err());
        log.truncate(mark);
        assert_eq!(log.len(), 1);
        log.undo_nt(&th.hw);
        assert_eq!(rt.verify_read(0), 0);
    }

    #[test]
    fn overflow_aborts_with_undo_full() {
        let rt = TmRuntime::new(
            htm_sim::HtmConfig::default(),
            crate::runtime::TmConfig {
                undo_words: 4,
                ..Default::default()
            },
            1,
            64,
        );
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut log = UndoLog::new(a.undo_base, a.undo_words);
        let r = th.hw.attempt(|tx| {
            log.append_tx(tx, rt.app(0), 0)?;
            log.append_tx(tx, rt.app(1), 0)?;
            log.append_tx(tx, rt.app(2), 0)?; // third entry needs words 4..6 > 4
            Ok(())
        });
        assert_eq!(r, Err(htm_sim::AbortCode::Explicit(XABORT_UNDO_FULL)));
    }

    #[test]
    fn unlock_all_clears_lock_bits_keeping_values() {
        let rt = setup();
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut log = UndoLog::new(a.undo_base, a.undo_words);
        let x = rt.app(3);
        th.hw
            .attempt(|tx| {
                log.append_tx(tx, x, 0)?;
                tx.write(x, 42 | LOCK_BIT)
            })
            .unwrap();
        assert_eq!(rt.verify_read(3) & LOCK_BIT, LOCK_BIT);
        log.unlock_all_nt(&th.hw);
        assert_eq!(rt.verify_read(3), 42);
    }
}
