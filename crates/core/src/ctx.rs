//! Per-path instrumentation contexts for the *base* (non-opaque) Part-HTM protocol,
//! plus the contexts shared by every executor (slow path, software segments).
//!
//! Each context implements [`TxCtx`], so the same workload code runs on any path:
//!
//! * [`FastCtx`] — fast path (Fig. 1 lines 3–6): record the address in the local
//!   read/write signature *before* touching memory, then do a plain HTM access.
//! * [`SubCtx`] — sub-HTM transactions (Fig. 1 lines 21–25): like the fast path,
//!   plus value logging into the undo-log before every write.
//! * [`SlowCtx`] — global-lock path (Fig. 1 lines 63–64): uninstrumented direct
//!   accesses (strongly atomic in the simulator).
//! * [`SoftwareCtx`] — a partitioned-path segment that the static profiler marked as
//!   touching no shared state: pure computation outside any hardware transaction.
//!
//! Local signatures are maintained twice, by design: the **heap** copy is written
//! inside the hardware transaction so the signature's footprint costs HTM capacity,
//! as in the paper, while the **software mirror** is the authoritative value used by
//! every protocol decision (commit validations, in-flight validation, lock release).
//! Since nothing ever reads the heap copy back, its stores use
//! [`htm_sim::HtmTx::write_private`] — capacity accounting without write buffering —
//! and failed attempts simply restore the mirror.

use crate::api::{spin_work, TxCtx, VALUE_MASK};
use crate::undo::UndoLog;
use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmThread, HtmTx};
use tm_sig::{kernels, HeapSig, Sig, SigJournal, SigSlot};

/// A heap-resident signature paired with its software mirror; both are updated on
/// every add.
pub struct SigPair<'a> {
    /// Heap copy (transactional updates).
    pub heap: HeapSig,
    /// Software mirror.
    pub mirror: &'a mut Sig,
}

impl SigPair<'_> {
    /// Record `addr` in both copies: the mirror authoritatively, the heap copy as a
    /// private store whose only purpose is charging the signature's cache footprint
    /// against HTM capacity. New bits only — repeated accesses are free, as on real
    /// hardware where the line is already dirty in L1.
    #[inline]
    pub fn add(&mut self, tx: &mut HtmTx<'_, '_>, addr: Addr) -> TxResult<()> {
        let (w, m) = self.mirror.spec().slot_of(addr);
        if self.mirror.add_slot(w, m) {
            tx.write_private(self.heap.word_addr(w), self.mirror.word(w))?;
        }
        Ok(())
    }

    /// [`SigPair::add`] with undo journalling: the word's pre-add value is recorded
    /// in `journal` (first dirty only) so a failed segment can roll the mirror back
    /// without ever having cloned it. Only the mirror is journalled — the heap copy
    /// is capacity ballast that nothing reads back, so stale bits there after an
    /// abort are as harmless as they were under the clone scheme.
    #[inline]
    pub fn add_journaled(
        &mut self,
        tx: &mut HtmTx<'_, '_>,
        addr: Addr,
        journal: &mut SigJournal,
        slot: SigSlot,
    ) -> TxResult<()> {
        let (w, m) = self.mirror.spec().slot_of(addr);
        let old = self.mirror.word(w);
        if old & m == 0 {
            journal.note(slot, w, old);
            self.mirror.add_slot(w, m);
            tx.write_private(self.heap.word_addr(w), old | m)?;
        }
        Ok(())
    }
}

/// Fast-path context (Fig. 1 lines 3–6).
pub struct FastCtx<'c, 'a, 's> {
    /// The enclosing hardware transaction.
    pub tx: &'c mut HtmTx<'a, 's>,
    /// Local read-set signature.
    pub rsig: SigPair<'c>,
    /// Local write-set signature.
    pub wsig: SigPair<'c>,
    /// Set when the transaction performs any write (read-only transactions skip the
    /// ring publish, Fig. 1 line 9; writers publish per touched shard of the
    /// sharded ring — `docs/ring-sharding.md` §3).
    pub wrote: &'c mut bool,
}

impl TxCtx for FastCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        self.rsig.add(self.tx, addr)?;
        self.tx.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        self.wsig.add(self.tx, addr)?;
        *self.wrote = true;
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// Sub-HTM context (Fig. 1 lines 21–25).
pub struct SubCtx<'c, 'a, 's> {
    /// The enclosing sub-HTM hardware transaction.
    pub tx: &'c mut HtmTx<'a, 's>,
    /// Read-set signature, accumulated across all sub-HTM transactions of the
    /// enclosing global transaction.
    pub rsig: SigPair<'c>,
    /// Write-set signature of the *current* sub-HTM transaction only.
    pub wsig: SigPair<'c>,
    /// The global transaction's value-based undo-log.
    pub undo: &'c mut UndoLog,
    /// The segment's signature undo journal: mirror words are rolled back from it
    /// when the segment fails, instead of restoring pre-segment clones.
    pub journal: &'c mut SigJournal,
    /// Set when any write happens anywhere in the global transaction.
    pub wrote: &'c mut bool,
}

impl TxCtx for SubCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        // Values written by previous sub-HTM transactions of this very global
        // transaction are already in shared memory (eager writing), so a plain read
        // suffices (§5.3.4).
        self.rsig
            .add_journaled(self.tx, addr, self.journal, SigSlot::Read)?;
        self.tx.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        // Log the old value first (Fig. 1 line 23), then record and write.
        let old = self.tx.read(addr)?;
        self.undo.append_tx(self.tx, addr, old)?;
        self.wsig
            .add_journaled(self.tx, addr, self.journal, SigSlot::Write)?;
        *self.wrote = true;
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// Uninstrumented hardware-transaction context: plain transactional accesses with
/// no protocol metadata at all. Used by the *quiet* fast path — when the subscribed
/// `active_tx` counter proves no partitioned-path transaction runs concurrently,
/// Part-HTM's signatures, lock validation and ring publish exist for nobody, so the
/// fast path degenerates to pure HTM (its design goal of "comparable performance
/// between Part-HTM and pure HTM" in that regime, §4).
pub struct RawCtx<'c, 'a, 's> {
    /// The enclosing hardware transaction.
    pub tx: &'c mut HtmTx<'a, 's>,
}

impl TxCtx for RawCtx<'_, '_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        self.tx.read(addr)
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        self.tx.write(addr, val)
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        self.tx.work(units)?;
        spin_work(units);
        Ok(())
    }
}

/// Global-lock path context: direct, uninstrumented accesses (Fig. 1 lines 63–64).
/// Runs in mutual exclusion with every other path.
pub struct SlowCtx<'c, 'r> {
    /// The executing thread.
    pub th: &'c HtmThread<'r>,
    /// Part-HTM-O stores values with an embedded lock bit; its slow path masks reads
    /// so workloads see plain values.
    pub mask_values: bool,
}

impl TxCtx for SlowCtx<'_, '_> {
    #[inline]
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        let v = self.th.nt_read(addr);
        Ok(if self.mask_values { v & VALUE_MASK } else { v })
    }

    #[inline]
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        debug_assert_eq!(
            val & !VALUE_MASK,
            0,
            "application values must fit in 63 bits"
        );
        self.th.nt_write(addr, val);
        Ok(())
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    #[inline]
    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// Context for partitioned-path segments marked as *non-transactional code* (§4,
/// §5.3.1): computation executed outside any hardware transaction — this is how
/// Part-HTM rescues transactions that exceed the HTM budgets on such work.
///
/// Reads are permitted but **racy**: they see shared memory without any isolation
/// (including values written by still-uncommitted global transactions), exactly like
/// the unmonitored loads STAMP's labyrinth uses for its planning-phase grid copy.
/// Workloads may only use them for results they re-validate transactionally before
/// acting (the claim phase re-reads every cell). Writes are forbidden: the paper is
/// explicit that non-transactional code may not write globally visible locations —
/// such writes could neither be rolled back nor respect the write locks.
pub struct SoftwareCtx<'c, 'r> {
    /// The executing thread (for raw, unmonitored loads).
    pub th: &'c HtmThread<'r>,
    /// Part-HTM-O embeds lock bits in values; racy reads mask them so planning code
    /// sees "locked" as a plain non-zero value.
    pub mask_values: bool,
}

impl TxCtx for SoftwareCtx<'_, '_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        // Raw load: no conflict detection, no isolation — by design.
        let v = self.th.system().heap().load(addr);
        Ok(if self.mask_values { v & VALUE_MASK } else { v })
    }

    fn write(&mut self, _addr: Addr, _val: u64) -> TxResult<()> {
        unreachable!("software segments must not write shared memory (workload contract, §4)")
    }

    #[inline]
    fn work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }

    #[inline]
    fn nt_work(&mut self, units: u64) -> TxResult<()> {
        spin_work(units);
        Ok(())
    }
}

/// Fast-path pre-commit validation (Fig. 1 line 7): true iff
/// `write_locks ∩ (read_sig ∪ write_sig) != ∅`.
///
/// Only the shared write-locks words are read transactionally; the transaction's own
/// signatures are supplied as their software mirrors (exactly equal to the heap
/// copies). Words where the transaction has no bits need no read at all — their
/// intersection is empty whatever the lock word holds — which also keeps the
/// transaction's conflict surface on the lock lines minimal. The mirrors'
/// nonzero-word masks drive the scan, so a signature with a handful of set bits
/// costs a popcount loop, not a full-width walk.
pub fn fast_validation(
    tx: &mut HtmTx<'_, '_>,
    locks: &HeapSig,
    rmir: &Sig,
    wmir: &Sig,
) -> TxResult<bool> {
    let words = rmir.spec().words();
    let mut groups = rmir.nonzero_mask() | wmir.nonzero_mask();
    while groups != 0 {
        // Each mask bit covers words b, b+64, … (one word exactly for the practical
        // geometries, where words <= 64).
        let mut i = groups.trailing_zeros();
        groups &= groups - 1;
        while i < words {
            let mine = rmir.word(i) | wmir.word(i);
            if mine != 0 {
                let l = tx.read(locks.word_addr(i))?;
                if kernels::conflict_word(l, 0, mine) {
                    return Ok(true);
                }
            }
            i += 64;
        }
    }
    Ok(false)
}

/// Sub-HTM pre-commit validation (Fig. 1 lines 26–27): true iff
/// `(write_locks − agg) ∩ (read_sig ∪ write_sig) != ∅` — foreign locks only, thanks
/// to the aggregate-signature mask (§5.3.5). Own signatures come from the software
/// mirrors; only the shared lock words are read transactionally.
pub fn sub_validation(
    tx: &mut HtmTx<'_, '_>,
    locks: &HeapSig,
    amir: &Sig,
    rmir: &Sig,
    wmir: &Sig,
) -> TxResult<bool> {
    let words = rmir.spec().words();
    let mut groups = rmir.nonzero_mask() | wmir.nonzero_mask();
    while groups != 0 {
        let mut i = groups.trailing_zeros();
        groups &= groups - 1;
        while i < words {
            let mine = rmir.word(i) | wmir.word(i);
            if mine != 0 {
                let l = tx.read(locks.word_addr(i))?;
                if kernels::conflict_word(l, amir.word(i), mine) {
                    return Ok(true);
                }
            }
            i += 64;
        }
    }
    Ok(false)
}

/// Acquire write locks inside the sub-HTM commit (Fig. 1 line 29):
/// `write_locks ∪= write_sig`, touching only the lock words where this
/// sub-transaction has bits (from the write mirror) and skipping stores that would
/// not change the word.
pub fn acquire_locks_tx(tx: &mut HtmTx<'_, '_>, locks: &HeapSig, wmir: &Sig) -> TxResult<()> {
    for (i, w) in wmir.nonzero_words() {
        let l = tx.read(locks.word_addr(i))?;
        if l | w != l {
            tx.write(locks.word_addr(i), l | w)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{TmRuntime, TmThread};
    use tm_sig::SigSpec;

    #[test]
    fn fast_ctx_records_sigs_and_accesses() {
        let rt = TmRuntime::with_defaults(1, 64);
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut rmir = Sig::new(SigSpec::PAPER);
        let mut wmir = Sig::new(SigSpec::PAPER);
        let mut wrote = false;
        rt.setup_write(0, 11);

        let mut tx = th.hw.begin();
        {
            let mut ctx = FastCtx {
                tx: &mut tx,
                rsig: SigPair {
                    heap: a.read_sig,
                    mirror: &mut rmir,
                },
                wsig: SigPair {
                    heap: a.write_sig,
                    mirror: &mut wmir,
                },
                wrote: &mut wrote,
            };
            assert_eq!(ctx.read(rt.app(0)), Ok(11));
            ctx.write(rt.app(1), 22).unwrap();
        }
        tx.commit().unwrap();
        assert!(wrote);
        assert!(rmir.contains(rt.app(0)));
        assert!(wmir.contains(rt.app(1)));
        // Heap copies were published at commit and match the mirrors.
        assert_eq!(a.read_sig.snapshot_nt(&th.hw), rmir);
        assert_eq!(a.write_sig.snapshot_nt(&th.hw), wmir);
        assert_eq!(rt.verify_read(1), 22);
    }

    #[test]
    fn sub_ctx_logs_old_values() {
        let rt = TmRuntime::with_defaults(1, 64);
        let mut th = TmThread::new(&rt, 0);
        let a = rt.arena(0);
        let mut rmir = Sig::new(SigSpec::PAPER);
        let mut wmir = Sig::new(SigSpec::PAPER);
        let mut undo = UndoLog::new(a.undo_base, a.undo_words);
        let mut journal = SigJournal::new();
        journal.begin(SigSpec::PAPER);
        let mut wrote = false;
        rt.setup_write(0, 5);

        let mut tx = th.hw.begin();
        {
            let mut ctx = SubCtx {
                tx: &mut tx,
                rsig: SigPair {
                    heap: a.read_sig,
                    mirror: &mut rmir,
                },
                wsig: SigPair {
                    heap: a.write_sig,
                    mirror: &mut wmir,
                },
                undo: &mut undo,
                journal: &mut journal,
                wrote: &mut wrote,
            };
            ctx.write(rt.app(0), 6).unwrap();
        }
        tx.commit().unwrap();
        // The journal recorded the write-mirror word's pre-segment value.
        assert_eq!(journal.len(), 1);
        journal.rollback(&mut rmir, &mut wmir);
        assert!(wmir.is_empty(), "rollback forgets the segment's sig bits");
        assert_eq!(undo.len(), 1);
        assert_eq!(undo.entry_nt(&th.hw, 0), (rt.app(0), 5));
        assert_eq!(rt.verify_read(0), 6);
        undo.undo_nt(&th.hw);
        assert_eq!(rt.verify_read(0), 5);
    }

    #[test]
    fn slow_ctx_direct_access() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        let mut ctx = SlowCtx {
            th: &th.hw,
            mask_values: false,
        };
        ctx.write(rt.app(2), 9).unwrap();
        assert_eq!(ctx.read(rt.app(2)), Ok(9));
        ctx.work(10).unwrap();
    }

    #[test]
    fn slow_ctx_masks_lock_bit_when_asked() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        rt.system()
            .heap()
            .store(rt.app(0), 7 | crate::api::LOCK_BIT);
        let mut ctx = SlowCtx {
            th: &th.hw,
            mask_values: true,
        };
        assert_eq!(ctx.read(rt.app(0)), Ok(7));
    }

    #[test]
    #[should_panic(expected = "software segments")]
    fn software_ctx_rejects_writes() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        let mut ctx = SoftwareCtx {
            th: &th.hw,
            mask_values: false,
        };
        let _ = ctx.write(0, 1);
    }

    #[test]
    fn software_ctx_racy_reads_and_masking() {
        let rt = TmRuntime::with_defaults(1, 64);
        let th = TmThread::new(&rt, 0);
        rt.system()
            .heap()
            .store(rt.app(0), 5 | crate::api::LOCK_BIT);
        let mut raw = SoftwareCtx {
            th: &th.hw,
            mask_values: false,
        };
        assert_eq!(raw.read(rt.app(0)).unwrap(), 5 | crate::api::LOCK_BIT);
        let mut masked = SoftwareCtx {
            th: &th.hw,
            mask_values: true,
        };
        assert_eq!(masked.read(rt.app(0)).unwrap(), 5);
        masked.work(3).unwrap();
        masked.nt_work(3).unwrap();
    }

    #[test]
    fn validations_detect_foreign_locks_only() {
        let rt = TmRuntime::with_defaults(2, 64);
        let th0 = TmThread::new(&rt, 0);
        let spec = SigSpec::PAPER;
        let locks = rt.write_locks();

        // Locks hold addr 10 (owned by us via the aggregate) and addr 20 (foreign).
        let mut l = Sig::new(spec);
        l.add(10);
        l.add(20);
        locks.write_nt(&th0.hw, &l);
        let mut own = Sig::new(spec);
        own.add(10);
        let mut r = Sig::new(spec);
        r.add(10); // we read our own locked location
        let wempty = Sig::new(spec);

        let mut th = TmThread::new(&rt, 1);
        // Fast validation (no self-lock concept) must flag addr 10.
        let hit_fast = th
            .hw
            .attempt(|tx| fast_validation(tx, locks, &r, &wempty))
            .unwrap();
        assert!(hit_fast);
        // Sub validation masks own locks: no conflict.
        let hit_sub = th
            .hw
            .attempt(|tx| sub_validation(tx, locks, &own, &r, &wempty))
            .unwrap();
        assert!(!hit_sub);
        // Reading the foreign lock's address flags it.
        let mut r2 = Sig::new(spec);
        r2.add(20);
        let hit_sub2 = th
            .hw
            .attempt(|tx| sub_validation(tx, locks, &own, &r2, &wempty))
            .unwrap();
        assert!(hit_sub2);
    }

    #[test]
    fn acquire_locks_sets_only_mirror_words() {
        let rt = TmRuntime::with_defaults(1, 64);
        let mut th = TmThread::new(&rt, 0);
        let locks = rt.write_locks();
        let mut w = Sig::new(SigSpec::PAPER);
        w.add(77);
        w.add(12345);
        th.hw.attempt(|tx| acquire_locks_tx(tx, locks, &w)).unwrap();
        assert_eq!(locks.snapshot_nt(&th.hw), w);
        // Releasing restores emptiness.
        locks.and_not_nt(&th.hw, &w);
        assert!(locks.snapshot_nt(&th.hw).is_empty());
    }
}
