//! The Part-HTM executor: three-path transaction processing (Fig. 1 of the paper).

use crate::api::{
    spin_work, CommitPath, TmExecutor, Workload, XABORT_GLOCK, XABORT_LOCKED, XABORT_NOT_QUIET,
    XABORT_UNDO_FULL,
};
use crate::ctx::{
    acquire_locks_tx, fast_validation, sub_validation, FastCtx, RawCtx, SigPair, SlowCtx,
    SoftwareCtx, SubCtx,
};
use crate::planner::{build_plan, FastExit, FastProfile, FastRoute, PlanChange, PlanStep};
use crate::runtime::{ThreadArena, TmRuntime, TmThread};
use crate::undo::UndoLog;
use htm_sim::abort::TxResult;
use htm_sim::AbortCode;
use tm_sig::{ShardTimes, Sig, SigArena, SigJournal, SigSpec};

/// Run a transaction under the global lock (the slow path, Fig. 1 lines 61–65):
/// acquire `GLock`, wait for every partitioned-path transaction to drain
/// (`active_tx == 0`), execute uninstrumented, release. Shared by Part-HTM,
/// Part-HTM-O and the HTM-GL baseline.
pub fn run_global_lock<W: Workload>(th: &TmThread<'_>, w: &mut W, mask_values: bool) {
    let rt = th.rt;
    while th.hw.nt_cas(rt.glock(), 0, 1).is_err() {
        htm_sim::vclock::yield_now();
    }
    while th.hw.nt_read(rt.active_tx()) != 0 {
        htm_sim::vclock::yield_now();
    }
    w.reset();
    let mut ctx = SlowCtx {
        th: &th.hw,
        mask_values,
    };
    for seg in 0..w.segments() {
        w.segment(seg, &mut ctx)
            .expect("slow-path operations cannot abort");
    }
    th.hw.nt_write(rt.glock(), 0);
}

/// Anti-lemming retry policy (§7, after the paper’s reference \[38\]): never retry in hardware while the
/// global lock is held — wait for its release first.
pub fn wait_glock_released(th: &TmThread<'_>) {
    while th.hw.nt_read(th.rt.glock()) != 0 {
        htm_sim::vclock::yield_now();
    }
}

/// Outcome of one planned sub-HTM group on the partitioned path.
pub(crate) enum GroupRun {
    /// The group committed as one sub-HTM transaction.
    Committed,
    /// A merged (multi-segment) group died of a capacity-class abort; the
    /// caller re-runs it as single declared segments (the planner's un-merge
    /// rule — retrying a too-big group as-is would be futile).
    Split,
    /// The enclosing global transaction must abort. `capacity` is true when
    /// the terminal abort was capacity-class (capacity/interrupt or an
    /// overflowing undo log), which feeds the controller's sub-path profile.
    Fail {
        /// Terminal abort was capacity-class.
        capacity: bool,
    },
}

/// Is this abort the class that splitting can cure (HTM resource exhaustion
/// or an overflowing undo log), as opposed to a data or lock conflict?
#[inline]
pub(crate) fn capacity_class(code: AbortCode) -> bool {
    code.is_resource_failure() || matches!(code, AbortCode::Explicit(XABORT_UNDO_FULL))
}

/// The Part-HTM protocol (serializable variant, Fig. 1).
pub struct PartHtm<'r> {
    th: TmThread<'r>,
    arena: ThreadArena,
    undo: UndoLog,
    /// Software mirror of the read-set signature (kept exactly equal to the heap
    /// copy: signature adds are write-only stores of the mirror word).
    rmir: Sig,
    /// Software mirror of the current sub-HTM write-set signature (kept exact).
    wmir: Sig,
    /// Software mirror of the aggregate write-set signature (kept exact).
    amir: Sig,
    /// Per-segment signature undo journal (zero-clone sub-HTM retries): records the
    /// mirrors' dirtied words so a failed segment rolls back by replaying a handful
    /// of words instead of restoring full clones. Lives on the executor so its
    /// storage is reused across segments and transactions — no allocation after
    /// warm-up.
    journal: SigJournal,
    /// Per-shard validation window: slot `s` holds the newest commit of ring
    /// shard `s` this transaction's reads are known consistent against.
    times: ShardTimes,
    /// The fast-path routing profile: the *single* decision point for
    /// skip-fast (config override, static hint, learned demotion, legacy
    /// resource streak), shared with [`crate::PartHtmO`] via
    /// [`crate::planner::FastProfile`].
    profile: FastProfile,
    /// Reusable segment-plan buffer ([`build_plan`] output; no allocation
    /// after warm-up).
    plan: Vec<PlanStep>,
}

impl<'r> PartHtm<'r> {
    /// Quiet fast path: when the subscribed `active_tx` counter is zero, no
    /// partitioned-path transaction runs concurrently, so the signatures, the
    /// write-locks validation and the ring publish — which exist solely to
    /// coordinate with sub-HTM transactions — are unnecessary and the fast path is
    /// pure HTM plus two subscriptions (GLock and active_tx). Sound because write
    /// locks are only held and the ring is only consulted while `active_tx > 0`
    /// (release precedes the decrement), and any change to either subscribed word
    /// dooms this hardware transaction.
    fn try_fast_quiet<W: Workload>(&mut self, w: &mut W) -> Result<(), AbortCode> {
        w.reset();
        let rt = self.th.rt;
        let mut tx = self.th.hw.begin();
        let body: TxResult<()> = 'b: {
            match tx.read(rt.glock()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            match tx.read(rt.active_tx()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_NOT_QUIET)),
                Err(e) => break 'b Err(e),
            }
            let mut ctx = RawCtx { tx: &mut tx };
            for seg in 0..w.segments() {
                if let Err(e) = w.segment(seg, &mut ctx) {
                    break 'b Err(e);
                }
            }
            Ok(())
        };
        let res = match body {
            Ok(()) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        if res.is_err() {
            self.th.stats.fast_aborts += 1;
        }
        res
    }

    /// Try the whole transaction as one lightly instrumented hardware transaction
    /// (§5.2), choosing the quiet variant when no partitioned-path transaction was
    /// active at begin.
    fn try_fast<W: Workload>(&mut self, w: &mut W) -> Result<(), AbortCode> {
        let rt = self.th.rt;
        if self.th.hw.nt_read(rt.active_tx()) == 0 {
            match self.try_fast_quiet(w) {
                Err(AbortCode::Explicit(XABORT_NOT_QUIET)) => {} // re-run instrumented
                other => return other,
            }
        }
        w.reset();
        self.rmir.clear();
        self.wmir.clear();
        let a = self.arena;
        let mut wrote = false;

        let mut tx = self.th.hw.begin();
        // Body result: the announced publish's shard mask and per-shard commit
        // timestamps (mask 0 = nothing announced).
        let body: TxResult<(u32, ShardTimes)> = 'b: {
            // Begin: subscribe the global lock (Fig. 1 lines 1–2).
            match tx.read(rt.glock()) {
                Ok(0) => {}
                Ok(_) => break 'b Err(tx.xabort(XABORT_GLOCK)),
                Err(e) => break 'b Err(e),
            }
            {
                let mut ctx = FastCtx {
                    tx: &mut tx,
                    rsig: SigPair {
                        heap: a.read_sig,
                        mirror: &mut self.rmir,
                    },
                    wsig: SigPair {
                        heap: a.write_sig,
                        mirror: &mut self.wmir,
                    },
                    wrote: &mut wrote,
                };
                for seg in 0..w.segments() {
                    if let Err(e) = w.segment(seg, &mut ctx) {
                        break 'b Err(e);
                    }
                }
            }
            // Pre-commit validation against non-visible locations (Fig. 1
            // lines 7–8).
            match fast_validation(&mut tx, rt.write_locks(), &self.rmir, &self.wmir) {
                Ok(false) => {}
                Ok(true) => break 'b Err(tx.xabort(XABORT_LOCKED)),
                Err(e) => break 'b Err(e),
            }
            // Writers publish their write signature to the shards it touches
            // (Fig. 1 lines 9–11), announcing the publish to the touched shard
            // summaries as the last body step.
            if wrote {
                match rt
                    .sharded_ring()
                    .publish_tx_summarized(&mut tx, &self.wmir, rt.summaries())
                {
                    Ok(announced) => break 'b Ok(announced),
                    Err(e) => break 'b Err(e),
                }
            }
            Ok((0, ShardTimes::new()))
        };
        // An announced publish (body reached Ok with a non-empty shard mask) must
        // be completed or cancelled depending on how the hardware commit resolves.
        let (pub_mask, pub_times) = *body.as_ref().unwrap_or(&(0, ShardTimes::new()));
        let res = match body {
            Ok(_) => tx.commit(),
            Err(code) => {
                drop(tx);
                Err(code)
            }
        };
        match res {
            Ok(()) => {
                if pub_mask != 0 {
                    rt.sharded_ring().complete_publish(
                        &self.wmir,
                        pub_mask,
                        &pub_times,
                        rt.summaries(),
                    );
                    self.th.stats.record_shard_publish(pub_mask);
                }
                // Post-commit software: clear local signatures (Fig. 1 lines 14–15).
                // The mirrors are the authoritative copies; the heap copies are
                // capacity ballast and need no clearing.
                self.rmir.clear();
                self.wmir.clear();
                Ok(())
            }
            Err(code) => {
                if pub_mask != 0 {
                    rt.sharded_ring().cancel_publish(pub_mask, rt.summaries());
                }
                self.th.stats.fast_aborts += 1;
                Err(code)
            }
        }
    }

    #[inline]
    fn dec_active(&self) {
        self.th
            .hw
            .system()
            .nt_fetch_sub_by(self.th.hw.id(), self.th.rt.active_tx(), 1);
    }

    /// Release local metadata and leave the partitioned path (common tail of global
    /// commit and global abort).
    fn cleanup_partitioned(&mut self) {
        self.rmir.clear();
        self.wmir.clear();
        self.amir.clear();
        self.undo.clear();
        self.dec_active();
    }

    /// Abort the global transaction (Fig. 1 lines 53–58): restore old values from
    /// the undo-log (newest first), release write locks, clear metadata.
    fn global_abort(&mut self) {
        self.th.stats.global_aborts += 1;
        self.undo.undo_nt(&self.th.hw);
        // An in-flight validation failure arrives here after the offending
        // sub-transaction committed (and acquired locks for its writes) but
        // before its write signature was folded into the aggregate; fold it
        // now so the release also covers the last sub's locks. On the
        // sub-failure path the journal already rolled `wmir` back to its
        // (empty) segment-entry state, so the fold is a no-op there.
        self.amir.union_with(&self.wmir);
        self.th.rt.write_locks().and_not_nt(&self.th.hw, &self.amir);
        self.cleanup_partitioned();
    }

    /// Run the declared segments `start..end` as *one* sub-HTM transaction
    /// with bounded retries (§5.3.3–5.3.5). `start..end` comes from the
    /// segment plan: a single declared segment under the static oracle, up to
    /// the site's learned merge factor under the adaptive planner. A
    /// multi-segment group that dies of a capacity-class abort is not
    /// retried — it reports [`GroupRun::Split`] so the caller re-runs it as
    /// single segments.
    fn run_group<W: Workload>(
        &mut self,
        w: &mut W,
        start: usize,
        end: usize,
        wrote: &mut bool,
        budget: u32,
    ) -> GroupRun {
        let rt = self.th.rt;
        let a = self.arena;
        let snap = w.snapshot();
        let undo_mark = self.undo.len();
        let mut attempts = 0u32;
        loop {
            // Zero-clone retries: each attempt journals the mirror words it dirties
            // instead of saving full signature clones up front.
            self.journal.begin(self.rmir.spec());
            let mut tx = self.th.hw.begin();
            let body: TxResult<()> = 'b: {
                {
                    let mut ctx = SubCtx {
                        tx: &mut tx,
                        rsig: SigPair {
                            heap: a.read_sig,
                            mirror: &mut self.rmir,
                        },
                        wsig: SigPair {
                            heap: a.write_sig,
                            mirror: &mut self.wmir,
                        },
                        undo: &mut self.undo,
                        journal: &mut self.journal,
                        wrote,
                    };
                    for seg in start..end {
                        if let Err(e) = w.segment(seg, &mut ctx) {
                            break 'b Err(e);
                        }
                    }
                }
                // Pre-commit validation, own locks masked out (Fig. 1 lines 26–28).
                match sub_validation(
                    &mut tx,
                    rt.write_locks(),
                    &self.amir,
                    &self.rmir,
                    &self.wmir,
                ) {
                    Ok(false) => {}
                    Ok(true) => break 'b Err(tx.xabort(XABORT_LOCKED)),
                    Err(e) => break 'b Err(e),
                }
                // Acquire write locks for the just-written locations (Fig. 1 line 29).
                if let Err(e) = acquire_locks_tx(&mut tx, rt.write_locks(), &self.wmir) {
                    break 'b Err(e);
                }
                Ok(())
            };
            let res = match body {
                Ok(()) => tx.commit(),
                Err(code) => {
                    drop(tx);
                    Err(code)
                }
            };
            match res {
                Ok(()) => {
                    self.journal.discard();
                    return GroupRun::Committed;
                }
                Err(code) => {
                    self.th.stats.sub_aborts += 1;
                    // The failed attempt's hardware writes never published; roll the
                    // software cursors back to the group entry.
                    self.undo.truncate(undo_mark);
                    self.journal.rollback(&mut self.rmir, &mut self.wmir);
                    self.th.stats.journal_rollbacks += 1;
                    w.restore(snap.clone());
                    attempts += 1;
                    let capacity = capacity_class(code);
                    if capacity && end - start > 1 {
                        return GroupRun::Split;
                    }
                    // A conflict on the global write-locks (or an overflowing undo
                    // log) propagates to the global transaction (§5.3.5); other
                    // causes retry the sub-HTM transaction a limited number of times.
                    let give_up = match code {
                        AbortCode::Explicit(x) => x == XABORT_LOCKED || x == XABORT_UNDO_FULL,
                        _ => false,
                    } || attempts >= budget;
                    if give_up {
                        if attempts >= budget && budget < rt.config().sub_retries {
                            self.th.stats.adaptive_retry_saves +=
                                (rt.config().sub_retries - budget) as u64;
                        }
                        return GroupRun::Fail { capacity };
                    }
                    htm_sim::vclock::yield_now();
                }
            }
        }
    }

    /// Post-commit tail of one sub-HTM group: the in-flight validation (when
    /// due) and the fold of the group's writes into the aggregate signature
    /// (Fig. 1 lines 32–33). `Err` means the validation failed and the global
    /// transaction aborted.
    fn seal_group(&mut self, validate: bool) -> Result<(), ()> {
        let rt = self.th.rt;
        if validate {
            // In-flight validation after a sub-HTM commit (§5.3.6). Part-HTM
            // keeps begin-time windows and never subscribes shard timestamps,
            // so the cheap non-advancing validator applies: a clean probe of
            // each touched shard's summary decides the common no-conflict case
            // without touching simulated memory, and only a doubtful shard is
            // walked precisely (advancing its window).
            let v = rt.sharded_ring().validate_touched_nt(
                &self.th.hw,
                rt.summaries(),
                &self.rmir,
                &mut self.times,
            );
            self.th.stats.record_sharded_validation(&v);
            if v.result.is_err() {
                self.global_abort();
                return Err(());
            }
        }
        self.amir.union_with(&self.wmir);
        self.wmir.clear();
        Ok(())
    }

    /// Execute the transaction on the partitioned path (§5.3). `Err(())` means the
    /// global transaction aborted and the caller decides whether to retry.
    fn try_partitioned<W: Workload>(&mut self, w: &mut W) -> Result<(), ()> {
        let rt = self.th.rt;
        // Global begin (Fig. 1 lines 16–19): the active_tx/GLock handshake gives
        // mutual exclusion against the slow path.
        loop {
            wait_glock_released(&self.th);
            self.th.hw.nt_fetch_add(rt.active_tx(), 1);
            if self.th.hw.nt_read(rt.glock()) == 0 {
                break;
            }
            self.dec_active();
        }
        // Begin windows from the fold watermarks: host atomics only, no
        // simulated timestamp reads. Part-HTM never compares these against the
        // live shard timestamps (unlike Part-HTM-O's subscription), so a
        // lagging watermark just means a slightly wider validation window.
        rt.summaries().watermark_times(&mut self.times);
        self.rmir.clear();
        self.wmir.clear();
        self.amir.clear();
        self.undo.clear();
        w.reset();
        let mut wrote = false;

        // Build this transaction's segment plan: up to the site's learned
        // merge factor under the adaptive controller, the pinned static
        // `plan_group` otherwise (1 = exactly the declared segments).
        let cfg = rt.config();
        let adaptive = cfg.adaptive_plan;
        let slot = rt.sites().slot(w.site());
        let group = if adaptive {
            slot.plan_group()
        } else {
            cfg.plan_group.max(1)
        };
        let sub_budget = if adaptive {
            slot.sub_budget(cfg.sub_retries)
        } else {
            cfg.sub_retries
        };
        let nseg = w.segments();
        let mut plan = std::mem::take(&mut self.plan);
        let max_run = build_plan(nseg, group, |s| w.software_segment(s), &mut plan);
        self.plan = plan;
        let last_htm_seg = (0..nseg).rev().find(|&s| !w.software_segment(s));
        let mut split_tx = false;

        for i in 0..self.plan.len() {
            let step = self.plan[i];
            if step.software {
                // Non-transactional partition: run outside any hardware
                // transaction (§4, §5.3.1) — this is how time-limited transactions
                // escape the HTM quantum. Software segments are never merged.
                let mut ctx = SoftwareCtx {
                    th: &self.th.hw,
                    mask_values: false,
                };
                w.segment(step.start, &mut ctx)
                    .expect("software segments cannot abort");
                continue;
            }
            let due =
                |seg: usize| cfg.validate_every_sub || Some(seg) == last_htm_seg;
            match self.run_group(w, step.start, step.end, &mut wrote, sub_budget) {
                GroupRun::Committed => {
                    self.seal_group(due(step.end - 1))?;
                }
                GroupRun::Split => {
                    // The merged group exceeds this site's HTM budget: halve
                    // the plan and re-run the group as the declared single
                    // segments, sealing each exactly as the static plan would.
                    self.th.stats.plan_splits += 1;
                    split_tx = true;
                    if adaptive {
                        slot.record_capacity_split(step.len() as u32);
                    }
                    for seg in step.start..step.end {
                        match self.run_group(w, seg, seg + 1, &mut wrote, sub_budget) {
                            GroupRun::Committed => self.seal_group(due(seg))?,
                            GroupRun::Split => unreachable!("single segments never split"),
                            GroupRun::Fail { capacity } => {
                                if adaptive && capacity {
                                    slot.record_sub_futility();
                                }
                                self.global_abort();
                                return Err(());
                            }
                        }
                    }
                }
                GroupRun::Fail { capacity } => {
                    if adaptive && capacity {
                        slot.record_sub_futility();
                    }
                    self.global_abort();
                    return Err(());
                }
            }
        }

        // Global commit (Fig. 1 lines 42–52). Read-only transactions just leave.
        if wrote {
            let (pub_mask, _) = rt.sharded_ring().publish_software_summarized(
                &self.th.hw,
                &self.amir,
                rt.summaries(),
            );
            self.th.stats.record_shard_publish(pub_mask);
            rt.write_locks().and_not_nt(&self.th.hw, &self.amir);
            // Software commits are the cheap place to police summary density: no
            // hardware transaction is in flight here.
            let resets = rt
                .sharded_ring()
                .maybe_reset_summaries(&self.th.hw, rt.summaries());
            self.th.stats.record_summary_resets(&resets);
        }
        self.cleanup_partitioned();
        // Feed the controller: a commit with no capacity trouble earns merge
        // credit (up to the longest mergeable run this shape declares).
        if adaptive && !split_tx && slot.record_clean_commit(max_run) == PlanChange::Merged {
            self.th.stats.plan_merges += 1;
        }
        Ok(())
    }

    /// The three-path driver shared with [`crate::PartHtmO`] (which passes its own
    /// path closures): fast → partitioned on resource failure; fast → slow when
    /// conflicts persist; partitioned → slow after bounded global aborts.
    fn drive<W: Workload>(
        &mut self,
        w: &mut W,
        fast: fn(&mut Self, &mut W) -> Result<(), AbortCode>,
        partitioned: fn(&mut Self, &mut W) -> Result<(), ()>,
        mask_values: bool,
    ) -> CommitPath {
        let cfg = self.th.rt.config().clone();
        if w.is_irrevocable() {
            self.th.stats.fallbacks_gl += 1;
            run_global_lock(&self.th, w, mask_values);
            w.after_commit();
            self.th.stats.record_commit(CommitPath::GlobalLock);
            return CommitPath::GlobalLock;
        }
        // The single fast-path routing decision (config override, static hint,
        // learned demotion or legacy streak — see `planner::FastProfile`). The
        // controller's paper anchor: the static profiler routes "likely (or
        // certainly) failing" transactions straight to the partitioned path
        // (§4); here that verdict is learned from observed abort codes.
        let slot = self.th.rt.sites().slot(w.site());
        let prior = w.profiled_resource_limited();
        let route = self.profile.route(&cfg, slot, prior, &mut self.th.stats);
        if let FastRoute::Attempt { budget } = route {
            let mut fails = 0;
            loop {
                wait_glock_released(&self.th);
                match fast(self, w) {
                    Ok(()) => {
                        self.profile.note_exit(&cfg, slot, FastExit::Commit);
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::Htm);
                        return CommitPath::Htm;
                    }
                    Err(code) if code.is_resource_failure() => {
                        // Capacity or interrupt: this is the class Part-HTM exists
                        // for — partition it.
                        self.profile.note_exit(&cfg, slot, FastExit::Resource);
                        self.th.stats.fallbacks_partitioned += 1;
                        break;
                    }
                    Err(_) => {
                        fails += 1;
                        if fails >= budget {
                            // Persistent conflicts: the paper routes these to the
                            // exit path, not to partitioning (§4 "Three-paths
                            // Execution").
                            self.profile.note_exit(&cfg, slot, FastExit::Exhausted);
                            if budget < cfg.fast_retries {
                                self.th.stats.adaptive_retry_saves +=
                                    (cfg.fast_retries - budget) as u64;
                            }
                            self.th.stats.fallbacks_gl += 1;
                            run_global_lock(&self.th, w, mask_values);
                            w.after_commit();
                            self.th.stats.record_commit(CommitPath::GlobalLock);
                            return CommitPath::GlobalLock;
                        }
                    }
                }
            }
        }
        let mut gfails = 0;
        loop {
            match partitioned(self, w) {
                Ok(()) => {
                    w.after_commit();
                    self.th.stats.record_commit(CommitPath::SubHtm);
                    return CommitPath::SubHtm;
                }
                Err(()) => {
                    gfails += 1;
                    if gfails >= cfg.part_retries {
                        self.th.stats.fallbacks_gl += 1;
                        run_global_lock(&self.th, w, mask_values);
                        w.after_commit();
                        self.th.stats.record_commit(CommitPath::GlobalLock);
                        return CommitPath::GlobalLock;
                    }
                    // Exponential backoff (Fig. 1 line 59).
                    spin_work(cfg.backoff_units << gfails.min(6));
                    htm_sim::vclock::yield_now();
                }
            }
        }
    }

    pub(crate) fn new_inner(rt: &'r TmRuntime, id: usize) -> Self {
        let th = TmThread::new(rt, id);
        let arena = rt.arena(id);
        let spec = rt.config().sig_spec;
        let (rmir, wmir, amir, journal) = SigArena::with(|a| {
            (
                a.take_sig(spec),
                a.take_sig(spec),
                a.take_sig(spec),
                a.take_journal(),
            )
        });
        Self {
            undo: UndoLog::new(arena.undo_base, arena.undo_words),
            arena,
            rmir,
            wmir,
            amir,
            journal,
            times: ShardTimes::new(),
            profile: FastProfile::default(),
            plan: Vec::new(),
            th,
        }
    }
}

impl Drop for PartHtm<'_> {
    /// Return the signature mirrors and the journal to this thread's
    /// [`SigArena`] so the next executor on the thread starts warm. The
    /// placeholders are single-word inline signatures — allocation-free.
    fn drop(&mut self) {
        let empty = Sig::new(SigSpec::new(64));
        let rmir = std::mem::replace(&mut self.rmir, empty.clone());
        let wmir = std::mem::replace(&mut self.wmir, empty.clone());
        let amir = std::mem::replace(&mut self.amir, empty);
        let journal = std::mem::take(&mut self.journal);
        SigArena::with(|a| {
            a.recycle_sig(rmir);
            a.recycle_sig(wmir);
            a.recycle_sig(amir);
            a.recycle_journal(journal);
        });
    }
}

impl<'r> TmExecutor<'r> for PartHtm<'r> {
    const NAME: &'static str = "Part-HTM";

    fn new(rt: &'r TmRuntime, thread_id: usize) -> Self {
        Self::new_inner(rt, thread_id)
    }

    fn execute<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        self.drive(w, Self::try_fast, Self::try_partitioned, false)
    }

    /// Shed: commit under the global lock with no speculative attempt. Under
    /// overload the fast/partitioned retries (backoff, glock waits) are what
    /// convoy the ring shards; a shed request takes the serialized path once
    /// and leaves.
    fn execute_shed<W: Workload>(&mut self, w: &mut W) -> CommitPath {
        self.th.stats.shed_commits += 1;
        run_global_lock(&self.th, w, false);
        w.after_commit();
        self.th.stats.record_commit(CommitPath::GlobalLock);
        CommitPath::GlobalLock
    }

    fn thread(&self) -> &TmThread<'r> {
        &self.th
    }

    fn thread_mut(&mut self) -> &mut TmThread<'r> {
        &mut self.th
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::TxCtx;
    use crate::runtime::TmConfig;
    use htm_sim::abort::TxResult;
    use rand::rngs::SmallRng;

    /// Increment `n` counters spread over distinct lines, in `segs` segments.
    struct Incr {
        n: usize,
        segs: usize,
        base: htm_sim::Addr,
        work_per_op: u64,
    }

    impl Workload for Incr {
        type Snap = ();
        fn sample(&mut self, _rng: &mut SmallRng) {}
        fn segments(&self) -> usize {
            self.segs
        }
        fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
            let per = self.n / self.segs;
            for i in seg * per..(seg + 1) * per {
                let a = self.base + (i * 8) as htm_sim::Addr;
                let v = ctx.read(a)?;
                if self.work_per_op > 0 {
                    ctx.work(self.work_per_op)?;
                }
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    fn check_sum(rt: &TmRuntime, n: usize, expect: u64) {
        for i in 0..n {
            assert_eq!(rt.verify_read(i * 8), expect, "counter {i}");
        }
    }

    #[test]
    fn small_tx_commits_on_fast_path() {
        let rt = TmRuntime::with_defaults(1, 1024);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr {
            n: 4,
            segs: 1,
            base: rt.app(0),
            work_per_op: 0,
        };
        let path = e.execute(&mut w);
        assert_eq!(path, CommitPath::Htm);
        check_sum(&rt, 4, 1);
        assert_eq!(e.thread().stats.commits_htm, 1);
    }

    #[test]
    fn capacity_limited_tx_commits_on_partitioned_path() {
        // Tiny HTM: 8 written lines max. The transaction writes 96 app lines; 8 segments
        // of 12 fit (alongside the protocol metadata).
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            1,
            2048,
        );
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr {
            n: 96,
            segs: 8,
            base: rt.app(0),
            work_per_op: 0,
        };
        let path = e.execute(&mut w);
        assert_eq!(path, CommitPath::SubHtm);
        check_sum(&rt, 96, 1);
        let s = &e.thread().stats;
        assert_eq!(s.commits_subhtm, 1);
        assert_eq!(s.fallbacks_partitioned, 1);
        // All metadata released.
        assert!(rt.write_locks().snapshot_nt(&e.thread().hw).is_empty());
        assert_eq!(rt.system().nt_read(rt.active_tx()), 0);
    }

    #[test]
    fn time_limited_tx_commits_on_partitioned_path() {
        // Quantum 1000; the transaction burns 100 units per op over 40 ops (4000+),
        // but each 10-op segment fits.
        let rt = TmRuntime::new(
            htm_sim::HtmConfig {
                quantum: 1500,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            1,
            4096,
        );
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr {
            n: 40,
            segs: 4,
            base: rt.app(0),
            work_per_op: 100,
        };
        let path = e.execute(&mut w);
        assert_eq!(path, CommitPath::SubHtm);
        check_sum(&rt, 40, 1);
    }

    #[test]
    fn oversize_segments_fall_back_to_global_lock() {
        // Even one segment (48 app lines, 3 per set, plus metadata) overflows 4-way sets:
        // partitioning cannot help, the slow path must rescue the transaction.
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            1,
            2048,
        );
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr {
            n: 96,
            segs: 2,
            base: rt.app(0),
            work_per_op: 0,
        };
        let path = e.execute(&mut w);
        assert_eq!(path, CommitPath::GlobalLock);
        check_sum(&rt, 96, 1);
        assert_eq!(rt.system().nt_read(rt.glock()), 0, "global lock released");
    }

    #[test]
    fn irrevocable_goes_straight_to_global_lock() {
        struct Irrev(htm_sim::Addr);
        impl Workload for Irrev {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn is_irrevocable(&self) -> bool {
                true
            }
            fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
                let v = ctx.read(self.0)?;
                ctx.write(self.0, v + 1)
            }
        }
        let rt = TmRuntime::with_defaults(1, 64);
        let mut e = PartHtm::new(&rt, 0);
        assert_eq!(e.execute(&mut Irrev(rt.app(0))), CommitPath::GlobalLock);
        assert_eq!(rt.verify_read(0), 1);
    }

    #[test]
    fn skip_fast_goes_straight_to_partitioned() {
        let rt = TmRuntime::new(
            htm_sim::HtmConfig::default(),
            TmConfig {
                skip_fast: true,
                ..TmConfig::default()
            },
            1,
            1024,
        );
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Incr {
            n: 4,
            segs: 2,
            base: rt.app(0),
            work_per_op: 0,
        };
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        assert_eq!(e.thread().stats.fast_aborts, 0);
        check_sum(&rt, 4, 1);
    }

    #[test]
    fn software_segments_escape_the_quantum() {
        // Transaction: tiny memory footprint but a huge computation. As a single HTM
        // transaction it blows the quantum; with the computation in a software
        // segment the partitioned path commits it.
        struct LongCompute {
            a: htm_sim::Addr,
        }
        impl Workload for LongCompute {
            type Snap = ();
            fn sample(&mut self, _r: &mut SmallRng) {}
            fn segments(&self) -> usize {
                3
            }
            fn software_segment(&self, s: usize) -> bool {
                s == 1
            }
            fn segment<C: TxCtx>(&mut self, s: usize, ctx: &mut C) -> TxResult<()> {
                match s {
                    0 => {
                        let v = ctx.read(self.a)?;
                        ctx.write(self.a, v + 1)
                    }
                    1 => ctx.nt_work(10_000),
                    _ => {
                        let v = ctx.read(self.a + 8)?;
                        ctx.write(self.a + 8, v + 1)
                    }
                }
            }
        }
        let rt = TmRuntime::new(
            htm_sim::HtmConfig {
                quantum: 2000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            1,
            64,
        );
        let mut e = PartHtm::new(&rt, 0);
        let mut w = LongCompute { a: rt.app(0) };
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        assert_eq!(rt.verify_read(0), 1);
        assert_eq!(rt.verify_read(8), 1);
    }

    #[test]
    fn concurrent_partitioned_transactions_are_serializable() {
        let rt = TmRuntime::new(
            // Mid-size HTM: 16 sets x 4 ways = 64 written lines — big enough for a
            // segment plus the protocol metadata (signatures, undo log, locks),
            // small enough that the whole transaction overflows it.
            htm_sim::HtmConfig {
                l1_sets: 16,
                l1_ways: 4,
                quantum: 100_000,
                ..htm_sim::HtmConfig::default()
            },
            TmConfig::default(),
            4,
            4096,
        );
        // Counters at distinct lines; each tx increments all 16 in 4 segments, so
        // every pair of transactions conflicts. The total must still be exact.
        const TXS: usize = 30;
        std::thread::scope(|s| {
            for t in 0..4 {
                let rt = &rt;
                s.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Incr {
                        n: 16,
                        segs: 4,
                        base: rt.app(0),
                        work_per_op: 0,
                    };
                    for _ in 0..TXS {
                        e.execute(&mut w);
                    }
                });
            }
        });
        check_sum(&rt, 16, (4 * TXS) as u64);
        let th = TmThread::new(&rt, 0);
        assert!(
            rt.write_locks().snapshot_nt(&th.hw).is_empty(),
            "all locks released"
        );
        assert_eq!(rt.system().nt_read(rt.active_tx()), 0);
        assert_eq!(rt.system().nt_read(rt.glock()), 0);
    }
}
