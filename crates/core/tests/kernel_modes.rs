//! Differential test of the kernel dispatch: the same contended partitioned
//! workload runs once with `TmConfig::scalar_kernels` (every signature hot
//! loop routed to the scalar oracles) and once with the default unrolled
//! kernels. Both runs must produce the exact same final heap state — the two
//! kernel flavours are contractually word-identical — and the
//! `scalar_kernel_falls` statistic must fire only under the scalar config.
//!
//! Kept as a single test function: the kernel selector is process-global
//! (`tm_sig::kernels::set_scalar`, wired by `TmRuntime::new`), so the two
//! configurations must run sequentially, and the unrolled run goes last to
//! leave the process in the default mode.

use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmConfig};
use part_htm_core::{PartHtm, TmConfig, TmExecutor, TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;

struct Incr {
    n: usize,
    segs: usize,
    base: Addr,
}

impl Workload for Incr {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        self.segs
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let per = self.n / self.segs;
        for i in seg * per..(seg + 1) * per {
            let a = self.base + (i * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

/// Run the contended two-thread partitioned workload under `cfg`; returns the
/// final counter values and the harvested `scalar_kernel_falls` total.
fn run(cfg: TmConfig) -> (Vec<u64>, u64) {
    let htm = HtmConfig {
        l1_sets: 16,
        l1_ways: 4,
        quantum: 100_000,
        ..HtmConfig::default()
    };
    let rt = TmRuntime::new(htm, cfg, 2, 2048);
    for i in 0..32 {
        rt.setup_write(i * 8, 1000);
    }
    let falls = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..2 {
            let (rt, falls) = (&rt, &falls);
            s.spawn(move || {
                let mut e = PartHtm::new(rt, t);
                let mut w = Incr {
                    n: 32,
                    segs: 4,
                    base: rt.app(0),
                };
                for _ in 0..40 {
                    e.execute(&mut w);
                }
                e.thread_mut().harvest_host_counters();
                falls.fetch_add(
                    e.thread().stats.scalar_kernel_falls,
                    std::sync::atomic::Ordering::Relaxed,
                );
            });
        }
    });
    let state = (0..32).map(|i| rt.verify_read(i * 8)).collect();
    (state, falls.into_inner())
}

#[test]
fn scalar_and_unrolled_kernels_produce_identical_state() {
    let scalar = run(TmConfig {
        skip_fast: true,
        scalar_kernels: true,
        ..TmConfig::default()
    });
    let unrolled = run(TmConfig {
        skip_fast: true,
        ..TmConfig::default()
    });

    assert_eq!(scalar.0, unrolled.0, "kernel flavours diverged");
    assert_eq!(scalar.0, vec![1000 + 80; 32]);
    assert!(
        scalar.1 > 0,
        "scalar config must route dispatches to the oracles"
    );
    assert_eq!(
        unrolled.1, 0,
        "default config must never fall to the scalar oracles"
    );
}
