//! Protocol-edge tests for Part-HTM / Part-HTM-O: path accounting, undo ordering,
//! retry exhaustion, slow-path mutual exclusion, lock hygiene.

use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmConfig};
use part_htm_core::{
    CommitPath, PartHtm, PartHtmO, TmConfig, TmExecutor, TmRuntime, TxCtx, Workload, LOCK_BIT,
};
use rand::rngs::SmallRng;

struct Incr {
    n: usize,
    segs: usize,
    base: Addr,
}

impl Workload for Incr {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        self.segs
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let per = self.n / self.segs;
        for i in seg * per..(seg + 1) * per {
            let a = self.base + (i * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

/// Mid-size geometry where a 96-line transaction overflows but 12-line segments fit.
fn mid_htm() -> HtmConfig {
    HtmConfig { l1_sets: 16, l1_ways: 4, quantum: 100_000, ..HtmConfig::default() }
}

#[test]
fn fallback_counters_are_consistent() {
    let rt = TmRuntime::new(mid_htm(), TmConfig::default(), 1, 2048);
    let mut e = PartHtm::new(&rt, 0);
    let mut w = Incr { n: 96, segs: 8, base: rt.app(0) };
    for _ in 0..10 {
        e.execute(&mut w);
    }
    let s = &e.thread().stats;
    assert_eq!(s.commits_total(), 10);
    assert_eq!(s.commits_subhtm, 10);
    // Each transaction either probed the fast path (a resource-failure fallback) or
    // skipped it adaptively; fallbacks never exceed transactions.
    assert!(s.fallbacks_partitioned >= 1);
    assert!(s.fallbacks_partitioned <= 10);
    assert_eq!(s.fallbacks_gl, 0);
}

#[test]
fn undo_restores_across_multiple_subs_on_global_abort() {
    // Two writers ping-pong over the same region with sub-transactions small enough
    // to commit; in-flight validation forces global aborts whose undo must restore
    // the exact pre-transaction state. The conserved total proves every abort
    // rolled back completely.
    let rt = TmRuntime::new(mid_htm(), TmConfig { skip_fast: true, ..Default::default() }, 2, 2048);
    for i in 0..32 {
        rt.setup_write(i * 8, 100);
    }
    std::thread::scope(|s| {
        for t in 0..2 {
            let rt = &rt;
            s.spawn(move || {
                let mut e = PartHtm::new(rt, t);
                // Both threads increment the same 32 counters in 4 segments.
                let mut w = Incr { n: 32, segs: 4, base: rt.app(0) };
                for _ in 0..40 {
                    e.execute(&mut w);
                }
            });
        }
    });
    for i in 0..32 {
        assert_eq!(rt.verify_read(i * 8), 100 + 80, "counter {i}");
    }
    // All metadata released.
    let th = part_htm_core::TmThread::new(&rt, 0);
    assert!(rt.write_locks().snapshot_nt(&th.hw).is_empty());
    assert_eq!(rt.system().nt_read(rt.active_tx()), 0);
}

#[test]
fn part_retries_exhaustion_lands_on_global_lock_exactly_once() {
    // A segment that can never fit in hardware (bigger than total L1) exhausts
    // sub-retries, then part-retries, then commits under the lock — once.
    let htm = HtmConfig { l1_sets: 4, l1_ways: 2, quantum: 100_000, ..HtmConfig::default() };
    let rt = TmRuntime::new(htm, TmConfig::default(), 1, 2048);
    let mut e = PartHtm::new(&rt, 0);
    let mut w = Incr { n: 64, segs: 2, base: rt.app(0) };
    assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);
    let s = &e.thread().stats;
    assert_eq!(s.commits_gl, 1);
    assert_eq!(s.fallbacks_gl, 1);
    assert!(s.sub_aborts >= rt.config().sub_retries as u64);
    assert!(s.global_aborts >= rt.config().part_retries as u64);
    for i in 0..64 {
        assert_eq!(rt.verify_read(i * 8), 1);
    }
    assert_eq!(rt.system().nt_read(rt.glock()), 0, "lock released");
}

#[test]
fn slow_path_waits_for_partitioned_drain() {
    // Mix partitioned transactions with irrevocable (slow-path) ones; the
    // active_tx handshake must keep them serializable.
    struct Irrevocable {
        base: Addr,
        n: usize,
    }
    impl Workload for Irrevocable {
        type Snap = ();
        fn sample(&mut self, _r: &mut SmallRng) {}
        fn is_irrevocable(&self) -> bool {
            true
        }
        fn segment<C: TxCtx>(&mut self, _s: usize, ctx: &mut C) -> TxResult<()> {
            for i in 0..self.n {
                let a = self.base + (i * 8) as Addr;
                let v = ctx.read(a)?;
                ctx.write(a, v + 1)?;
            }
            Ok(())
        }
    }

    let rt = TmRuntime::new(mid_htm(), TmConfig { skip_fast: true, ..Default::default() }, 3, 2048);
    std::thread::scope(|s| {
        for t in 0..2 {
            let rt = &rt;
            s.spawn(move || {
                let mut e = PartHtm::new(rt, t);
                let mut w = Incr { n: 16, segs: 4, base: rt.app(0) };
                for _ in 0..30 {
                    e.execute(&mut w);
                }
            });
        }
        let rt = &rt;
        s.spawn(move || {
            let mut e = PartHtm::new(rt, 2);
            let mut w = Irrevocable { base: rt.app(0), n: 16 };
            for _ in 0..30 {
                assert_eq!(e.execute(&mut w), CommitPath::GlobalLock);
            }
        });
    });
    for i in 0..16 {
        assert_eq!(rt.verify_read(i * 8), 90, "counter {i}");
    }
}

#[test]
fn opaque_abort_releases_embedded_locks() {
    // Force global aborts in Part-HTM-O under contention, then verify no lock bit
    // survives anywhere.
    let rt = TmRuntime::new(mid_htm(), TmConfig { skip_fast: true, ..Default::default() }, 2, 2048);
    std::thread::scope(|s| {
        for t in 0..2 {
            let rt = &rt;
            s.spawn(move || {
                let mut e = PartHtmO::new(rt, t);
                let mut w = Incr { n: 32, segs: 8, base: rt.app(0) };
                for _ in 0..30 {
                    e.execute(&mut w);
                }
            });
        }
    });
    for i in 0..32 {
        let v = rt.verify_read(i * 8);
        assert_eq!(v & LOCK_BIT, 0, "counter {i} still locked: {v:#x}");
        assert_eq!(v, 60, "counter {i}");
    }
}

#[test]
fn quiet_fast_path_retreats_when_partitioned_traffic_appears() {
    // One thread runs partitioned transactions; the other runs small transactions.
    // Everything must stay exact despite the quiet/instrumented switching.
    let rt = TmRuntime::new(mid_htm(), TmConfig::default(), 2, 4096);
    std::thread::scope(|s| {
        let rt = &rt;
        s.spawn(move || {
            let mut e = PartHtm::new(rt, 0);
            let mut w = Incr { n: 96, segs: 8, base: rt.app(0) };
            for _ in 0..20 {
                e.execute(&mut w);
            }
        });
        s.spawn(move || {
            let mut e = PartHtm::new(rt, 1);
            // Overlapping small transactions on the first 4 counters.
            let mut w = Incr { n: 4, segs: 1, base: rt.app(0) };
            for _ in 0..200 {
                e.execute(&mut w);
            }
        });
    });
    for i in 0..4 {
        assert_eq!(rt.verify_read(i * 8), 220, "counter {i}");
    }
    for i in 4..96 {
        assert_eq!(rt.verify_read(i * 8), 20, "counter {i}");
    }
}

#[test]
fn validate_before_commit_only_mode_is_serializable_under_contention() {
    let tm = TmConfig { validate_every_sub: false, skip_fast: true, ..Default::default() };
    let rt = TmRuntime::new(mid_htm(), tm, 3, 2048);
    std::thread::scope(|s| {
        for t in 0..3 {
            let rt = &rt;
            s.spawn(move || {
                let mut e = PartHtm::new(rt, t);
                let mut w = Incr { n: 24, segs: 4, base: rt.app(0) };
                for _ in 0..30 {
                    e.execute(&mut w);
                }
            });
        }
    });
    for i in 0..24 {
        assert_eq!(rt.verify_read(i * 8), 90, "counter {i}");
    }
}
