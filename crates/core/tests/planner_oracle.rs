//! Differential tests of the adaptive segment planner against its static
//! oracle.
//!
//! * `adaptive_plan: false` with `plan_group: 1` must reproduce the declared
//!   `segments()` plan byte-for-byte — one `PlanStep` per declared segment,
//!   in order, software flags intact — and must never touch the planner
//!   statistics (the legacy executor is the differential baseline).
//! * Merged plans, whatever the group width, must partition the declared
//!   segments exactly: full coverage, declaration order, no group spanning a
//!   software segment, no group wider than requested.
//! * Under real multithreaded contention with merging *and* capacity splits
//!   firing, the adaptive executor must preserve exact serializability (every
//!   committed increment visible exactly once) for both Part-HTM and
//!   Part-HTM-O.

use htm_sim::abort::TxResult;
use htm_sim::{Addr, HtmConfig};
use part_htm_core::{
    build_plan, PartHtm, PartHtmO, PlanStep, TmConfig, TmExecutor, TmRuntime, TmStats, TxCtx,
    Workload,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;

fn arb_software() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(prop_oneof![Just(false), Just(false), Just(true)], 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Group width 1 (the static oracle's configuration) emits the declared
    /// plan byte-for-byte, and reports the longest mergeable run unchanged.
    #[test]
    fn static_plan_is_byte_for_byte(sw in arb_software()) {
        let mut out = Vec::new();
        let max_run = build_plan(sw.len(), 1, |s| sw[s], &mut out);
        let expected: Vec<PlanStep> = (0..sw.len())
            .map(|s| PlanStep { start: s, end: s + 1, software: sw[s] })
            .collect();
        prop_assert_eq!(&out, &expected);
        // max_run = longest consecutive non-software stretch, floored at 1
        // (it feeds `record_clean_commit`'s ceiling clamp).
        let mut best = 0u32;
        let mut run = 0u32;
        for &is_sw in &sw {
            run = if is_sw { 0 } else { run + 1 };
            best = best.max(run);
        }
        prop_assert_eq!(max_run, best.max(1));
    }

    /// Any group width partitions the declared segments exactly: in-order
    /// coverage, software segments isolated, no group wider than requested or
    /// spanning a software segment.
    #[test]
    fn merged_plan_partitions_declared_segments(sw in arb_software(), group in 1u32..20) {
        let mut out = Vec::new();
        build_plan(sw.len(), group, |s| sw[s], &mut out);
        let mut next = 0usize;
        for step in &out {
            prop_assert_eq!(step.start, next, "gap or overlap in the plan");
            prop_assert!(step.end > step.start);
            prop_assert!(step.len() <= group as usize);
            if step.software {
                prop_assert_eq!(step.len(), 1, "software segments never merge");
                prop_assert!(sw[step.start]);
            } else {
                for &is_sw in &sw[step.start..step.end] {
                    prop_assert!(!is_sw, "hardware group swallowed a software segment");
                }
            }
            next = step.end;
        }
        prop_assert_eq!(next, sw.len(), "plan must cover every declared segment");
    }
}

/// The contended increment workload of the protocol-edge tests, declared at
/// fine granularity so the planner has room to merge: `n` counters, one cache
/// line each, split over `segs` segments.
struct Incr {
    n: usize,
    segs: usize,
    base: Addr,
}

impl Workload for Incr {
    type Snap = ();
    fn sample(&mut self, _r: &mut SmallRng) {}
    fn segments(&self) -> usize {
        self.segs
    }
    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let per = self.n / self.segs;
        for i in seg * per..(seg + 1) * per {
            let a = self.base + (i * 8) as Addr;
            let v = ctx.read(a)?;
            ctx.write(a, v + 1)?;
        }
        Ok(())
    }
}

/// 64-line transactional budget: a 6-line segment fits, a merged group of 16
/// segments (96 lines) overflows — merging must eventually probe past the
/// budget and split back.
fn mid_htm() -> HtmConfig {
    HtmConfig {
        l1_sets: 16,
        l1_ways: 4,
        quantum: 1_000_000,
        ..HtmConfig::default()
    }
}

/// Run `threads` workers x `ops` transactions of the 96-counter / 16-segment
/// workload under `cfg`; returns the final counter values and merged stats.
/// `skip_fast` pins every transaction to the partitioned path, the regime the
/// planner governs.
fn run_incr<'r, E: TmExecutor<'r> + Send>(
    rt: &'r TmRuntime,
    threads: usize,
    ops: usize,
) -> (Vec<u64>, TmStats) {
    let stats = std::sync::Mutex::new(TmStats::default());
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rt, stats) = (rt, &stats);
            s.spawn(move || {
                let mut e = E::new(rt, t);
                let mut w = Incr {
                    n: 96,
                    segs: 16,
                    base: rt.app(0),
                };
                for _ in 0..ops {
                    e.execute(&mut w);
                }
                e.thread_mut().harvest_host_counters();
                stats.lock().unwrap().merge(&e.thread().stats);
            });
        }
    });
    let state = (0..96).map(|i| rt.verify_read(i * 8)).collect();
    (state, stats.into_inner().unwrap())
}

fn planner_cfg(adaptive: bool) -> TmConfig {
    TmConfig {
        skip_fast: true,
        adaptive_plan: adaptive,
        ..TmConfig::default()
    }
}

fn seeded_rt(cfg: TmConfig, threads: usize) -> TmRuntime {
    let rt = TmRuntime::new(mid_htm(), cfg, threads, 96 * 8 + 64);
    for i in 0..96 {
        rt.setup_write(i * 8, 1000);
    }
    rt
}

/// Single-threaded differential: the adaptive planner and the static oracle
/// must commit the same transactions to the same final state, and the oracle
/// configuration must never tick a planner counter.
#[test]
fn adaptive_off_is_the_static_oracle() {
    let ops = 80;
    let rt_static = seeded_rt(planner_cfg(false), 1);
    let (state_static, stats_static) = run_incr::<PartHtm>(&rt_static, 1, ops);
    let rt_adaptive = seeded_rt(planner_cfg(true), 1);
    let (state_adaptive, stats_adaptive) = run_incr::<PartHtm>(&rt_adaptive, 1, ops);

    assert_eq!(state_static, state_adaptive);
    assert_eq!(state_static, vec![1000 + ops as u64; 96]);
    assert_eq!(stats_static.plan_merges, 0, "oracle must never merge");
    assert_eq!(stats_static.plan_splits, 0, "oracle must never split");
    assert_eq!(stats_static.site_demotions, 0, "oracle uses the legacy profiler");
    assert_eq!(stats_static.adaptive_retry_saves, 0);
    assert!(
        stats_adaptive.plan_merges > 0,
        "adaptive run on a clean workload must have merged"
    );
}

/// Multithreaded stress, Part-HTM: merges and capacity splits both fire under
/// contention, and every committed increment lands exactly once.
#[test]
fn adaptive_preserves_serializability_part_htm() {
    let (threads, ops) = (4, 150);
    let rt = seeded_rt(planner_cfg(true), threads);
    let (state, stats) = run_incr::<PartHtm>(&rt, threads, ops);
    assert_eq!(state, vec![1000 + (threads * ops) as u64; 96]);
    assert!(stats.plan_merges > 0, "merge machinery never engaged");
    assert!(
        stats.plan_splits > 0,
        "group probing never overflowed the 64-line budget"
    );
}

/// Multithreaded stress, Part-HTM-O: the opaque executor shares the planner;
/// its in-flight validation discipline must survive merge/split too.
#[test]
fn adaptive_preserves_serializability_part_htm_o() {
    let (threads, ops) = (4, 150);
    let rt = seeded_rt(planner_cfg(true), threads);
    let (state, stats) = run_incr::<PartHtmO>(&rt, threads, ops);
    assert_eq!(state, vec![1000 + (threads * ops) as u64; 96]);
    assert!(stats.plan_merges > 0, "merge machinery never engaged");
}
