//! Property-based tests of the heap data structures against std-library oracles.

use part_htm_core::ctx::SlowCtx;
use part_htm_core::{TmRuntime, TmThread};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};
use tm_workloads::structures::{HeapHashMap, HeapQueue};

#[derive(Clone, Debug)]
enum MapOp {
    Insert(u64, u64),
    Get(u64),
    Update(u64, u64),
}

fn arb_map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..40, 1u64..1000).prop_map(|(k, v)| MapOp::Insert(k, v)),
            (0u64..40).prop_map(MapOp::Get),
            (0u64..40, 1u64..50).prop_map(|(k, d)| MapOp::Update(k, d)),
        ],
        1..120,
    )
}

#[derive(Clone, Debug)]
enum QueueOp {
    Push(u64),
    Pop,
}

fn arb_queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    proptest::collection::vec(
        prop_oneof![(1u64..1000).prop_map(QueueOp::Push), Just(QueueOp::Pop)],
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// HeapHashMap behaves exactly like std::HashMap under insert/get/update.
    #[test]
    fn heap_hashmap_matches_std(ops in arb_map_ops()) {
        let rt = TmRuntime::with_defaults(1, HeapHashMap::words_needed(128));
        let th = TmThread::new(&rt, 0);
        let mut ctx = SlowCtx { th: &th.hw, mask_values: false };
        let m = HeapHashMap::new(rt.app(0), 128);
        let mut oracle: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let prev = m.insert(&mut ctx, k, v).unwrap();
                    prop_assert_eq!(prev, oracle.insert(k, v));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(m.get(&mut ctx, k).unwrap(), oracle.get(&k).copied());
                }
                MapOp::Update(k, d) => {
                    let new = m.update(&mut ctx, k, 0, |v| v + d).unwrap();
                    let e = oracle.entry(k).or_insert(0);
                    *e += d;
                    prop_assert_eq!(new, *e);
                }
            }
        }
        prop_assert_eq!(m.occupancy_nt(&rt), oracle.len());
    }

    /// HeapQueue behaves exactly like VecDeque under push/pop with capacity 16.
    #[test]
    fn heap_queue_matches_std(ops in arb_queue_ops()) {
        let rt = TmRuntime::with_defaults(1, HeapQueue::words_needed(16));
        let th = TmThread::new(&rt, 0);
        let mut ctx = SlowCtx { th: &th.hw, mask_values: false };
        let q = HeapQueue::new(rt.app(0), 16);
        let mut oracle: VecDeque<u64> = VecDeque::new();

        for op in &ops {
            match *op {
                QueueOp::Push(v) => {
                    let pushed = q.push(&mut ctx, v).unwrap();
                    if oracle.len() < 16 {
                        prop_assert!(pushed);
                        oracle.push_back(v);
                    } else {
                        prop_assert!(!pushed, "must report full");
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(q.pop(&mut ctx).unwrap(), oracle.pop_front());
                }
            }
            prop_assert_eq!(q.len(&mut ctx).unwrap(), oracle.len() as u64);
        }
    }
}
