//! Shared-memory data structures programmed against [`TxCtx`], used by the
//! STAMP-profile kernels: an open-addressing hash map and a bounded queue.
//!
//! Layout conventions: every slot is one cache line apart where contention matters;
//! keys are offset by one so 0 can mean "empty". Values are 63-bit (Part-HTM-O's
//! embedded lock bit).

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx};

/// A fixed-capacity open-addressing (linear probing) hash map in the simulated
/// heap. No deletion (STAMP's kernels only insert and look up during the measured
/// phase). Slot layout: `[key+1, value]` pairs, one pair per cache line to keep
/// collision probes from false-sharing.
#[derive(Clone, Copy, Debug)]
pub struct HeapHashMap {
    base: Addr,
    /// Power-of-two slot count.
    slots: u32,
}

impl HeapHashMap {
    /// Words of heap needed for `slots` slots (line-aligned pairs).
    pub fn words_needed(slots: usize) -> usize {
        assert!(slots.is_power_of_two());
        slots * 8
    }

    /// Wrap a heap region previously sized with [`HeapHashMap::words_needed`].
    /// `base` must be the runtime app address of the region start.
    pub fn new(base: Addr, slots: usize) -> Self {
        assert!(slots.is_power_of_two());
        Self {
            base,
            slots: slots as u32,
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> u32 {
        self.slots
    }

    #[inline]
    fn slot_addr(&self, slot: u32) -> Addr {
        self.base + slot * 8
    }

    #[inline]
    fn hash(&self, key: u64) -> u32 {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as u32 & (self.slots - 1)
    }

    /// Transactionally insert `key -> value`. Returns the previous value if the key
    /// was present, or `None` for a fresh insert. Panics (via `debug_assert`) if the
    /// table fills up — size tables generously.
    pub fn insert<C: TxCtx>(&self, ctx: &mut C, key: u64, value: u64) -> TxResult<Option<u64>> {
        let mut slot = self.hash(key);
        for _probe in 0..self.slots {
            let a = self.slot_addr(slot);
            let k = ctx.read(a)?;
            if k == 0 {
                ctx.write(a, key + 1)?;
                ctx.write(a + 1, value)?;
                return Ok(None);
            }
            if k == key + 1 {
                let old = ctx.read(a + 1)?;
                ctx.write(a + 1, value)?;
                return Ok(Some(old));
            }
            slot = (slot + 1) & (self.slots - 1);
        }
        unreachable!("HeapHashMap full: size tables above peak occupancy");
    }

    /// Transactional lookup.
    pub fn get<C: TxCtx>(&self, ctx: &mut C, key: u64) -> TxResult<Option<u64>> {
        let mut slot = self.hash(key);
        for _probe in 0..self.slots {
            let a = self.slot_addr(slot);
            let k = ctx.read(a)?;
            if k == 0 {
                return Ok(None);
            }
            if k == key + 1 {
                return Ok(Some(ctx.read(a + 1)?));
            }
            slot = (slot + 1) & (self.slots - 1);
        }
        Ok(None)
    }

    /// Transactional read-modify-write of the value for `key`, inserting
    /// `default` first if absent. Returns the value written.
    pub fn update<C: TxCtx>(
        &self,
        ctx: &mut C,
        key: u64,
        default: u64,
        f: impl FnOnce(u64) -> u64,
    ) -> TxResult<u64> {
        let mut slot = self.hash(key);
        for _probe in 0..self.slots {
            let a = self.slot_addr(slot);
            let k = ctx.read(a)?;
            if k == 0 {
                let v = f(default);
                ctx.write(a, key + 1)?;
                ctx.write(a + 1, v)?;
                return Ok(v);
            }
            if k == key + 1 {
                let v = f(ctx.read(a + 1)?);
                ctx.write(a + 1, v)?;
                return Ok(v);
            }
            slot = (slot + 1) & (self.slots - 1);
        }
        unreachable!("HeapHashMap full: size tables above peak occupancy");
    }

    /// Non-transactional occupancy count (verification only).
    pub fn occupancy_nt(&self, rt: &TmRuntime) -> usize {
        (0..self.slots)
            .filter(|&s| rt.system().nt_read(self.slot_addr(s)) != 0)
            .count()
    }
}

/// A bounded multi-producer multi-consumer queue in the simulated heap, protected by
/// the enclosing transaction (no internal synchronisation — the TM provides it).
/// Layout: `[head, tail]` on one line, then `capacity` slots one line apart.
#[derive(Clone, Copy, Debug)]
pub struct HeapQueue {
    base: Addr,
    capacity: u32,
}

impl HeapQueue {
    /// Words needed for a queue of `capacity` slots (power of two).
    pub fn words_needed(capacity: usize) -> usize {
        assert!(capacity.is_power_of_two());
        8 + capacity * 8
    }

    /// Wrap a heap region previously sized with [`HeapQueue::words_needed`].
    pub fn new(base: Addr, capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Self {
            base,
            capacity: capacity as u32,
        }
    }

    #[inline]
    fn head_addr(&self) -> Addr {
        self.base
    }

    #[inline]
    fn tail_addr(&self) -> Addr {
        self.base + 1
    }

    #[inline]
    fn slot_addr(&self, i: u64) -> Addr {
        self.base + 8 + (i as u32 & (self.capacity - 1)) * 8
    }

    /// Transactionally enqueue; returns false if full.
    pub fn push<C: TxCtx>(&self, ctx: &mut C, value: u64) -> TxResult<bool> {
        let head = ctx.read(self.head_addr())?;
        let tail = ctx.read(self.tail_addr())?;
        if tail - head >= u64::from(self.capacity) {
            return Ok(false);
        }
        ctx.write(self.slot_addr(tail), value)?;
        ctx.write(self.tail_addr(), tail + 1)?;
        Ok(true)
    }

    /// Transactionally dequeue; returns `None` if empty.
    pub fn pop<C: TxCtx>(&self, ctx: &mut C) -> TxResult<Option<u64>> {
        let head = ctx.read(self.head_addr())?;
        let tail = ctx.read(self.tail_addr())?;
        if head == tail {
            return Ok(None);
        }
        let v = ctx.read(self.slot_addr(head))?;
        ctx.write(self.head_addr(), head + 1)?;
        Ok(Some(v))
    }

    /// Transactional length.
    pub fn len<C: TxCtx>(&self, ctx: &mut C) -> TxResult<u64> {
        Ok(ctx.read(self.tail_addr())? - ctx.read(self.head_addr())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::ctx::SlowCtx;
    use part_htm_core::TmThread;

    fn direct_ctx_test(words: usize, f: impl FnOnce(&TmRuntime, &mut SlowCtx<'_, '_>)) {
        let rt = TmRuntime::with_defaults(1, words);
        let th = TmThread::new(&rt, 0);
        let mut ctx = SlowCtx {
            th: &th.hw,
            mask_values: false,
        };
        f(&rt, &mut ctx);
    }

    #[test]
    fn hashmap_insert_get_update() {
        direct_ctx_test(HeapHashMap::words_needed(64), |rt, ctx| {
            let m = HeapHashMap::new(rt.app(0), 64);
            assert_eq!(m.get(ctx, 42).unwrap(), None);
            assert_eq!(m.insert(ctx, 42, 7).unwrap(), None);
            assert_eq!(m.get(ctx, 42).unwrap(), Some(7));
            assert_eq!(m.insert(ctx, 42, 8).unwrap(), Some(7));
            assert_eq!(m.update(ctx, 42, 0, |v| v + 1).unwrap(), 9);
            assert_eq!(m.update(ctx, 99, 100, |v| v + 1).unwrap(), 101);
            assert_eq!(m.occupancy_nt(rt), 2);
        });
    }

    #[test]
    fn hashmap_handles_collisions() {
        direct_ctx_test(HeapHashMap::words_needed(16), |rt, ctx| {
            let m = HeapHashMap::new(rt.app(0), 16);
            // Fill half the table; every key must remain retrievable.
            for k in 0..8u64 {
                m.insert(ctx, k * 1000, k).unwrap();
            }
            for k in 0..8u64 {
                assert_eq!(m.get(ctx, k * 1000).unwrap(), Some(k), "key {k}");
            }
            assert_eq!(m.get(ctx, 5).unwrap(), None);
        });
    }

    #[test]
    fn queue_fifo_and_bounds() {
        direct_ctx_test(HeapQueue::words_needed(4), |rt, ctx| {
            let q = HeapQueue::new(rt.app(0), 4);
            assert_eq!(q.pop(ctx).unwrap(), None);
            for i in 0..4 {
                assert!(q.push(ctx, i).unwrap());
            }
            assert!(!q.push(ctx, 99).unwrap(), "queue must report full");
            assert_eq!(q.len(ctx).unwrap(), 4);
            for i in 0..4 {
                assert_eq!(q.pop(ctx).unwrap(), Some(i));
            }
            assert_eq!(q.pop(ctx).unwrap(), None);
            // Wrap-around works.
            assert!(q.push(ctx, 123).unwrap());
            assert_eq!(q.pop(ctx).unwrap(), Some(123));
        });
    }
}
