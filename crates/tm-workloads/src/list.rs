//! The sorted linked list benchmark (Fig. 4 of the paper).
//!
//! Transactions traverse the list from the head to the target key — "this increases
//! the contention between transactions" (§7.1) — then perform `contains` (50%),
//! `insert` (25%) or `remove` (25%); write operations are balanced so the size stays
//! stable. With a 1 K list the traversal fits best-effort HTM (Fig. 4(a), HTM-GL
//! wins); with 10 K elements most transactions exceed the read budget and only the
//! partitioned path keeps committing them in hardware (Fig. 4(b), Part-HTM wins).
//!
//! Layout: a head-pointer line, a free-list-head line, and a pool of one-line nodes
//! `[key, next]` addressed by 1-based index (0 = null).

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the linked-list benchmark.
#[derive(Clone, Copy, Debug)]
pub struct ListParams {
    /// Initial (and steady-state) number of elements.
    pub size: usize,
    /// Percentage of write operations (insert + remove, split evenly).
    pub write_pct: u32,
    /// Hops per sub-HTM segment on the partitioned path.
    pub seg_hops: usize,
    /// Number of static segments (must cover `2 * size / seg_hops` hops).
    pub segments: usize,
}

impl ListParams {
    /// Fig. 4(a): 1 K elements, 50 % writes.
    pub fn fig4a() -> Self {
        Self {
            size: 1000,
            write_pct: 50,
            seg_hops: 512,
            segments: 6,
        }
    }

    /// Fig. 4(b): 10 K elements, 50 % writes.
    pub fn fig4b() -> Self {
        Self {
            size: 10_000,
            write_pct: 50,
            seg_hops: 1024,
            segments: 22,
        }
    }

    /// Key range: twice the size keeps the size stable under balanced writes.
    pub fn key_range(&self) -> u64 {
        (self.size * 2) as u64
    }

    fn pool_nodes(&self) -> usize {
        // Steady state ~size live nodes; the pool holds the whole key range plus
        // slack so allocation never fails.
        self.size * 2 + 64
    }

    /// Words of application memory needed.
    pub fn app_words(&self) -> usize {
        8 + 8 + self.pool_nodes() * 8
    }
}

/// Shared layout of the list.
#[derive(Clone, Copy, Debug)]
pub struct ListShared {
    head: Addr,
    free: Addr,
    pool: Addr,
    params: ListParams,
}

impl ListShared {
    #[inline]
    fn key_addr(&self, node: u64) -> Addr {
        debug_assert!(node >= 1);
        self.pool + ((node - 1) * 8) as Addr
    }

    #[inline]
    fn next_addr(&self, node: u64) -> Addr {
        self.key_addr(node) + 1
    }

    /// Non-transactional structural check: returns the keys in list order,
    /// asserting they are strictly sorted. For verification between runs.
    pub fn collect_sorted_nt(&self, rt: &TmRuntime) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = rt.system().nt_read(self.head);
        let mut prev_key = 0;
        while cur != 0 {
            let k = rt.system().nt_read(self.key_addr(cur));
            assert!(
                k > prev_key,
                "list keys must be strictly increasing: {prev_key} then {k}"
            );
            keys.push(k);
            prev_key = k;
            cur = rt.system().nt_read(self.next_addr(cur));
            assert!(keys.len() <= self.params.pool_nodes(), "cycle detected");
        }
        keys
    }
}

/// Initialise the list with `size` evenly spaced keys and chain the remaining nodes
/// onto the free list.
pub fn init(rt: &TmRuntime, params: &ListParams) -> ListShared {
    let shared = ListShared {
        head: rt.app(0),
        free: rt.app(8),
        pool: rt.app(16),
        params: *params,
    };
    let heap = rt.system().heap();
    let range = params.key_range();
    // Live nodes 1..=size hold keys 2, 4, 6, ... (even keys), leaving odd keys for
    // inserts.
    for i in 0..params.size {
        let node = (i + 1) as u64;
        let key = (i as u64 + 1) * range / params.size as u64;
        heap.store(shared.key_addr(node), key.max(1));
        heap.store(
            shared.next_addr(node),
            if i + 1 < params.size { node + 1 } else { 0 },
        );
    }
    heap.store(shared.head, 1);
    // Free list: nodes size+1 ..= pool_nodes.
    let pool = params.pool_nodes() as u64;
    for node in (params.size as u64 + 1)..=pool {
        heap.store(
            shared.next_addr(node),
            if node < pool { node + 1 } else { 0 },
        );
    }
    heap.store(shared.free, params.size as u64 + 1);
    shared
}

/// The sampled operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ListOp {
    Contains,
    Insert,
    Remove,
}

/// Traversal cursor, snapshotted at segment boundaries.
#[derive(Clone, Copy, Debug, Default)]
pub struct ListSnap {
    /// 0 = traversal not started; otherwise the node whose `next` we follow.
    prev: u64,
    cur: u64,
    started: bool,
    done: bool,
}

/// Per-thread linked-list workload.
pub struct ListWorkload {
    shared: ListShared,
    op: ListOp,
    key: u64,
    cursor: ListSnap,
    /// Result of the last committed operation (true = key found / op applied).
    pub last_found: bool,
}

impl ListWorkload {
    /// Build the per-thread workload.
    pub fn new(shared: ListShared) -> Self {
        Self {
            shared,
            op: ListOp::Contains,
            key: 1,
            cursor: ListSnap::default(),
            last_found: false,
        }
    }

    /// Apply the operation once the cursor sits at the first node with
    /// `node.key >= key` (or at the end).
    fn apply<C: TxCtx>(&mut self, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let ListSnap { prev, cur, .. } = self.cursor;
        let found = if cur == 0 {
            false
        } else {
            ctx.read(s.key_addr(cur))? == self.key
        };
        match self.op {
            ListOp::Contains => self.last_found = found,
            ListOp::Insert => {
                if !found {
                    let node = ctx.read(s.free)?;
                    debug_assert_ne!(node, 0, "node pool exhausted");
                    let next_free = ctx.read(s.next_addr(node))?;
                    ctx.write(s.free, next_free)?;
                    ctx.write(s.key_addr(node), self.key)?;
                    ctx.write(s.next_addr(node), cur)?;
                    let link = if prev == 0 { s.head } else { s.next_addr(prev) };
                    ctx.write(link, node)?;
                }
                self.last_found = !found;
            }
            ListOp::Remove => {
                if found {
                    let after = ctx.read(s.next_addr(cur))?;
                    let link = if prev == 0 { s.head } else { s.next_addr(prev) };
                    ctx.write(link, after)?;
                    // Return the node to the free list.
                    let old_free = ctx.read(s.free)?;
                    ctx.write(s.next_addr(cur), old_free)?;
                    ctx.write(s.free, cur)?;
                }
                self.last_found = found;
            }
        }
        self.cursor.done = true;
        Ok(())
    }
}

impl Workload for ListWorkload {
    type Snap = ListSnap;

    fn sample(&mut self, rng: &mut SmallRng) {
        let r: u32 = rng.gen_range(0..100);
        self.op = if r < 100 - self.shared.params.write_pct {
            ListOp::Contains
        } else if r < 100 - self.shared.params.write_pct / 2 {
            ListOp::Insert
        } else {
            ListOp::Remove
        };
        self.key = rng.gen_range(1..=self.shared.params.key_range());
    }

    fn segments(&self) -> usize {
        self.shared.params.segments
    }

    fn site(&self) -> u32 {
        // One abort profile per operation kind: reads-only `contains` and the
        // writing `insert`/`remove` traversals stress HTM differently.
        match self.op {
            ListOp::Contains => 0,
            ListOp::Insert => 1,
            ListOp::Remove => 2,
        }
    }

    fn reset(&mut self) {
        self.cursor = ListSnap::default();
    }

    fn snapshot(&self) -> ListSnap {
        self.cursor
    }

    fn restore(&mut self, s: ListSnap) {
        self.cursor = s;
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        if self.cursor.done {
            return Ok(());
        }
        let s = self.shared;
        if !self.cursor.started {
            self.cursor.started = true;
            self.cursor.prev = 0;
            self.cursor.cur = ctx.read(s.head)?;
        }
        // The last segment must finish the operation even if the list grew past the
        // static hop budget (it will simply be a bigger sub-HTM transaction).
        let hops = if seg + 1 == s.params.segments {
            usize::MAX
        } else {
            s.params.seg_hops
        };
        for _ in 0..hops {
            let cur = self.cursor.cur;
            if cur == 0 {
                return self.apply(ctx);
            }
            let k = ctx.read(s.key_addr(cur))?;
            if k >= self.key {
                return self.apply(ctx);
            }
            self.cursor.prev = cur;
            self.cursor.cur = ctx.read(s.next_addr(cur))?;
        }
        // Budget exhausted: the next segment (sub-HTM transaction) continues from
        // the snapshot cursor.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{PartHtm, TmExecutor};
    use rand::SeedableRng;
    use tm_baselines::{HtmGl, NOrec};

    #[test]
    fn init_builds_sorted_list() {
        let p = ListParams {
            size: 100,
            write_pct: 50,
            seg_hops: 64,
            segments: 5,
        };
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let keys = s.collect_sorted_nt(&rt);
        assert_eq!(keys.len(), 100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_thread_ops_preserve_structure() {
        let p = ListParams {
            size: 200,
            write_pct: 50,
            seg_hops: 64,
            segments: 8,
        };
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = ListWorkload::new(s);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..300 {
            w.sample(&mut rng);
            e.execute(&mut w);
            // done flag must be set after every committed execution.
            assert!(w.cursor.done);
        }
        let keys = s.collect_sorted_nt(&rt);
        assert!(!keys.is_empty());
    }

    /// Run 3 threads of one executor type over a fresh list and check structural
    /// integrity: sorted, acyclic, and every pool node either live or free exactly
    /// once. (A macro because `TmExecutor` carries the runtime lifetime, which a
    /// plain generic test helper cannot abstract over.)
    macro_rules! structural_integrity_under {
        ($name:ident, $exec:ident) => {
            #[test]
            fn $name() {
                let p = ListParams {
                    size: 150,
                    write_pct: 50,
                    seg_hops: 48,
                    segments: 8,
                };
                let rt = TmRuntime::with_defaults(3, p.app_words());
                let s = init(&rt, &p);
                std::thread::scope(|scope| {
                    for t in 0..3 {
                        let rt = &rt;
                        scope.spawn(move || {
                            let mut rng = SmallRng::seed_from_u64(100 + t as u64);
                            let mut e = $exec::new(rt, t);
                            let mut w = ListWorkload::new(s);
                            for _ in 0..120 {
                                w.sample(&mut rng);
                                e.execute(&mut w);
                            }
                        });
                    }
                });
                let live = s.collect_sorted_nt(&rt).len();
                let mut free = 0;
                let mut cur = rt.system().nt_read(s.free);
                while cur != 0 {
                    free += 1;
                    cur = rt.system().nt_read(s.next_addr(cur));
                    assert!(free <= p.pool_nodes(), "free list cycle");
                }
                assert_eq!(
                    live + free,
                    p.pool_nodes(),
                    "every node live or free exactly once"
                );
            }
        };
    }

    structural_integrity_under!(concurrent_ops_keep_list_sorted_part_htm, PartHtm);
    structural_integrity_under!(concurrent_ops_keep_list_sorted_htm_gl, HtmGl);
    structural_integrity_under!(concurrent_ops_keep_list_sorted_norec, NOrec);

    #[test]
    fn contains_matches_ground_truth() {
        let p = ListParams {
            size: 64,
            write_pct: 0,
            seg_hops: 32,
            segments: 6,
        };
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let truth: std::collections::HashSet<u64> = s.collect_sorted_nt(&rt).into_iter().collect();
        let mut e = PartHtm::new(&rt, 0);
        let mut w = ListWorkload::new(s);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            w.sample(&mut rng);
            e.execute(&mut w);
            assert_eq!(w.last_found, truth.contains(&w.key), "key {}", w.key);
        }
    }
}
