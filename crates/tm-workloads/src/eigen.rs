//! EigenBench (Hong et al., IISWC'10) — the orthogonal-characteristics TM
//! benchmark, in the paper's two configurations (Fig. 6).
//!
//! EigenBench transactions mix accesses to a shared contended *hot* array, a
//! per-thread *mild* array, and non-transactional computation:
//!
//! * Fig. 6(a): 50 % *long* transactions (non-transactional computation between
//!   operations — declared shared-state-free, so Part-HTM's partitioned path runs it
//!   in software segments, §4 "Non-transactional Code") and 50 % *short*
//!   transactions (50 reads / 5 writes on a 1024-word disjoint array).
//! * Fig. 6(b): high contention — hot array of 32 K words, 10 K reads and 100 writes
//!   per transaction with 50 % repeated accesses.

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of an EigenBench-style workload.
#[derive(Clone, Copy, Debug)]
pub struct EigenParams {
    /// Words of the shared hot array.
    pub hot_words: usize,
    /// Words of each thread's private mild array.
    pub mild_words: usize,
    /// Reads per transaction from the hot array.
    pub hot_reads: usize,
    /// Writes per transaction to the hot array.
    pub hot_writes: usize,
    /// Fraction (percent) of hot accesses that repeat an earlier address
    /// (locality knob; Fig. 6(b) uses 50).
    pub repeat_pct: u32,
    /// Probability (percent) that a transaction is *long*: it interleaves
    /// non-transactional computation between its operations.
    pub long_pct: u32,
    /// Non-transactional work units of a long transaction (split across its
    /// software segments).
    pub long_nt_work: u64,
    /// Whether hot accesses are disjoint per thread (Fig. 6(a)) or shared
    /// (Fig. 6(b)).
    pub disjoint: bool,
    /// Memory segments for the partitioned path (interleaved with software
    /// segments for long transactions).
    pub mem_segments: usize,
}

impl EigenParams {
    /// Fig. 6(a): 50 % long / 50 % short transactions, disjoint accesses.
    pub fn fig6a() -> Self {
        Self {
            hot_words: 1024,
            mild_words: 1024,
            hot_reads: 50,
            hot_writes: 5,
            repeat_pct: 0,
            long_pct: 50,
            long_nt_work: 60_000,
            disjoint: true,
            mem_segments: 2,
        }
    }

    /// Fig. 6(b): high contention on a 32 K hot array, 10 K reads / 100 writes with
    /// 50 % repeated accesses — scaled 4x down (2.5 k reads) for simulation time;
    /// the contention and footprint relationships are preserved.
    pub fn fig6b() -> Self {
        Self {
            hot_words: 32 * 1024 / 4,
            mild_words: 1024,
            hot_reads: 2500,
            hot_writes: 100,
            repeat_pct: 50,
            long_pct: 0,
            long_nt_work: 0,
            disjoint: false,
            mem_segments: 8,
        }
    }

    /// Words of application memory needed for `threads` threads.
    pub fn app_words(&self, threads: usize) -> usize {
        self.hot_words + threads * self.mild_words
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct EigenShared {
    hot: Addr,
    mild0: Addr,
    params: EigenParams,
}

/// Initialise (arrays start zeroed; nothing else needed).
pub fn init(rt: &TmRuntime, params: &EigenParams) -> EigenShared {
    EigenShared {
        hot: rt.app(0),
        mild0: rt.app(params.hot_words),
        params: *params,
    }
}

/// Per-thread EigenBench workload.
pub struct Eigen {
    shared: EigenShared,
    thread_id: usize,
    threads: usize,
    /// Pre-sampled hot addresses for this transaction (replayed identically on
    /// every retry).
    addrs: Vec<Addr>,
    is_long: bool,
    rng_tag: u64,
}

impl Eigen {
    /// Build the workload for `thread_id` of `threads`.
    pub fn new(shared: EigenShared, thread_id: usize, threads: usize) -> Self {
        Self {
            shared,
            thread_id,
            threads,
            addrs: Vec::new(),
            is_long: false,
            rng_tag: 0,
        }
    }

    fn mild_addr(&self) -> Addr {
        self.shared.mild0 + (self.thread_id * self.shared.params.mild_words) as Addr
    }
}

impl Workload for Eigen {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        let p = &self.shared.params;
        self.is_long = rng.gen_range(0..100) < p.long_pct;
        self.rng_tag = rng.gen();
        // Pre-sample all hot addresses so retries replay the same transaction.
        let total = p.hot_reads + p.hot_writes;
        self.addrs.clear();
        let mut local = SmallRng::seed_from_u64(self.rng_tag);
        for i in 0..total {
            let a = if !self.addrs.is_empty() && local.gen_range(0..100) < p.repeat_pct {
                self.addrs[local.gen_range(0..i.min(self.addrs.len()))]
            } else if p.disjoint {
                let span = p.hot_words / self.threads;
                let off = local.gen_range(0..span);
                self.shared.hot + (self.thread_id * span + off) as Addr
            } else {
                self.shared.hot + local.gen_range(0..p.hot_words) as Addr
            };
            self.addrs.push(a);
        }
    }

    fn segments(&self) -> usize {
        if self.is_long {
            // Memory segments interleaved with software (computation) segments:
            // mem, sw, mem, sw, ..., mem.
            2 * self.shared.params.mem_segments - 1
        } else {
            self.shared.params.mem_segments
        }
    }

    fn software_segment(&self, seg: usize) -> bool {
        self.is_long && seg % 2 == 1
    }

    fn profiled_resource_limited(&self) -> Option<bool> {
        // Long transactions carry non-transactional computation far beyond the HTM
        // quantum; short ones always fit. The profiler can tell statically.
        if self.shared.params.long_pct > 0 {
            Some(self.is_long)
        } else {
            None
        }
    }

    fn site(&self) -> u32 {
        // Long and short transactions are different sites: the adaptive
        // planner keeps separate demotion/plan/budget profiles for them, so a
        // futile-fast-path history of the long class never demotes the short
        // class (the per-class routing Table 1 row B does with static hints).
        u32::from(self.is_long)
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let p = &self.shared.params;
        if self.software_segment(seg) {
            let sw_segments = (self.segments() / 2).max(1) as u64;
            ctx.nt_work(p.long_nt_work / sw_segments)?;
            return Ok(());
        }
        let mem_idx = if self.is_long { seg / 2 } else { seg };
        let mem_segments = p.mem_segments;
        let total = self.addrs.len();
        let per = total.div_ceil(mem_segments);
        let start = mem_idx * per;
        let end = (start + per).min(total);
        let mut acc = self.rng_tag & 0xFFFF;
        for (i, &a) in self.addrs[start..end].iter().enumerate() {
            let global_i = start + i;
            if global_i < p.hot_reads {
                acc = acc.wrapping_add(ctx.read(a)?);
            } else {
                ctx.write(a, (acc.wrapping_add(global_i as u64)) & ((1 << 62) - 1))?;
            }
        }
        // A touch of mild (private) work keeps the profile honest.
        if end > start {
            let m = self.mild_addr() + (mem_idx % p.mild_words.min(64)) as Addr;
            let v = ctx.read(m)?;
            ctx.write(m, v + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmConfig, TmExecutor};
    use tm_baselines::HtmGl;

    #[test]
    fn short_txs_fit_htm() {
        let p = EigenParams {
            long_pct: 0,
            ..EigenParams::fig6a()
        };
        let rt = TmRuntime::with_defaults(2, p.app_words(2));
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Eigen::new(s, 0, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }

    #[test]
    fn long_txs_partition_with_software_compute() {
        let p = EigenParams {
            long_pct: 100,
            long_nt_work: 80_000,
            ..EigenParams::fig6a()
        };
        let htm = htm_sim::HtmConfig {
            quantum: 20_000,
            ..htm_sim::HtmConfig::default()
        };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, p.app_words(1));
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Eigen::new(s, 0, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        w.sample(&mut rng);
        assert!(w.is_long);
        // 80k nt-work > 20k quantum as one HTM transaction; software segments
        // rescue it on the partitioned path.
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        // HTM-GL has no such escape: global lock.
        let mut g = HtmGl::new(&rt, 0);
        assert_eq!(g.execute(&mut w), CommitPath::GlobalLock);
    }

    #[test]
    fn retries_replay_identical_addresses() {
        let p = EigenParams::fig6b();
        let rt = TmRuntime::with_defaults(2, p.app_words(2));
        let s = init(&rt, &p);
        let mut w = Eigen::new(s, 0, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        w.sample(&mut rng);
        let first = w.addrs.clone();
        // reset/restore (retry machinery) must not change the address stream.
        w.reset();
        assert_eq!(w.addrs, first);
    }

    #[test]
    fn disjoint_mode_separates_threads() {
        let p = EigenParams::fig6a();
        let rt = TmRuntime::with_defaults(4, p.app_words(4));
        let s = init(&rt, &p);
        let mut rng = SmallRng::seed_from_u64(4);
        let span = p.hot_words / 4;
        for t in 0..4usize {
            let mut w = Eigen::new(s, t, 4);
            w.sample(&mut rng);
            for &a in &w.addrs {
                let off = (a - s.hot) as usize;
                assert!(off / span == t, "thread {t} touched offset {off}");
            }
        }
    }
}
