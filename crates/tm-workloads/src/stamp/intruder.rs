//! Intruder profile (Fig. 5(e)): network-intrusion detection — packet capture,
//! reassembly and detection.
//!
//! Each transaction runs the pipeline's three phases as STAMP structures them:
//! *capture* pushes a fragment into the shared capture queue, *reassembly* pops one
//! and updates its flow's state in a shared map (completed flows move to the
//! detection queue), and *detection* drains one completed flow, scans it and bumps
//! the detector counter. Transactions are short but *everyone* contends on the
//! queue heads/tails and the hot flow entries — high conflict rate, no resource
//! failures, the regime where HTM-GL's raw speed wins and Part-HTM should track it
//! closely.

use crate::structures::{HeapHashMap, HeapQueue};
use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the intruder kernel.
#[derive(Clone, Copy, Debug)]
pub struct IntruderParams {
    /// Concurrent flows (contention knob: fewer flows, hotter map entries).
    pub flows: usize,
    /// Fragments per flow before it is "complete" and scanned.
    pub frags_per_flow: u64,
    /// Capture queue capacity.
    pub queue_cap: usize,
    /// Detection work units when a flow completes.
    pub detect_work: u64,
}

impl IntruderParams {
    /// The evaluation's configuration (scaled).
    pub fn default_scale() -> Self {
        Self {
            flows: 256,
            frags_per_flow: 4,
            queue_cap: 1024,
            detect_work: 60,
        }
    }

    /// Words of application memory: capture queue + detection queue + flow map +
    /// detector line.
    pub fn app_words(&self) -> usize {
        2 * HeapQueue::words_needed(self.queue_cap)
            + HeapHashMap::words_needed(self.map_slots())
            + 8
    }

    fn map_slots(&self) -> usize {
        (self.flows * 4).next_power_of_two()
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct IntruderShared {
    queue: HeapQueue,
    detect_queue: HeapQueue,
    flow_map: HeapHashMap,
    detector: Addr,
    params: IntruderParams,
}

impl IntruderShared {
    /// Completed-flow count (verification).
    pub fn completed_nt(&self, rt: &TmRuntime) -> u64 {
        rt.system().nt_read(self.detector)
    }
}

/// Initialise (empty queue and map).
pub fn init(rt: &TmRuntime, params: &IntruderParams) -> IntruderShared {
    let qw = HeapQueue::words_needed(params.queue_cap);
    let mw = HeapHashMap::words_needed(params.map_slots());
    IntruderShared {
        queue: HeapQueue::new(rt.app(0), params.queue_cap),
        detect_queue: HeapQueue::new(rt.app(qw), params.queue_cap),
        flow_map: HeapHashMap::new(rt.app(2 * qw), params.map_slots()),
        detector: rt.app(2 * qw + mw),
        params: *params,
    }
}

/// Per-thread intruder workload.
pub struct Intruder {
    shared: IntruderShared,
    flow: u64,
}

impl Intruder {
    /// Build the per-thread workload.
    pub fn new(shared: IntruderShared) -> Self {
        Self { shared, flow: 0 }
    }
}

impl Workload for Intruder {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        self.flow = rng.gen_range(0..self.shared.params.flows as u64);
    }

    fn segments(&self) -> usize {
        3
    }

    fn site(&self) -> u32 {
        // Deliberately single-site: every transaction runs the same
        // capture/reassembly/detection pipeline over one sampled flow, so all
        // transactions share one HTM appetite and one abort profile is right.
        0
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        match seg {
            0 => {
                // Capture: enqueue a fragment of the sampled flow.
                s.queue.push(ctx, self.flow + 1)?;
                Ok(())
            }
            1 => {
                // Reassembly: drain one fragment, advance its flow, hand completed
                // flows to the detection stage.
                let Some(frag) = s.queue.pop(ctx)? else {
                    return Ok(());
                };
                let flow = frag - 1;
                let count = s.flow_map.update(ctx, flow, 0, |c| c + 1)?;
                if count >= s.params.frags_per_flow {
                    s.flow_map.insert(ctx, flow, 0)?;
                    s.detect_queue.push(ctx, flow + 1)?;
                }
                Ok(())
            }
            _ => {
                // Detection: scan one completed flow.
                let Some(_flow) = s.detect_queue.pop(ctx)? else {
                    return Ok(());
                };
                ctx.work(s.params.detect_work)?;
                let d = ctx.read(s.detector)?;
                ctx.write(s.detector, d + 1)?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmExecutor};
    use rand::SeedableRng;
    use tm_baselines::HtmGl;

    #[test]
    fn fragments_balance() {
        let p = IntruderParams {
            flows: 16,
            ..IntruderParams::default_scale()
        };
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        const OPS: u64 = 200;
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Intruder::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..OPS {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        // Every pushed fragment is either still queued, accumulated in a flow, or
        // part of a completed flow (frags_per_flow each).
        let th = part_htm_core::TmThread::new(&rt, 0);
        let mut ctx = part_htm_core::ctx::SlowCtx {
            th: &th.hw,
            mask_values: false,
        };
        let queued = s.queue.len(&mut ctx).unwrap();
        let mut in_flows = 0;
        for f in 0..p.flows as u64 {
            in_flows += s.flow_map.get(&mut ctx, f).unwrap().unwrap_or(0);
        }
        let awaiting_detection = s.detect_queue.len(&mut ctx).unwrap();
        let completed = s.completed_nt(&rt);
        assert_eq!(
            queued + in_flows + (awaiting_detection + completed) * p.frags_per_flow,
            4 * OPS,
            "queued {queued} + pending {in_flows} + (awaiting {awaiting_detection} + \
             detected {completed}) x {}",
            p.frags_per_flow
        );
    }

    #[test]
    fn short_txs_fit_htm() {
        let p = IntruderParams::default_scale();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Intruder::new(s);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }
}
