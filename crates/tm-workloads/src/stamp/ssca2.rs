//! SSCA2 profile (Fig. 5(c)): tiny graph-construction transactions with very low
//! contention.
//!
//! Each transaction adds one directed edge to a large adjacency structure: read the
//! source node's degree, write the adjacency slot, bump the degree. Three to four
//! operations per transaction over a huge vertex set — almost never conflicting,
//! so raw per-transaction overhead dominates (the paper notes SSCA2 exposes
//! Part-HTM's instrumentation cost at one thread).

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the SSCA2 kernel.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Params {
    /// Number of vertices.
    pub vertices: usize,
    /// Maximum out-degree (adjacency slots per vertex).
    pub max_degree: usize,
}

impl Ssca2Params {
    /// The evaluation's configuration (scaled).
    pub fn default_scale() -> Self {
        Self {
            vertices: 8192,
            max_degree: 7,
        }
    }

    /// Words per vertex: one line holding `[degree, slot0..slot6]`.
    pub fn app_words(&self) -> usize {
        self.vertices * 8
    }
}

/// Shared layout: one line per vertex.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Shared {
    base: Addr,
    params: Ssca2Params,
}

impl Ssca2Shared {
    fn vertex_addr(&self, v: usize) -> Addr {
        self.base + (v * 8) as Addr
    }

    /// Total edges inserted (verification).
    pub fn total_edges_nt(&self, rt: &TmRuntime) -> u64 {
        (0..self.params.vertices)
            .map(|v| rt.system().nt_read(self.vertex_addr(v)))
            .sum()
    }
}

/// Initialise (empty graph).
pub fn init(rt: &TmRuntime, params: &Ssca2Params) -> Ssca2Shared {
    Ssca2Shared {
        base: rt.app(0),
        params: *params,
    }
}

/// Per-thread SSCA2 workload.
pub struct Ssca2 {
    shared: Ssca2Shared,
    src: usize,
    dst: usize,
}

impl Ssca2 {
    /// Build the per-thread workload.
    pub fn new(shared: Ssca2Shared) -> Self {
        Self {
            shared,
            src: 0,
            dst: 1,
        }
    }
}

impl Workload for Ssca2 {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        self.src = rng.gen_range(0..self.shared.params.vertices);
        self.dst = rng.gen_range(0..self.shared.params.vertices);
    }

    fn site(&self) -> u32 {
        // Deliberately single-site: every transaction appends one edge to one
        // vertex's adjacency row — a few cache lines regardless of the
        // sampled vertices, so one abort profile covers them all.
        0
    }

    fn segment<C: TxCtx>(&mut self, _seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let base = s.vertex_addr(self.src);
        let degree = ctx.read(base)?;
        if degree < s.params.max_degree as u64 {
            ctx.write(base + 1 + degree as Addr, self.dst as u64 + 1)?;
            ctx.write(base, degree + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmExecutor};
    use rand::SeedableRng;

    #[test]
    fn edges_inserted_exactly_once() {
        let p = Ssca2Params {
            vertices: 512,
            max_degree: 7,
        };
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Ssca2::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64 + 5);
                    for _ in 0..200 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        // Every committed insert bumped exactly one degree; degrees cap at 7, and
        // the adjacency slots below each degree are populated.
        let total = s.total_edges_nt(&rt);
        assert!(total > 0 && total <= 800);
        for v in 0..512 {
            let d = rt.system().nt_read(s.vertex_addr(v));
            assert!(d <= 7);
            for i in 0..d {
                assert_ne!(
                    rt.system().nt_read(s.vertex_addr(v) + 1 + i as Addr),
                    0,
                    "slot below degree must be filled"
                );
            }
        }
    }

    #[test]
    fn tiny_txs_commit_in_hardware() {
        let p = Ssca2Params::default_scale();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Ssca2::new(s);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }
}
