//! Kmeans profile (Fig. 5(a) low contention, 5(b) high contention).
//!
//! Each transaction assigns one point to its nearest cluster: it reads the point
//! (read-only shared data), reads the current centre coordinates, computes the
//! real L1 distance to every centre, and updates the accumulators of the argmin
//! centre (`count`, then one sum per dimension). Transactions are short and fit
//! HTM comfortably; aborts are real data conflicts on the centre accumulators.
//! Contention is controlled by the number of clusters — fewer clusters, hotter
//! centres. (As in STAMP, centre *coordinates* are only rewritten between
//! iterations, outside the measured transactions; here they are a read-only region
//! initialised once.)

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Dimensions per point (STAMP kmeans uses low-dimensional vectors).
pub const DIMS: usize = 4;

/// Configuration of the kmeans kernel.
#[derive(Clone, Copy, Debug)]
pub struct KmeansParams {
    /// Number of points in the shared read-only dataset.
    pub points: usize,
    /// Number of cluster centres (contention knob).
    pub clusters: usize,
    /// Work units for the distance computation (scales with clusters).
    pub work: u64,
}

impl KmeansParams {
    /// Fig. 5(a): low contention — many clusters.
    pub fn low_contention() -> Self {
        Self {
            points: 4096,
            clusters: 40,
            work: 80,
        }
    }

    /// Fig. 5(b): high contention — few clusters.
    pub fn high_contention() -> Self {
        Self {
            points: 4096,
            clusters: 4,
            work: 40,
        }
    }

    /// Words of application memory: points, per-cluster centre coordinates, then
    /// per-cluster accumulator lines.
    pub fn app_words(&self) -> usize {
        self.points * DIMS + self.clusters * DIMS + self.clusters * 8
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct KmeansShared {
    points: Addr,
    /// Read-only centre coordinates (`clusters x DIMS`).
    coords: Addr,
    /// Per-cluster accumulator lines (`[count, sum0..sum3]`).
    centers: Addr,
    params: KmeansParams,
}

impl KmeansShared {
    /// Accumulator line of cluster `c`: `[count, sum0, sum1, sum2, sum3]`.
    fn center_addr(&self, c: usize) -> Addr {
        self.centers + (c * 8) as Addr
    }

    /// Non-transactional sum of all cluster counts (verification).
    pub fn total_assignments_nt(&self, rt: &TmRuntime) -> u64 {
        (0..self.params.clusters)
            .map(|c| rt.system().nt_read(self.center_addr(c)))
            .sum()
    }
}

/// Initialise: deterministic pseudo-random points.
pub fn init(rt: &TmRuntime, params: &KmeansParams) -> KmeansShared {
    let shared = KmeansShared {
        points: rt.app(0),
        coords: rt.app(params.points * DIMS),
        centers: rt.app(params.points * DIMS + params.clusters * DIMS),
        params: *params,
    };
    let heap = rt.system().heap();
    let mut x = 0x12345u64;
    let mut next = || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 40
    };
    for i in 0..params.points * DIMS {
        heap.store(shared.points + i as Addr, next());
    }
    for i in 0..params.clusters * DIMS {
        heap.store(shared.coords + i as Addr, next());
    }
    shared
}

/// Per-thread kmeans workload.
pub struct Kmeans {
    shared: KmeansShared,
    point: usize,
}

impl Kmeans {
    /// Build the per-thread workload.
    pub fn new(shared: KmeansShared) -> Self {
        Self { shared, point: 0 }
    }
}

impl Workload for Kmeans {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        self.point = rng.gen_range(0..self.shared.params.points);
    }

    fn site(&self) -> u32 {
        // Deliberately single-site: every transaction reassigns one point to
        // the nearest centroid — a fixed-footprint shape (DIMS reads, one
        // centroid update), so one abort profile covers them all.
        0
    }

    fn segment<C: TxCtx>(&mut self, _seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let p = &s.params;
        // Read the point.
        let mut point = [0u64; DIMS];
        for (d, c) in point.iter_mut().enumerate() {
            *c = ctx.read(s.points + (self.point * DIMS + d) as Addr)?;
        }
        // Real nearest-centre search: L1 distance against every centre's
        // coordinates (read-only shared data), plus the per-distance compute.
        ctx.work(p.work)?;
        let mut best = (u64::MAX, 0usize);
        for k in 0..p.clusters {
            let mut dist = 0u64;
            for (d, &pc) in point.iter().enumerate() {
                let cc = ctx.read(s.coords + (k * DIMS + d) as Addr)?;
                dist += pc.abs_diff(cc);
            }
            if dist < best.0 {
                best = (dist, k);
            }
        }
        let cluster = best.1;
        // Update the accumulators: count + per-dimension sums.
        let base = s.center_addr(cluster);
        let count = ctx.read(base)?;
        ctx.write(base, count + 1)?;
        for (d, &c) in point.iter().enumerate() {
            let a = base + 1 + d as Addr;
            let sum = ctx.read(a)?;
            ctx.write(a, sum.wrapping_add(c) & ((1 << 62) - 1))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmExecutor};
    use rand::SeedableRng;
    use tm_baselines::HtmGl;

    #[test]
    fn assignments_are_counted_exactly() {
        let p = KmeansParams::high_contention();
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Kmeans::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..100 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        assert_eq!(s.total_assignments_nt(&rt), 400);
    }

    #[test]
    fn fits_htm() {
        let p = KmeansParams::low_contention();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Kmeans::new(s);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }
}
