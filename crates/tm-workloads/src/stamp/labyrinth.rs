//! Labyrinth profile (Fig. 5(d) and Table 1): Lee-algorithm maze routing on a
//! shared grid.
//!
//! Routing transactions copy the **whole grid** during planning, as STAMP's
//! labyrinth does — and, as in STAMP, that copy is *non-transactional by design*
//! (racy reads, re-validated when the path is claimed). The router then runs the
//! Lee algorithm on the private copy: a breadth-first wavefront expansion from the
//! source around occupied cells, followed by a backtrace that yields a shortest
//! free path to the destination. The consequences differ per execution mode,
//! exactly as the paper describes:
//!
//! * Inside a plain hardware transaction (HTM-GL, or Part-HTM's fast path) the
//!   grid copy is monitored wholesale, so it blows the space/time budgets — the
//!   ">50 % of Labyrinth's transactions exceed the size and time allowed" of §2.
//! * On Part-HTM's partitioned path, the copy and the expansion run as
//!   *non-transactional code inside the software framework* (§4), and only the
//!   claim phase — which re-reads every path cell — executes as sub-HTM
//!   transactions. Conflicts become rare, matching §7.2 ("large and long, but they
//!   also rarely conflict with each other").
//!
//! Interleaved with the routing transactions are the application's small
//! bookkeeping transactions (work-queue and statistics updates), which always fit
//! HTM. The 50/50 mix reproduces Table 1: under HTM-GL about half the commits take
//! the global lock and >80 % of aborts are resource failures; under Part-HTM the
//! same transactions split ~50 % fast-path HTM and ~50 % partitioned-path ("SW")
//! commits.

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Configuration of the labyrinth kernel.
#[derive(Clone, Copy, Debug)]
pub struct LabyrinthParams {
    /// Grid side (cells); the grid is `side x side` words.
    pub side: usize,
    /// Percent of transactions that are routing transactions (the rest are small
    /// bookkeeping transactions).
    pub route_pct: u32,
    /// Cells read per planning sub-HTM segment.
    pub cells_per_segment: usize,
    /// Route-computation work units per 64 copied cells (the Lee expansion's cost
    /// as charged to the transactional time budget; the expansion itself also runs
    /// for real on the private copy).
    pub work_per_64_cells: u64,
}

impl LabyrinthParams {
    /// The evaluation's configuration, scaled so the grid copy (side² cells) exceeds
    /// the default simulated read budget (4096 lines = 32 k words) and brushes the
    /// quantum, as in the paper's "more than 50% of Labyrinth's transactions exceed
    /// the size and time allowed" (§2).
    pub fn default_scale() -> Self {
        Self {
            side: 224,
            route_pct: 50,
            cells_per_segment: 2048,
            work_per_64_cells: 12,
        }
    }

    /// Words of application memory: the grid plus a statistics line.
    pub fn app_words(&self) -> usize {
        self.side * self.side + 8
    }

    /// Paths longer than this are treated as unroutable (bounds the number of
    /// static claim segments; Lee paths between uniform endpoints are almost always
    /// far shorter).
    pub fn max_path(&self) -> usize {
        4 * self.side
    }
}

/// Shared layout: the grid (row-major) plus a bookkeeping line.
#[derive(Clone, Copy, Debug)]
pub struct LabyrinthShared {
    grid: Addr,
    stats: Addr,
    params: LabyrinthParams,
}

impl LabyrinthShared {
    #[inline]
    fn cell(&self, r: usize, c: usize) -> Addr {
        self.grid + (r * self.params.side + c) as Addr
    }

    /// Number of occupied cells (verification).
    pub fn occupied_nt(&self, rt: &TmRuntime) -> usize {
        (0..self.params.side * self.params.side)
            .filter(|&i| rt.system().nt_read(self.grid + i as Addr) != 0)
            .count()
    }

    /// Committed bookkeeping updates (verification).
    pub fn bookkeeping_nt(&self, rt: &TmRuntime) -> u64 {
        rt.system().nt_read(self.stats)
    }
}

/// Initialise (empty grid).
pub fn init(rt: &TmRuntime, params: &LabyrinthParams) -> LabyrinthShared {
    LabyrinthShared {
        grid: rt.app(0),
        stats: rt.app(params.side * params.side),
        params: *params,
    }
}

/// Per-thread labyrinth workload with reusable Lee-router scratch buffers.
pub struct Labyrinth {
    shared: LabyrinthShared,
    src: (usize, usize),
    dst: (usize, usize),
    /// False = small bookkeeping transaction, true = grid-copying routing
    /// transaction.
    routing: bool,
    /// Private snapshot of the grid, filled during the planning segments.
    grid_copy: Vec<u64>,
    /// Lee backtrace parents (cell index + 1; 0 = unvisited).
    parent: Vec<u32>,
    /// Wavefront queue, reused across transactions.
    frontier: VecDeque<u32>,
    /// The computed route, source to destination inclusive.
    path: Vec<(usize, usize)>,
    tag: u64,
    /// Whether the in-flight execution claimed its route (promoted to `routed` only
    /// when the transaction commits).
    routed_this: bool,
    /// Set when no route exists or a claim raced: remaining claim segments no-op.
    claim_failed: bool,
    /// Successfully routed connections (committed).
    pub routed: u64,
}

impl Labyrinth {
    /// Build the per-thread workload; `tag` marks claimed cells (non-zero).
    pub fn new(shared: LabyrinthShared, tag: u64) -> Self {
        let cells = shared.params.side * shared.params.side;
        Self {
            shared,
            src: (0, 0),
            dst: (1, 1),
            routing: true,
            grid_copy: vec![0; cells],
            parent: vec![0; cells],
            frontier: VecDeque::new(),
            path: Vec::new(),
            tag: tag.max(1),
            routed_this: false,
            claim_failed: false,
            routed: 0,
        }
    }

    fn grid_cells(&self) -> usize {
        self.shared.params.side * self.shared.params.side
    }

    fn planning_segments(&self) -> usize {
        self.grid_cells()
            .div_ceil(self.shared.params.cells_per_segment)
    }

    /// Cells claimed per claim sub-transaction. Lee paths wander across rows, so
    /// their lines concentrate in few L1 sets; small chunks keep each claim
    /// sub-transaction within associativity.
    const CLAIM_CHUNK: usize = 48;

    fn claim_segments(&self) -> usize {
        self.shared.params.max_path().div_ceil(Self::CLAIM_CHUNK)
    }

    /// The Lee algorithm on the private copy: BFS wavefront from `src` over free
    /// cells, then backtrace from `dst`. Fills `self.path` (empty = unroutable).
    fn lee_route(&mut self) {
        let side = self.shared.params.side;
        let idx = |r: usize, c: usize| r * side + c;
        self.parent.fill(0);
        self.frontier.clear();
        self.path.clear();

        let (sr, sc) = self.src;
        let (dr, dc) = self.dst;
        let start = idx(sr, sc) as u32;
        let goal = idx(dr, dc) as u32;
        if start == goal {
            self.path.push(self.src);
            return;
        }
        self.parent[start as usize] = start + 1; // visited marker (self-parent)
        self.frontier.push_back(start);

        'bfs: while let Some(cur) = self.frontier.pop_front() {
            let (r, c) = ((cur as usize) / side, (cur as usize) % side);
            let neighbours = [
                (r.wrapping_sub(1), c),
                (r + 1, c),
                (r, c.wrapping_sub(1)),
                (r, c + 1),
            ];
            for (nr, nc) in neighbours {
                if nr >= side || nc >= side {
                    continue;
                }
                let n = idx(nr, nc) as u32;
                if self.parent[n as usize] != 0 {
                    continue; // visited
                }
                // Occupied cells block the wavefront; the destination is always
                // enterable (it is ours to claim).
                if n != goal && self.grid_copy[n as usize] != 0 {
                    continue;
                }
                self.parent[n as usize] = cur + 1;
                if n == goal {
                    break 'bfs;
                }
                self.frontier.push_back(n);
            }
        }

        if self.parent[goal as usize] == 0 {
            return; // unreachable
        }
        // Backtrace goal -> start, then reverse.
        let mut cur = goal;
        loop {
            self.path
                .push(((cur as usize) / side, (cur as usize) % side));
            let p = self.parent[cur as usize] - 1;
            if p == cur {
                break; // reached the self-parented start
            }
            cur = p;
        }
        self.path.reverse();
        if self.path.len() > self.shared.params.max_path() {
            self.path.clear(); // treated as unroutable (bounds claim segments)
        }
    }
}

impl Workload for Labyrinth {
    /// Claim-phase cursor: (claim_failed, routed_this), rolled back on segment
    /// retry.
    type Snap = (bool, bool);

    fn sample(&mut self, rng: &mut SmallRng) {
        let side = self.shared.params.side;
        self.routing = rng.gen_range(0..100) < self.shared.params.route_pct;
        self.src = (rng.gen_range(0..side), rng.gen_range(0..side));
        self.dst = (rng.gen_range(0..side), rng.gen_range(0..side));
    }

    fn segments(&self) -> usize {
        if self.routing {
            // Planning (grid copy) + route computation + the claim segments.
            self.planning_segments() + 1 + self.claim_segments()
        } else {
            1
        }
    }

    fn software_segment(&self, seg: usize) -> bool {
        // Planning (the racy grid copy) and the Lee expansion are non-transactional
        // code; only the claim segments are transactional.
        self.routing && seg <= self.planning_segments()
    }

    fn profiled_resource_limited(&self) -> Option<bool> {
        // The static profiler knows a grid copy can never fit best-effort HTM and a
        // bookkeeping update always does.
        Some(self.routing)
    }

    fn site(&self) -> u32 {
        // Routing (grid-copy) and bookkeeping transactions are different sites:
        // blended into one abort profile, the grid copies' resource failures
        // would demote the bookkeeping updates off the fast path too.
        u32::from(self.routing)
    }

    fn reset(&mut self) {
        self.routed_this = false;
        self.claim_failed = false;
    }

    fn snapshot(&self) -> (bool, bool) {
        (self.claim_failed, self.routed_this)
    }

    fn restore(&mut self, s: (bool, bool)) {
        (self.claim_failed, self.routed_this) = s;
    }

    fn after_commit(&mut self) {
        if self.routed_this {
            self.routed += 1;
        }
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        if !self.routing {
            // Bookkeeping transaction: bump the shared statistics line — small,
            // always HTM-friendly (the other half of labyrinth's transaction mix).
            let v = ctx.read(s.stats)?;
            ctx.write(s.stats, v + 1)?;
            let slot = s.stats + 1 + (self.src.0 % 6) as Addr;
            let w = ctx.read(slot)?;
            return ctx.write(slot, w + 1);
        }
        let plan = self.planning_segments();
        if seg < plan {
            // Planning: copy a chunk of the grid (the phase that makes labyrinth
            // transactions huge).
            let per = s.params.cells_per_segment;
            let start = seg * per;
            let end = (start + per).min(self.grid_cells());
            for i in start..end {
                self.grid_copy[i] = ctx.read(s.grid + i as Addr)?;
            }
            return Ok(());
        }
        if seg == plan {
            // Route computation on the private copy: the Lee expansion runs for
            // real, and its cost is charged to the (non-transactional) time budget.
            self.lee_route();
            let units = (self.grid_cells() as u64 / 64).max(1) * s.params.work_per_64_cells;
            return ctx.nt_work(units);
        }
        // Claim phase, chunked: re-validate and write the computed path.
        if self.claim_failed || self.path.is_empty() {
            self.claim_failed = true;
            return Ok(());
        }
        let chunk = seg - plan - 1;
        let start = chunk * Self::CLAIM_CHUNK;
        let end = (start + Self::CLAIM_CHUNK).min(self.path.len());
        for &(r, c) in self.path.get(start..end).unwrap_or(&[]) {
            // Re-read so a cell claimed since planning fails the route instead of
            // silently double-claiming (the racy copy's re-validation).
            let v = ctx.read(s.cell(r, c))?;
            if v != 0 && (r, c) != self.src && (r, c) != self.dst {
                self.claim_failed = true;
                return Ok(()); // lost the race; commit without routing
            }
            ctx.write(s.cell(r, c), self.tag)?;
        }
        if end == self.path.len() {
            self.routed_this = true;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmConfig, TmExecutor};
    use rand::SeedableRng;

    fn small_params() -> LabyrinthParams {
        LabyrinthParams {
            side: 48,
            route_pct: 50,
            cells_per_segment: 256,
            work_per_64_cells: 4,
        }
    }

    #[test]
    fn lee_router_finds_shortest_path_on_empty_grid() {
        let p = small_params();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut w = Labyrinth::new(s, 1);
        w.src = (3, 5);
        w.dst = (10, 20);
        w.grid_copy.fill(0);
        w.lee_route();
        // Shortest Manhattan path: |dr| + |dc| + 1 cells.
        assert_eq!(w.path.len(), 7 + 15 + 1);
        assert_eq!(w.path.first(), Some(&(3, 5)));
        assert_eq!(w.path.last(), Some(&(10, 20)));
        // Each consecutive pair is 4-adjacent.
        for pair in w.path.windows(2) {
            let d = pair[0].0.abs_diff(pair[1].0) + pair[0].1.abs_diff(pair[1].1);
            assert_eq!(d, 1, "non-adjacent step {pair:?}");
        }
    }

    #[test]
    fn lee_router_detours_around_obstacles() {
        let p = small_params();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut w = Labyrinth::new(s, 1);
        w.src = (10, 0);
        w.dst = (10, 20);
        w.grid_copy.fill(0);
        // A wall across column 10 except row 40.
        for r in 0..48 {
            if r != 40 {
                w.grid_copy[r * 48 + 10] = 9;
            }
        }
        w.lee_route();
        assert!(!w.path.is_empty(), "a detour exists through (40, 10)");
        assert!(w.path.contains(&(40, 10)), "must pass the only gap");
        assert!(w
            .path
            .iter()
            .all(|&(r, c)| { (r, c) == (40, 10) || c != 10 || w.grid_copy[r * 48 + c] == 0 }));
    }

    #[test]
    fn lee_router_reports_unroutable() {
        let p = small_params();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut w = Labyrinth::new(s, 1);
        w.src = (0, 0);
        w.dst = (47, 47);
        w.grid_copy.fill(0);
        // A full wall with no gaps.
        for r in 0..48 {
            w.grid_copy[r * 48 + 24] = 9;
        }
        w.lee_route();
        assert!(w.path.is_empty());
    }

    #[test]
    fn routes_claim_contiguous_paths() {
        let p = small_params();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Labyrinth::new(s, 7);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            w.sample(&mut rng);
            e.execute(&mut w);
        }
        assert!(w.routed > 0, "some routes must succeed on an empty grid");
        assert!(s.occupied_nt(&rt) > 0);
    }

    #[test]
    fn routing_txs_take_partitioned_path() {
        let p = LabyrinthParams {
            side: 96,
            route_pct: 100,
            cells_per_segment: 512,
            work_per_64_cells: 4,
        };
        // Small read budget so the grid copy cannot fit one hardware tx.
        let htm = htm_sim::HtmConfig {
            read_lines_max: 256,
            ..htm_sim::HtmConfig::default()
        };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Labyrinth::new(s, 3);
        w.routing = true;
        w.src = (0, 0);
        w.dst = (95, 95);
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        assert_eq!(w.routed, 1);
        // The claimed path length equals the Manhattan distance + 1 (empty grid).
        assert_eq!(s.occupied_nt(&rt), 95 + 95 + 1);
    }

    #[test]
    fn bookkeeping_txs_stay_on_fast_path() {
        let p = LabyrinthParams {
            side: 96,
            route_pct: 0,
            cells_per_segment: 512,
            work_per_64_cells: 4,
        };
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Labyrinth::new(s, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            w.sample(&mut rng);
            assert!(!w.routing);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
        assert_eq!(s.bookkeeping_nt(&rt), 20);
    }

    #[test]
    fn concurrent_routing_never_overlaps_paths() {
        let p = small_params();
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Labyrinth::new(s, t as u64 + 1);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..15 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        // Every claimed cell carries exactly one owner tag — overlapping claims
        // would have required two transactions to both see the cell free.
        let occupied = s.occupied_nt(&rt);
        assert!(occupied > 0);
        for i in 0..p.side * p.side {
            let v = rt.system().nt_read(rt.app(i));
            assert!(v <= 4, "cell {i} holds invalid tag {v}");
        }
    }
}
