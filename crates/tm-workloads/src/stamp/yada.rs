//! Yada profile (Fig. 5(h)): Delaunay mesh refinement — transactions that are
//! simultaneously **long, large and highly contended**.
//!
//! Each transaction picks a "bad triangle" (a random mesh region), reads its cavity
//! (a contiguous block of the mesh array), computes the re-triangulation (heavy
//! work), rewrites most of the cavity and bumps the shared work counter. Cavities
//! overlap often, so conflicts are frequent; the biggest cavities exceed the HTM
//! time budget. The paper's Fig. 5(h) shows every protocol *below* sequential
//! execution at higher thread counts — the contention dominates — with Part-HTM
//! degrading least.

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the yada kernel.
#[derive(Clone, Copy, Debug)]
pub struct YadaParams {
    /// Mesh size in words.
    pub mesh_words: usize,
    /// Minimum cavity size in words.
    pub cavity_min: usize,
    /// Maximum cavity size in words.
    pub cavity_max: usize,
    /// Re-triangulation work units per cavity word.
    pub work_per_word: u64,
    /// Fraction (percent) of cavity words rewritten.
    pub rewrite_pct: u32,
    /// Cavity words per sub-HTM segment.
    pub words_per_segment: usize,
}

impl YadaParams {
    /// The evaluation's configuration (scaled).
    pub fn default_scale() -> Self {
        Self {
            mesh_words: 16 * 1024,
            cavity_min: 256,
            cavity_max: 2048,
            work_per_word: 24,
            rewrite_pct: 30,
            words_per_segment: 512,
        }
    }

    /// Words of application memory: the mesh plus the work counter line.
    pub fn app_words(&self) -> usize {
        self.mesh_words + 8
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct YadaShared {
    mesh: Addr,
    counter: Addr,
    params: YadaParams,
}

impl YadaShared {
    /// Committed refinements (verification).
    pub fn refinements_nt(&self, rt: &TmRuntime) -> u64 {
        rt.system().nt_read(self.counter)
    }
}

/// Initialise: deterministic mesh contents.
pub fn init(rt: &TmRuntime, params: &YadaParams) -> YadaShared {
    let shared = YadaShared {
        mesh: rt.app(0),
        counter: rt.app(params.mesh_words),
        params: *params,
    };
    let heap = rt.system().heap();
    for i in 0..params.mesh_words {
        heap.store(
            shared.mesh + i as Addr,
            (i as u64).wrapping_mul(2654435761) >> 3,
        );
    }
    shared
}

/// Per-thread yada workload.
pub struct Yada {
    shared: YadaShared,
    start: usize,
    len: usize,
}

impl Yada {
    /// Build the per-thread workload.
    pub fn new(shared: YadaShared) -> Self {
        Self {
            shared,
            start: 0,
            len: shared.params.cavity_min,
        }
    }

    fn cavity_segments(&self) -> usize {
        self.len.div_ceil(self.shared.params.words_per_segment)
    }
}

impl Workload for Yada {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        let p = &self.shared.params;
        self.len = rng.gen_range(p.cavity_min..=p.cavity_max);
        self.start = rng.gen_range(0..p.mesh_words - self.len);
    }

    fn segments(&self) -> usize {
        // Cavity segments + final bookkeeping segment.
        self.cavity_segments() + 1
    }

    fn site(&self) -> u32 {
        // Cavity-size class: log2 of the cavity's segment count, saturated at
        // 8 classes. A 2-segment cavity usually fits best-effort HTM whole; a
        // 32-segment one never does. One blended profile would let the large
        // cavities' capacity aborts demote the small ones off the fast path,
        // while per-exact-size profiles would never re-accumulate history
        // (sampled sizes rarely repeat).
        self.cavity_segments().max(1).ilog2().min(7)
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let p = &s.params;
        if seg < self.cavity_segments() {
            let lo = seg * p.words_per_segment;
            let hi = (lo + p.words_per_segment).min(self.len);
            let mut acc = 0u64;
            for i in lo..hi {
                let a = s.mesh + (self.start + i) as Addr;
                let v = ctx.read(a)?;
                acc = acc.rotate_left(5) ^ v;
                // Re-triangulation rewrites a deterministic subset of the cavity.
                if (v ^ i as u64) % 100 < u64::from(p.rewrite_pct) {
                    ctx.write(a, (acc ^ (i as u64) << 20) & ((1 << 62) - 1))?;
                }
            }
            ctx.work((hi - lo) as u64 * p.work_per_word)?;
            return Ok(());
        }
        // Bookkeeping: bump the shared refinement counter.
        let c = ctx.read(s.counter)?;
        ctx.write(s.counter, c + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmConfig, TmExecutor};
    use rand::SeedableRng;

    #[test]
    fn refinements_counted_exactly() {
        let p = YadaParams {
            mesh_words: 4096,
            cavity_min: 64,
            cavity_max: 256,
            work_per_word: 2,
            rewrite_pct: 30,
            words_per_segment: 128,
        };
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Yada::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..25 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        assert_eq!(s.refinements_nt(&rt), 100);
    }

    #[test]
    fn long_cavities_take_partitioned_path() {
        let p = YadaParams::default_scale();
        let htm = htm_sim::HtmConfig {
            quantum: 20_000,
            ..htm_sim::HtmConfig::default()
        };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, p.app_words());
        let s = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Yada::new(s);
        // Force a maximal cavity: 2048 words x 24 units/word >> 20k quantum,
        // while one 512-word segment (~13k units) fits.
        w.start = 0;
        w.len = p.cavity_max;
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
        assert_eq!(s.refinements_nt(&rt), 1);
    }
}
