//! Genome profile (Fig. 5(i)): gene sequencing — segment deduplication followed by
//! overlap matching.
//!
//! Three transaction kinds, mirroring STAMP's phases: *dedup* transactions insert a
//! DNA-segment hash into a large shared set (medium size, low contention — the
//! table is huge); *match* transactions probe a window of candidate segments
//! (read-mostly) and link the best overlap into a chain table; *build* transactions
//! walk an assembled chain and extend its end (the sequence-building phase). Low
//! contention, modest footprints: best-effort HTM handles nearly everything, the
//! paper's Fig. 5(i) has HTM-GL best with Part-HTM tracking closely.

use crate::structures::HeapHashMap;
use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the genome kernel.
#[derive(Clone, Copy, Debug)]
pub struct GenomeParams {
    /// Distinct DNA segments in the pool.
    pub segments_pool: usize,
    /// Candidate probes per match transaction.
    pub probes: usize,
    /// Percent of transactions that are dedup inserts.
    pub dedup_pct: u32,
    /// Percent of transactions that are chain-building walks (the rest are
    /// matches).
    pub build_pct: u32,
    /// Hashing work per probe.
    pub probe_work: u64,
}

impl GenomeParams {
    /// The evaluation's configuration (scaled).
    pub fn default_scale() -> Self {
        Self {
            segments_pool: 8192,
            probes: 12,
            dedup_pct: 40,
            build_pct: 20,
            probe_work: 20,
        }
    }

    fn set_slots(&self) -> usize {
        (self.segments_pool * 4).next_power_of_two()
    }

    /// Words of application memory: the segment set plus the chain table.
    pub fn app_words(&self) -> usize {
        HeapHashMap::words_needed(self.set_slots()) + self.segments_pool * 8
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct GenomeShared {
    set: HeapHashMap,
    chains: Addr,
    params: GenomeParams,
}

impl GenomeShared {
    /// Number of distinct segments inserted (verification).
    pub fn distinct_nt(&self, rt: &TmRuntime) -> usize {
        self.set.occupancy_nt(rt)
    }
}

/// Initialise (empty set and chains).
pub fn init(rt: &TmRuntime, params: &GenomeParams) -> GenomeShared {
    GenomeShared {
        set: HeapHashMap::new(rt.app(0), params.set_slots()),
        chains: rt.app(HeapHashMap::words_needed(params.set_slots())),
        params: *params,
    }
}

enum GenomeOp {
    Dedup { segment: u64 },
    Match { anchor: u64, window: u64 },
    Build { anchor: u64 },
}

/// Per-thread genome workload.
pub struct Genome {
    shared: GenomeShared,
    op: GenomeOp,
}

impl Genome {
    /// Build the per-thread workload.
    pub fn new(shared: GenomeShared) -> Self {
        Self {
            shared,
            op: GenomeOp::Dedup { segment: 0 },
        }
    }
}

impl Workload for Genome {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        let p = &self.shared.params;
        let roll = rng.gen_range(0..100);
        self.op = if roll < p.dedup_pct {
            GenomeOp::Dedup {
                segment: rng.gen_range(0..p.segments_pool as u64),
            }
        } else if roll < p.dedup_pct + p.build_pct {
            GenomeOp::Build {
                anchor: rng.gen_range(0..p.segments_pool as u64),
            }
        } else {
            GenomeOp::Match {
                anchor: rng.gen_range(0..p.segments_pool as u64),
                window: rng.gen(),
            }
        };
    }

    fn site(&self) -> u32 {
        // One abort profile per STAMP phase: dedup inserts are tiny, build
        // transactions walk and extend a chain (long, capacity-prone), match
        // windows sit in between. Blended, the builders' resource failures
        // would demote the dedup inserts off the fast path too.
        match self.op {
            GenomeOp::Dedup { .. } => 0,
            GenomeOp::Match { .. } => 1,
            GenomeOp::Build { .. } => 2,
        }
    }

    fn segment<C: TxCtx>(&mut self, _seg: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let p = &s.params;
        match self.op {
            GenomeOp::Dedup { segment } => {
                // Insert-if-absent into the big shared set.
                if s.set.get(ctx, segment)?.is_none() {
                    s.set.insert(ctx, segment, 1)?;
                }
                Ok(())
            }
            GenomeOp::Build { anchor } => {
                // Sequence building: follow the assembled chain from the anchor
                // (read-mostly pointer walk) and stamp the end with the walk length.
                let pool = p.segments_pool as u64;
                let mut cur = anchor % pool;
                let mut hops = 0u64;
                while hops < 16 {
                    let link = ctx.read(s.chains + ((cur as usize) * 8) as Addr)?;
                    if link == 0 {
                        break;
                    }
                    cur = (link - 1) % pool;
                    hops += 1;
                }
                ctx.write(s.chains + ((cur as usize) * 8 + 1) as Addr, hops + 1)?;
                Ok(())
            }
            GenomeOp::Match { anchor, window } => {
                // Probe candidate overlaps (read-mostly) and link the best one.
                let mut best = 0u64;
                for i in 0..p.probes as u64 {
                    let cand = (anchor + (window >> (i % 32)) + i * 37) % p.segments_pool as u64;
                    ctx.work(p.probe_work)?;
                    if s.set.get(ctx, cand)?.is_some() {
                        best = cand + 1;
                    }
                }
                if best != 0 {
                    let link = s.chains + ((anchor as usize % p.segments_pool) * 8) as Addr;
                    ctx.write(link, best)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmExecutor};
    use rand::SeedableRng;
    use tm_baselines::HtmGl;

    #[test]
    fn dedup_inserts_each_segment_once() {
        let p = GenomeParams {
            segments_pool: 128,
            probes: 4,
            dedup_pct: 100,
            build_pct: 0,
            probe_work: 1,
        };
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Genome::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..200 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        // 800 inserts over 128 keys: every key inserted at most once.
        assert!(s.distinct_nt(&rt) <= 128);
        assert!(
            s.distinct_nt(&rt) > 100,
            "most keys should have been touched"
        );
    }

    #[test]
    fn matching_fits_htm() {
        let p = GenomeParams::default_scale();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Genome::new(s);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }
}
