//! Kernels reproducing the transactional *profiles* of the STAMP applications used
//! in the paper's evaluation (Fig. 5 and Table 1).
//!
//! STAMP's role in the evaluation is to exercise distinct transaction profiles —
//! footprint, duration, contention, read/write mix — not its application logic, so
//! each kernel here reproduces the profile that drives the paper's analysis:
//!
//! | Kernel | Profile (per the paper §7.2) |
//! |---|---|
//! | [`kmeans`] | short transactions, real data conflicts (low/high contention via cluster count) |
//! | [`ssca2`] | tiny transactions, very low contention |
//! | [`labyrinth`] | mixed: >50 % of transactions exceed HTM space/time limits, but rarely conflict (Table 1) |
//! | [`intruder`] | short/medium transactions, high structural contention (shared queue) |
//! | [`vacation`] | medium table-lookup transactions (low/high contention via key range) |
//! | [`yada`] | long *and* large transactions with high contention |
//! | [`genome`] | medium deduplication/matching transactions, low contention |
//!
//! See DESIGN.md ("Substitutions") for why profile-equivalent kernels preserve the
//! figures' shapes.

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod ssca2;
pub mod vacation;
pub mod yada;
