//! Vacation profile (Fig. 5(f) low contention, 5(g) high contention): a travel
//! reservation system with STAMP's three transaction types.
//!
//! * **Make reservation** (the bulk): for each requested resource kind (car / room /
//!   flight) query a handful of candidate resources, pick the best-stocked one,
//!   decrement it, and record it on the customer.
//! * **Delete customer**: release every resource the customer holds back into the
//!   tables and clear the record.
//! * **Update tables**: an administrative transaction minting extra availability
//!   for a few resources (tracked against a global minted counter so the
//!   conservation invariant stays checkable).
//!
//! Medium-sized table-lookup transactions; contention is controlled by the fraction
//! of the resource table each query draws from.

use crate::structures::HeapHashMap;
use htm_sim::abort::TxResult;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of resource kinds (car, room, flight).
pub const KINDS: usize = 3;

/// Configuration of the vacation kernel.
#[derive(Clone, Copy, Debug)]
pub struct VacationParams {
    /// Resources per kind.
    pub resources: usize,
    /// Customers.
    pub customers: usize,
    /// Candidate resources examined per reservation.
    pub queries: usize,
    /// Fraction (percent) of the resource table queries draw from — 100 in the
    /// low-contention run, a narrow slice in the high-contention run (STAMP's -q/-u
    /// knobs).
    pub query_range_pct: u32,
    /// Initial availability per resource.
    pub initial_avail: u64,
    /// Percent of transactions that are reservations (STAMP's -u knob); the rest
    /// split evenly between delete-customer and update-tables.
    pub reserve_pct: u32,
}

impl VacationParams {
    /// Fig. 5(f): low contention.
    pub fn low_contention() -> Self {
        Self {
            resources: 4096,
            customers: 4096,
            queries: 4,
            query_range_pct: 100,
            initial_avail: 1 << 20,
            reserve_pct: 90,
        }
    }

    /// Fig. 5(g): high contention.
    pub fn high_contention() -> Self {
        Self {
            resources: 4096,
            customers: 4096,
            queries: 8,
            query_range_pct: 2,
            initial_avail: 1 << 20,
            reserve_pct: 60,
        }
    }

    fn table_slots(&self) -> usize {
        (self.resources * 4).next_power_of_two()
    }

    /// Words of application memory: three resource tables + customer records + the
    /// minted-availability counter line.
    pub fn app_words(&self) -> usize {
        KINDS * HeapHashMap::words_needed(self.table_slots()) + self.customers * 8 + 8
    }
}

/// Shared layout.
#[derive(Clone, Copy, Debug)]
pub struct VacationShared {
    tables: [HeapHashMap; KINDS],
    customers: htm_sim::Addr,
    /// Availability minted by update-tables transactions (for conservation checks).
    minted: htm_sim::Addr,
    params: VacationParams,
}

impl VacationShared {
    /// Total availability across one kind's table (verification: reservations
    /// conserve availability + customer bookings).
    pub fn total_avail_nt(&self, rt: &TmRuntime, kind: usize) -> u64 {
        let th = part_htm_core::TmThread::new(rt, 0);
        let mut ctx = part_htm_core::ctx::SlowCtx {
            th: &th.hw,
            mask_values: false,
        };
        (0..self.params.resources as u64)
            .map(|r| self.tables[kind].get(&mut ctx, r).unwrap().unwrap_or(0))
            .sum()
    }

    /// Total bookings recorded on customer lines (verification).
    pub fn total_bookings_nt(&self, rt: &TmRuntime) -> u64 {
        (0..self.params.customers)
            .map(|c| {
                rt.system()
                    .nt_read(self.customers + (c * 8) as htm_sim::Addr)
            })
            .sum()
    }

    /// Availability minted by update-tables transactions (verification).
    pub fn total_minted_nt(&self, rt: &TmRuntime) -> u64 {
        rt.system().nt_read(self.minted)
    }
}

/// Initialise: fill the three tables with full availability.
pub fn init(rt: &TmRuntime, params: &VacationParams) -> VacationShared {
    let tw = HeapHashMap::words_needed(params.table_slots());
    let tables = [
        HeapHashMap::new(rt.app(0), params.table_slots()),
        HeapHashMap::new(rt.app(tw), params.table_slots()),
        HeapHashMap::new(rt.app(2 * tw), params.table_slots()),
    ];
    let shared = VacationShared {
        tables,
        customers: rt.app(3 * tw),
        minted: rt.app(3 * tw + params.customers * 8),
        params: *params,
    };
    let th = part_htm_core::TmThread::new(rt, 0);
    let mut ctx = part_htm_core::ctx::SlowCtx {
        th: &th.hw,
        mask_values: false,
    };
    for t in &shared.tables {
        for r in 0..params.resources as u64 {
            t.insert(&mut ctx, r, params.initial_avail).unwrap();
        }
    }
    shared
}

/// The sampled transaction type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VacOp {
    Reserve,
    DeleteCustomer,
    UpdateTables,
}

/// Per-thread vacation workload.
pub struct Vacation {
    shared: VacationShared,
    op: VacOp,
    customer: usize,
    seed: u64,
}

impl Vacation {
    /// Build the per-thread workload.
    pub fn new(shared: VacationShared) -> Self {
        Self {
            shared,
            op: VacOp::Reserve,
            customer: 0,
            seed: 0,
        }
    }

    #[inline]
    fn cust_addr(&self) -> htm_sim::Addr {
        self.shared.customers + (self.customer * 8) as htm_sim::Addr
    }

    /// One kind's reservation step: query candidates, decrement the best-stocked
    /// resource, record it on the customer (at most one held resource per kind; a
    /// kind already booked is skipped so delete-customer can release exactly what
    /// the record lists).
    fn reserve_kind<C: TxCtx>(&mut self, kind: usize, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let p = &s.params;
        let cust = self.cust_addr();
        if ctx.read(cust + 1 + kind as htm_sim::Addr)? != 0 {
            return Ok(()); // already holds this kind
        }
        let mut local = SmallRng::seed_from_u64(self.seed ^ (kind as u64) << 32);
        let range = ((p.resources as u64) * u64::from(p.query_range_pct) / 100).max(1);
        let base = local.gen_range(0..p.resources as u64 - range.min(p.resources as u64 - 1));
        let mut best: Option<(u64, u64)> = None;
        for _ in 0..p.queries {
            let r = base + local.gen_range(0..range);
            if let Some(avail) = s.tables[kind].get(ctx, r)? {
                if avail > 0 && best.map(|(_, a)| avail > a).unwrap_or(true) {
                    best = Some((r, avail));
                }
            }
        }
        if let Some((r, avail)) = best {
            s.tables[kind].insert(ctx, r, avail - 1)?;
            let booked = ctx.read(cust)?;
            ctx.write(cust, booked + 1)?;
            // Resource ids are stored +1 so 0 can mean "none held".
            ctx.write(cust + 1 + kind as htm_sim::Addr, r + 1)?;
        }
        Ok(())
    }

    /// Release everything the customer holds back into the tables and clear the
    /// record (STAMP's delete-customer).
    fn delete_customer<C: TxCtx>(&mut self, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let cust = self.cust_addr();
        for kind in 0..KINDS {
            let slot = cust + 1 + kind as htm_sim::Addr;
            let stored = ctx.read(slot)?;
            if stored != 0 {
                let r = stored - 1;
                s.tables[kind].update(ctx, r, 0, |v| v + 1)?;
                ctx.write(slot, 0)?;
                let booked = ctx.read(cust)?;
                ctx.write(cust, booked - 1)?;
            }
        }
        Ok(())
    }

    /// Administrative update: mint extra availability for a few resources of one
    /// kind, tracked in the global minted counter (STAMP's update-tables).
    fn update_tables<C: TxCtx>(&mut self, ctx: &mut C) -> TxResult<()> {
        let s = self.shared;
        let p = &s.params;
        let mut local = SmallRng::seed_from_u64(self.seed ^ 0xDEAD_BEEF);
        let kind = local.gen_range(0..KINDS);
        let mut minted = 0u64;
        for _ in 0..p.queries.min(4) {
            let r = local.gen_range(0..p.resources as u64);
            let add = local.gen_range(1..5);
            s.tables[kind].update(ctx, r, 0, |v| v + add)?;
            minted += add;
        }
        let m = ctx.read(s.minted)?;
        ctx.write(s.minted, m + minted)
    }
}

impl Workload for Vacation {
    type Snap = ();

    fn sample(&mut self, rng: &mut SmallRng) {
        let p = &self.shared.params;
        let roll: u32 = rng.gen_range(0..100);
        self.op = if roll < p.reserve_pct {
            VacOp::Reserve
        } else if roll < p.reserve_pct + (100 - p.reserve_pct) / 2 {
            VacOp::DeleteCustomer
        } else {
            VacOp::UpdateTables
        };
        self.customer = rng.gen_range(0..p.customers);
        self.seed = rng.gen();
    }

    fn segments(&self) -> usize {
        match self.op {
            VacOp::Reserve => KINDS,
            VacOp::DeleteCustomer | VacOp::UpdateTables => 1,
        }
    }

    fn site(&self) -> u32 {
        // One abort profile per transaction kind: reservations scan query
        // windows over three resource tables (read-heavy), delete-customer
        // touches one record plus its held resources (small), update-tables
        // sweeps a price range (write-heavy). Their HTM appetites differ, so
        // they must not share a blended profile.
        match self.op {
            VacOp::Reserve => 0,
            VacOp::DeleteCustomer => 1,
            VacOp::UpdateTables => 2,
        }
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        match self.op {
            VacOp::Reserve => self.reserve_kind(seg, ctx),
            VacOp::DeleteCustomer => self.delete_customer(ctx),
            VacOp::UpdateTables => self.update_tables(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmExecutor};
    use tm_baselines::HtmGl;

    fn small() -> VacationParams {
        VacationParams {
            reserve_pct: 70,
            resources: 128,
            customers: 64,
            queries: 4,
            query_range_pct: 100,
            initial_avail: 1000,
        }
    }

    #[test]
    fn reservations_conserve_availability() {
        let p = small();
        let rt = TmRuntime::with_defaults(4, p.app_words());
        let s = init(&rt, &p);
        let before: u64 = (0..KINDS).map(|k| s.total_avail_nt(&rt, k)).sum();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    let mut e = PartHtm::new(rt, t);
                    let mut w = Vacation::new(s);
                    let mut rng = SmallRng::seed_from_u64(t as u64);
                    for _ in 0..50 {
                        w.sample(&mut rng);
                        e.execute(&mut w);
                    }
                });
            }
        });
        let after: u64 = (0..KINDS).map(|k| s.total_avail_nt(&rt, k)).sum();
        let booked = s.total_bookings_nt(&rt);
        let minted = s.total_minted_nt(&rt);
        assert_eq!(
            before + minted,
            after + booked,
            "availability is conserved across reserve/delete/update transactions"
        );
        assert!(booked > 0 || minted > 0);
    }

    #[test]
    fn fits_htm() {
        let p = small();
        let rt = TmRuntime::with_defaults(1, p.app_words());
        let s = init(&rt, &p);
        let mut e = HtmGl::new(&rt, 0);
        let mut w = Vacation::new(s);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }
}
