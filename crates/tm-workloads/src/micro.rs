//! N-Reads-M-Writes (RSTM's configurable micro-benchmark; Fig. 3 of the paper).
//!
//! Each transaction reads `n_reads` elements from a source array and writes
//! `m_writes` elements of a destination array. Accesses are **disjoint** across
//! threads (each thread owns a slice of both arrays), so aborts come from resource
//! limits and metadata effects, not data contention — exactly what Fig. 3 isolates.
//!
//! The three configurations of the paper:
//!
//! * Fig. 3(a): `n = m = 10` — everything fits in HTM; measures instrumentation
//!   overhead on the fast path.
//! * Fig. 3(b): `n = ARRAY`, `m = 100` — space-limited transactions (the read set
//!   outgrows the transactional read budget as per-thread cache share shrinks).
//! * Fig. 3(c): `n = m = 100`, with floating-point computation between each
//!   read-modify-write — time-limited transactions (the quantum, not the footprint,
//!   kills them). Partitioned into 4 sub-transactions of 25 iterations, as in the
//!   paper.

use htm_sim::abort::TxResult;
use htm_sim::Addr;
use part_htm_core::{TmRuntime, TxCtx, Workload};
use rand::rngs::SmallRng;

/// Configuration of the N-Reads-M-Writes workload.
#[derive(Clone, Copy, Debug)]
pub struct NrmwParams {
    /// Elements per array (the paper uses 100 k).
    pub array_len: usize,
    /// Reads per transaction.
    pub n_reads: usize,
    /// Writes per transaction.
    pub m_writes: usize,
    /// Work units of computation between each read and its write (Fig. 3(c)'s
    /// floating-point block); 0 for the pure-memory variants.
    pub work_per_iter: u64,
    /// Number of static segments for the partitioned path.
    pub segments: usize,
    /// Stride in words between consecutive elements. 8 puts every element on its
    /// own cache line (the paper's arrays are element-per-line to avoid false
    /// sharing between threads).
    pub stride: usize,
}

impl NrmwParams {
    /// Fig. 3(a): N = M = 10.
    pub fn fig3a() -> Self {
        Self {
            array_len: 100_000,
            n_reads: 10,
            m_writes: 10,
            work_per_iter: 0,
            segments: 2,
            stride: 8,
        }
    }

    /// Fig. 3(b): N = array, M = 100 — scaled 10x down (10 k reads) so a simulated
    /// data point completes in reasonable wall-clock time; the capacity relationship
    /// (reads far exceed the write budget, and exceed the read budget once per-core
    /// cache share shrinks) is preserved by the harness's cache scaling.
    pub fn fig3b() -> Self {
        Self {
            array_len: 10_000,
            n_reads: 10_000,
            m_writes: 100,
            work_per_iter: 0,
            segments: 16,
            stride: 1,
        }
    }

    /// Fig. 3(c): 100 iterations of read-compute-write; 4 segments of 25 iterations
    /// ("each sub-HTM transaction executes 25 of those iterations").
    pub fn fig3c() -> Self {
        Self {
            array_len: 100_000,
            n_reads: 100,
            m_writes: 100,
            work_per_iter: 600,
            segments: 4,
            stride: 8,
        }
    }

    /// Words of application memory needed: two arrays.
    pub fn app_words(&self) -> usize {
        2 * self.array_len * self.stride
    }

    /// The same workload declared at finest segment granularity: 4x the
    /// segments (capped at one iteration/read per segment). Merging adjacent
    /// segments is always legal for this workload — segments are just even
    /// chunks of one loop — so the finer declaration gives the adaptive
    /// planner room to pick the grouping at runtime instead of trusting the
    /// hand count (`docs/adaptive-partitioner.md`).
    pub fn fine_grained(self) -> Self {
        Self {
            segments: (self.segments * 4).min(self.n_reads.max(1)),
            ..self
        }
    }
}

/// Shared layout: the two arrays.
#[derive(Clone, Copy, Debug)]
pub struct NrmwShared {
    src: Addr,
    dst: Addr,
    params: NrmwParams,
}

/// Initialise the arrays (source holds its index, destination zero).
pub fn init(rt: &TmRuntime, params: &NrmwParams) -> NrmwShared {
    let src = rt.app(0);
    let dst = rt.app(params.array_len * params.stride);
    for i in 0..params.array_len {
        rt.system()
            .heap()
            .store(src + (i * params.stride) as Addr, i as u64);
    }
    NrmwShared {
        src,
        dst,
        params: *params,
    }
}

/// Per-thread N-Reads-M-Writes workload over the thread's disjoint slice.
pub struct Nrmw {
    shared: NrmwShared,
    /// This thread's slice of the arrays: `[lo, lo + slice)` element indices.
    lo: usize,
    slice: usize,
    /// Rotating offset so successive transactions touch different elements.
    offset: usize,
}

impl Nrmw {
    /// Build the workload for `thread_id` of `threads`.
    pub fn new(shared: NrmwShared, thread_id: usize, threads: usize) -> Self {
        let slice = shared.params.array_len / threads;
        assert!(slice >= shared.params.n_reads.min(shared.params.array_len / threads));
        Self {
            shared,
            lo: thread_id * slice,
            slice,
            offset: 0,
        }
    }

    #[inline]
    fn src_addr(&self, elem: usize) -> Addr {
        self.shared.src + (elem * self.shared.params.stride) as Addr
    }

    #[inline]
    fn dst_addr(&self, elem: usize) -> Addr {
        self.shared.dst + (elem * self.shared.params.stride) as Addr
    }

    /// Element in this thread's disjoint slice (write targets; Fig. 3(c) iterates
    /// read-compute-write over these).
    #[inline]
    fn elem(&self, i: usize) -> usize {
        self.lo + (self.offset + i) % self.slice
    }

    /// Element anywhere in the shared source array (reads conflict with nothing:
    /// the destination slices are disjoint and the source is never written).
    #[inline]
    fn global_elem(&self, i: usize) -> usize {
        (self.lo + self.offset + i) % self.shared.params.array_len
    }
}

impl Workload for Nrmw {
    type Snap = ();

    fn sample(&mut self, _rng: &mut SmallRng) {
        // Disjoint by construction; just rotate the window.
        self.offset = (self.offset + 17) % self.slice;
    }

    fn segments(&self) -> usize {
        self.shared.params.segments
    }

    fn profiled_resource_limited(&self) -> Option<bool> {
        // The compute-heavy variant (Fig. 3(c)) statically exceeds the HTM quantum:
        // the profiler routes it to the partitioned path directly. The space-bound
        // variants depend on the deployment's cache share, so the executor adapts.
        if self.shared.params.work_per_iter > 0 {
            Some(true)
        } else {
            None
        }
    }

    fn site(&self) -> u32 {
        // One abort profile per transaction shape: the compute-heavy
        // (time-limited) shape and the pure-memory shape have different HTM
        // appetites.
        u32::from(self.shared.params.work_per_iter > 0)
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        let p = &self.shared.params;
        if p.work_per_iter > 0 {
            // Fig. 3(c) shape: `n` iterations of read-compute-write on the same
            // element index, split evenly across segments.
            let iters = p.n_reads;
            let per = iters.div_ceil(p.segments);
            let start = seg * per;
            let end = (start + per).min(iters);
            for i in start..end {
                let e = self.elem(i);
                let v = ctx.read(self.src_addr(e))?;
                ctx.work(p.work_per_iter)?;
                ctx.write(self.dst_addr(e), v + 1)?;
            }
            return Ok(());
        }
        // Pure-memory shape: reads (over the whole shared source array) spread over
        // the segments, writes (to the thread's disjoint destination slice) in the
        // last one.
        let per_reads = p.n_reads.div_ceil(p.segments);
        let rstart = seg * per_reads;
        let rend = (rstart + per_reads).min(p.n_reads);
        let mut acc = 0u64;
        for i in rstart..rend {
            acc = acc.wrapping_add(ctx.read(self.src_addr(self.global_elem(i)))?);
        }
        if seg == p.segments - 1 {
            for i in 0..p.m_writes {
                let e = self.elem(i);
                ctx.write(
                    self.dst_addr(e),
                    acc.wrapping_add(i as u64) & ((1 << 62) - 1),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use part_htm_core::{CommitPath, PartHtm, TmConfig, TmExecutor};
    use rand::SeedableRng;
    use tm_baselines::HtmGl;

    #[test]
    fn fig3a_fits_fast_path() {
        let p = NrmwParams {
            array_len: 1000,
            ..NrmwParams::fig3a()
        };
        let rt = TmRuntime::with_defaults(2, p.app_words());
        let shared = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Nrmw::new(shared, 0, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            w.sample(&mut rng);
            assert_eq!(e.execute(&mut w), CommitPath::Htm);
        }
    }

    #[test]
    fn fig3b_reads_exceed_budget_and_partition() {
        // Shrink to test scale: 800 reads with a 256-line read budget.
        let p = NrmwParams {
            array_len: 1600,
            n_reads: 800,
            m_writes: 16,
            work_per_iter: 0,
            segments: 8,
            stride: 1,
        };
        let htm = htm_sim::HtmConfig {
            read_lines_max: 64,
            ..htm_sim::HtmConfig::default()
        };
        let rt = TmRuntime::new(htm, TmConfig::default(), 2, p.app_words());
        let shared = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Nrmw::new(shared, 0, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        w.sample(&mut rng);
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);

        // HTM-GL can only serialise it.
        let mut g = HtmGl::new(&rt, 1);
        let mut w1 = Nrmw::new(shared, 1, 2);
        w1.sample(&mut rng);
        assert_eq!(g.execute(&mut w1), CommitPath::GlobalLock);
    }

    #[test]
    fn fig3c_time_limited_partitions() {
        let p = NrmwParams {
            array_len: 2000,
            ..NrmwParams::fig3c()
        };
        let htm = htm_sim::HtmConfig {
            quantum: 20_000,
            ..htm_sim::HtmConfig::default()
        };
        let rt = TmRuntime::new(htm, TmConfig::default(), 1, p.app_words());
        let shared = init(&rt, &p);
        let mut e = PartHtm::new(&rt, 0);
        let mut w = Nrmw::new(shared, 0, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        w.sample(&mut rng);
        // 100 iterations x ~600 units > 20k quantum; 25 per segment fits.
        assert_eq!(e.execute(&mut w), CommitPath::SubHtm);
    }

    #[test]
    fn disjoint_slices_do_not_overlap() {
        let p = NrmwParams {
            array_len: 1000,
            ..NrmwParams::fig3a()
        };
        let threads = 4;
        let mut seen = std::collections::HashSet::new();
        for t in 0..threads {
            let shared = NrmwShared {
                src: 0,
                dst: p.array_len as Addr,
                params: p,
            };
            let w = Nrmw::new(shared, t, threads);
            for i in 0..w.slice {
                assert!(seen.insert(w.lo + i), "element {} owned twice", w.lo + i);
            }
        }
    }
}
