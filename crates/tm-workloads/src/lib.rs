//! # tm-workloads — the workloads of the Part-HTM evaluation (§7)
//!
//! Every benchmark the paper evaluates, expressed against the protocol-agnostic
//! [`part_htm_core::Workload`] interface so the same transaction code runs on
//! Part-HTM, Part-HTM-O and every baseline:
//!
//! * [`micro`] — RSTM's *N-Reads-M-Writes* in the paper's three configurations
//!   (Fig. 3), including the compute-heavy variant whose transactions are
//!   time-limited rather than space-limited.
//! * [`list`] — the sorted linked list (Fig. 4): traversal-heavy transactions whose
//!   footprint scales with the list size.
//! * [`eigen`] — EigenBench (Fig. 6): the mixed long/short-transaction workload and
//!   the high-contention hot-array workload.
//! * [`stamp`] — kernels reproducing the transactional *profiles* of the STAMP
//!   applications (Fig. 5 and Table 1): footprint, duration, contention and
//!   read/write mix per application (see DESIGN.md for the substitution rationale).
//! * [`structures`] — shared-memory data structures (open-addressing hash map,
//!   bounded queue) used by the STAMP kernels, programmed against `TxCtx`.
//!
//! Each workload module follows the same pattern: a `*Params` struct describing the
//! configuration, `app_words(&params)` to size the heap region before the runtime is
//! built, `init(&runtime, &params)` to populate the initial state, and a per-thread
//! `Workload` implementation with the static partitioning the paper derives from
//! profiling (§5.3.1).

pub mod eigen;
pub mod list;
pub mod micro;
pub mod stamp;
pub mod structures;
