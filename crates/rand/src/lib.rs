//! Workspace-local, dependency-free stand-in for the subset of the crates.io
//! `rand` 0.8 API this repository uses.
//!
//! The build environment has no network access and no vendored registry, so the
//! real `rand` crate cannot be fetched (see `docs/offline.md`). This crate keeps
//! every `use rand::...` call site compiling unchanged by providing:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (the same family the real
//!   `rand`'s `SmallRng` uses on 64-bit targets), seeded via SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * the [`Rng`] extension methods the repo calls: `gen`, `gen_range`, `gen_bool`.
//!
//! Streams are deterministic for a given seed, which is all the simulator needs
//! (workload sampling, injected interrupts). The exact values differ from the
//! real `rand`, so seeds reproduce runs *within* this repository only.

/// Random number engines.
pub mod rngs {
    /// xoshiro256++ small fast PRNG. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed, expanded with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state; SplitMix64 only emits
        // it for astronomically unlikely seeds, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        SmallRng { s }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    #[doc(hidden)]
    fn sample(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut SmallRng) -> $t {
                rng.next_u64_impl() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64_impl() >> 63 != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    #[inline]
    fn sample(rng: &mut SmallRng) -> f64 {
        (rng.next_u64_impl() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> f32 {
        (rng.next_u64_impl() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    #[doc(hidden)]
    fn sample_range(rng: &mut SmallRng, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range(rng: &mut SmallRng, low: $t, high_excl: $t) -> $t {
                // `high_excl` may have wrapped past MAX for inclusive ranges
                // ending at MAX; the span arithmetic below stays correct.
                let span = (high_excl as i128).wrapping_sub(low as i128) as u64;
                debug_assert!(span != 0, "gen_range: empty range");
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per
                // draw, irrelevant for simulation workloads.
                let hi = ((rng.next_u64_impl() as u128 * span as u128) >> 64) as u64;
                (low as i128).wrapping_add(hi as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample_from(self, rng: &mut SmallRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut SmallRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_incl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t as Standard>::sample(rng);
                }
                <$t>::sample_range(rng, lo, hi.wrapping_add(1))
            }
        }
    )*};
}
impl_sample_range_incl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng {
    #[doc(hidden)]
    fn engine(&mut self) -> &mut SmallRng;

    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.engine())
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.engine())
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl Rng for SmallRng {
    #[inline]
    fn engine(&mut self) -> &mut SmallRng {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let x = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "rate off: {hits}/10000");
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
