//! Differential oracles for the server's two perf mechanisms.
//!
//! * **Batching transparency**: with a single worker, `batch_max = 8` must
//!   produce exactly the responses and final heap state of the unbatched
//!   `batch_max = 1` oracle — the per-shard-FIFO flush rules make group
//!   commit invisible to results (`docs/tm-server.md`).
//! * **Admission transparency**: shedding changes only the commit *path*
//!   (serialized slow path instead of speculative), never the outcome —
//!   controller-on must match controller-off responses exactly.
//! * **Conservation**: under multi-worker transfer-heavy load, the total
//!   balance is conserved whatever the batching/admission configuration.

use htm_sim::HtmConfig;
use part_htm_core::{PartHtm, PartHtmO, TmConfig, TmRuntime};
use proptest::prelude::*;
use tm_server::service::{gen_requests, run_server, ServeMode, ServeOpts, ServerSpec, ServerState};
use tm_server::{AdmissionSpec, TrafficMix};

const SPEC: ServerSpec = ServerSpec {
    shards: 8,
    slots_per_shard: 256,
    queue_cap: 16,
};

fn runtime(threads: usize) -> TmRuntime {
    // A small HTM quantum so wide batches actually hit capacity aborts and
    // exercise the planner's split/demote machinery, not just the fast path.
    let htm = HtmConfig {
        quantum: 160,
        ..HtmConfig::default()
    };
    TmRuntime::new(htm, TmConfig::default(), threads, SPEC.app_words())
}

/// Run one configuration to completion and return (sorted responses, state
/// checksum, served).
fn run_once(
    threads: usize,
    requests: &[tm_server::Request],
    batch_max: usize,
    admission: AdmissionSpec,
    opaque: bool,
) -> (Vec<(u64, u64)>, u64, u64) {
    let rt = runtime(threads);
    let state = ServerState::new(&rt, SPEC);
    state.preload(&rt, &preload_items());
    let opts = ServeOpts {
        batch_max,
        admission,
        collect_responses: true,
        ..ServeOpts::default()
    };
    let report = if opaque {
        run_server::<PartHtmO>(&rt, &state, threads, requests, &ServeMode::Wall, &opts)
    } else {
        run_server::<PartHtm>(&rt, &state, threads, requests, &ServeMode::Wall, &opts)
    };
    let mut responses = report.responses.clone();
    responses.sort_unstable();
    assert_eq!(
        report.served,
        requests.len() as u64,
        "open-loop server must serve every request"
    );
    (responses, state.kv_total_nt(&rt), report.served)
}

/// Initial balances so transfers have funds to move.
fn preload_items() -> Vec<(u32, u32, u64)> {
    (0..4u32)
        .flat_map(|tenant| (0..32u32).map(move |key| (tenant, key, 1000)))
        .collect()
}

/// Saturated arrivals: everything due at t=0, so the serve loop exercises
/// full batches and real backlog (deterministic — no timing dependence).
fn saturated(mix: &TrafficMix, n: usize, seed: u64) -> Vec<tm_server::Request> {
    gen_requests(mix, &vec![0u64; n], seed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Single worker: batched execution is response- and state-equivalent to
    /// the unbatched oracle, for both protocols.
    #[test]
    fn batched_matches_unbatched_oracle(seed in 0u64..1_000_000, opaque in prop_oneof![Just(false), Just(true)]) {
        let mix = TrafficMix::default();
        let reqs = saturated(&mix, 400, seed);
        let batched = run_once(1, &reqs, 8, AdmissionSpec::off(), opaque);
        let oracle = run_once(1, &reqs, 1, AdmissionSpec::off(), opaque);
        prop_assert_eq!(&batched.0, &oracle.0, "responses diverge");
        prop_assert_eq!(batched.1, oracle.1, "final state diverges");
    }

    /// Admission control changes commit paths, never outcomes.
    #[test]
    fn admission_is_outcome_transparent(seed in 0u64..1_000_000) {
        let mix = TrafficMix::default();
        let reqs = saturated(&mix, 400, seed);
        // backlog_min 0 + zero threshold: shed aggressively from the start.
        let aggressive = AdmissionSpec {
            enabled: true,
            backlog_min: 0,
            trouble_threshold: 1,
            occupancy_max: 1,
        };
        let with = run_once(1, &reqs, 8, aggressive, false);
        let without = run_once(1, &reqs, 8, AdmissionSpec::off(), false);
        prop_assert_eq!(&with.0, &without.0, "shedding changed responses");
        prop_assert_eq!(with.1, without.1, "shedding changed final state");
    }
}

/// Multi-worker transfer-only load conserves the total balance exactly, for
/// every batching/admission configuration.
#[test]
fn transfers_conserve_total_balance() {
    let mix = TrafficMix {
        kv_weight: 0,
        queue_weight: 0,
        transfer_weight: 1,
        keys: 32,
        hot_pct: 75,
        hot_keys: 4,
        ..TrafficMix::default()
    };
    let reqs = saturated(&mix, 600, 2024);
    let expected: u64 = preload_items().iter().map(|&(_, _, v)| v).sum();
    for (workers, batch_max, admission) in [
        (1usize, 1usize, AdmissionSpec::off()),
        (4, 8, AdmissionSpec::off()),
        (4, 8, AdmissionSpec::default()),
        (4, 1, AdmissionSpec::default()),
    ] {
        let (_, total, served) = run_once(workers, &reqs, batch_max, admission, false);
        assert_eq!(total, expected, "lost or minted balance");
        assert_eq!(served, reqs.len() as u64);
    }
}

/// The virtual-time server is deterministic: same spec, same requests →
/// identical latency quantiles, makespan, responses and stats.
#[test]
fn virtual_server_is_reproducible() {
    use htm_sim::vclock::SchedSpec;
    use tm_harness::loadgen::ArrivalProcess;

    let run = || {
        let rt = runtime(2);
        let state = ServerState::new(&rt, SPEC);
        state.preload(&rt, &preload_items());
        let arrivals = ArrivalProcess::Poisson { mean_gap: 400.0 }.timestamps(300, 11);
        let reqs = gen_requests(&TrafficMix::default(), &arrivals, 11);
        let opts = ServeOpts {
            collect_responses: true,
            ..ServeOpts::default()
        };
        let mode = ServeMode::Virtual(SchedSpec::default());
        let rep = run_server::<PartHtm>(&rt, &state, 2, &reqs, &mode, &opts);
        let mut responses = rep.responses.clone();
        responses.sort_unstable();
        (
            rep.run.makespan,
            rep.latency.p50(),
            rep.latency.p99(),
            rep.latency.count(),
            responses,
            rep.run.tm.commits_total(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual-time serverbench cell must be reproducible");
    assert!(a.0 > 0, "virtual time must advance");
    assert_eq!(a.3, 300, "every request gets a latency sample");
}

/// Group commit actually batches (mean width > 1) and the stats counters
/// record it.
#[test]
fn batching_stats_are_recorded() {
    let reqs = saturated(&TrafficMix::small_only(), 512, 7);
    let rt = runtime(1);
    let state = ServerState::new(&rt, SPEC);
    let opts = ServeOpts {
        batch_max: 8,
        admission: AdmissionSpec::off(),
        ..ServeOpts::default()
    };
    let rep = run_server::<PartHtm>(&rt, &state, 1, &reqs, &ServeMode::Wall, &opts);
    assert!(rep.run.tm.batch_groups > 0, "no groups formed");
    assert!(
        rep.run.tm.batch_reqs >= 2 * rep.run.tm.batch_groups,
        "batched groups must hold at least 2 requests"
    );
    // Saturated small-op load on one worker should coalesce most requests.
    assert!(
        rep.run.tm.batch_reqs * 2 >= rep.served,
        "batching barely engaged: {} of {} requests",
        rep.run.tm.batch_reqs,
        rep.served
    );
}

/// Shed commits take the slow path and are counted.
#[test]
fn shedding_reaches_the_slow_path() {
    let reqs = saturated(&TrafficMix::default(), 512, 9);
    let rt = runtime(1);
    let state = ServerState::new(&rt, SPEC);
    state.preload(&rt, &preload_items());
    let opts = ServeOpts {
        batch_max: 4,
        // Threshold 0: shed whenever there is any backlog at all, so the
        // slow-path wiring is exercised regardless of how healthy the
        // speculative paths are on this load.
        admission: AdmissionSpec {
            enabled: true,
            backlog_min: 0,
            trouble_threshold: 0,
            occupancy_max: 1,
        },
        ..ServeOpts::default()
    };
    let rep = run_server::<PartHtm>(&rt, &state, 1, &reqs, &ServeMode::Wall, &opts);
    assert!(rep.run.tm.shed_commits > 0, "aggressive controller never shed");
    assert!(
        rep.run.tm.shed_commits <= rep.run.tm.commits_gl,
        "shed commits are a subset of global-lock commits"
    );
}
