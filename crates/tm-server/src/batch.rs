//! Group commit: coalesce small same-shard requests into one
//! planner-declared multi-segment transaction.
//!
//! Small transactions pay the Part-HTM fixed costs — begin/commit of the
//! hardware transaction, the glock check, ring-summary publish — once *per
//! transaction*, and for a two-access Put that overhead dominates the actual
//! work. A [`ReqGroup`] amortizes it: up to `batch_max` batchable requests
//! bound for the same shard become one transaction with one segment per
//! request, so the fast path commits the whole batch inside a single
//! hardware transaction while the partitioned path inherits a natural
//! segment boundary per request. The group declares a width-classed planner
//! site ([`part_htm_core::batch_site`]), so the abort-profile planner learns
//! capacity behaviour *per batch width* and an over-wide group is demoted or
//! split back toward singleton granularity without un-learning the narrow
//! widths.
//!
//! The [`Batcher`] enforces the ordering rules that make batching
//! result-transparent (see `docs/tm-server.md`): per-shard FIFO pending
//! lists, a full list flushes immediately, a transfer first flushes every
//! pending list of a shard it touches and then runs as a singleton group.
//! Each shard is served by exactly one worker, so per-shard service order
//! equals arrival order for *any* `batch_max` — that is the differential
//! oracle (`batch_max = 1`) the proptests pin.

use crate::service::{Request, ServerState};
use htm_sim::abort::TxResult;
use part_htm_core::{batch_site, TxCtx, Workload};
use rand::rngs::SmallRng;

/// Planner op-class for batched small-request groups.
const CLASS_SMALL: u32 = 0;
/// Planner op-class for transfer singletons.
const CLASS_TRANSFER: u32 = 1;

/// A group of requests executing as one transaction: segment `i` serves
/// request `i`. Built by the [`Batcher`]; results are readable after the
/// executor commits it.
pub struct ReqGroup<'s> {
    state: &'s ServerState,
    reqs: Vec<Request>,
    results: Vec<u64>,
    site: u32,
}

impl<'s> ReqGroup<'s> {
    /// Wrap `reqs` (non-empty; all same home shard, or a lone transfer).
    pub fn new(state: &'s ServerState, reqs: Vec<Request>) -> Self {
        assert!(!reqs.is_empty());
        let spec = state.spec();
        let shard = reqs[0].op.home_shard(spec);
        let class = if reqs.len() == 1 && !reqs[0].op.batchable() {
            CLASS_TRANSFER
        } else {
            debug_assert!(
                reqs.iter()
                    .all(|r| r.op.batchable() && r.op.home_shard(spec) == shard),
                "batched group must be same-shard batchable requests"
            );
            CLASS_SMALL
        };
        let site = batch_site(class, shard, reqs.len() as u32);
        let results = vec![0; reqs.len()];
        Self {
            state,
            reqs,
            results,
            site,
        }
    }

    /// Requests in the group (service order).
    pub fn requests(&self) -> &[Request] {
        &self.reqs
    }

    /// Group width.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Always false (groups are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Response words, valid after the executor committed the group
    /// (`results()[i]` answers `requests()[i]`).
    pub fn results(&self) -> &[u64] {
        &self.results
    }
}

impl Workload for ReqGroup<'_> {
    type Snap = ();

    fn sample(&mut self, _rng: &mut SmallRng) {}

    fn segments(&self) -> usize {
        self.reqs.len()
    }

    fn site(&self) -> u32 {
        self.site
    }

    fn segment<C: TxCtx>(&mut self, seg: usize, ctx: &mut C) -> TxResult<()> {
        // Idempotent: a retried segment simply overwrites its slot.
        let v = self.state.exec_op(&self.reqs[seg].op, ctx)?;
        self.results[seg] = v;
        Ok(())
    }
}

/// Per-worker request coalescer: per-shard FIFO pending lists with the
/// flush rules from the module docs.
pub struct Batcher {
    pending: Vec<Vec<Request>>,
    batch_max: usize,
    count: usize,
    /// Round-robin cursor for idle flushes.
    rr: usize,
}

impl Batcher {
    /// A batcher over `shards` shards coalescing up to `batch_max` requests
    /// per group (`1` = unbatched).
    pub fn new(shards: usize, batch_max: usize) -> Self {
        assert!(batch_max >= 1);
        Self {
            pending: vec![Vec::new(); shards],
            batch_max,
            count: 0,
            rr: 0,
        }
    }

    /// Requests pulled but not yet part of an emitted group.
    pub fn pending(&self) -> usize {
        self.count
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Accept one request; returns the groups that must execute *now*, in
    /// service order. A batchable request returns at most one group (its
    /// shard's list reaching `batch_max`); a transfer returns the flushes of
    /// every shard it touches (ascending shard id — the shards are disjoint,
    /// so the inter-shard order is immaterial) followed by itself.
    pub fn offer<'s>(&mut self, state: &'s ServerState, req: Request) -> Vec<ReqGroup<'s>> {
        let spec = state.spec();
        if req.op.batchable() {
            let shard = req.op.home_shard(spec) as usize;
            self.pending[shard].push(req);
            self.count += 1;
            if self.pending[shard].len() >= self.batch_max {
                return vec![self.drain(state, shard).expect("just pushed")];
            }
            return Vec::new();
        }
        // Transfer: flush the pending lists of every shard it touches, then
        // run it alone — per-shard service order stays arrival order.
        let mut shards = vec![req.op.home_shard(spec)];
        if let Some(s) = req.op.cross_shard(spec) {
            shards.push(s);
        }
        shards.sort_unstable();
        let mut out: Vec<ReqGroup<'s>> = shards
            .into_iter()
            .filter_map(|s| self.drain(state, s as usize))
            .collect();
        out.push(ReqGroup::new(state, vec![req]));
        out
    }

    /// Flush one pending shard (round-robin), for when no arrival is due:
    /// serving a partial batch beats idling on latency.
    pub fn flush_next<'s>(&mut self, state: &'s ServerState) -> Option<ReqGroup<'s>> {
        if self.count == 0 {
            return None;
        }
        for i in 0..self.pending.len() {
            let s = (self.rr + i) % self.pending.len();
            if !self.pending[s].is_empty() {
                self.rr = (s + 1) % self.pending.len();
                return self.drain(state, s);
            }
        }
        None
    }

    fn drain<'s>(&mut self, state: &'s ServerState, shard: usize) -> Option<ReqGroup<'s>> {
        if self.pending[shard].is_empty() {
            return None;
        }
        let reqs = std::mem::take(&mut self.pending[shard]);
        self.count -= reqs.len();
        Some(ReqGroup::new(state, reqs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Op, ServerSpec};
    use part_htm_core::TmRuntime;

    fn setup() -> (TmRuntime, ServerSpec) {
        let spec = ServerSpec {
            shards: 4,
            slots_per_shard: 32,
            queue_cap: 8,
        };
        (TmRuntime::with_defaults(1, spec.app_words()), spec)
    }

    /// A key living on the given shard (found by search).
    fn key_on_shard(spec: &ServerSpec, shard: u32) -> u32 {
        (0..).find(|&k| spec.shard_of_key(0, k) == shard).unwrap()
    }

    fn put(spec: &ServerSpec, shard: u32, val: u64) -> Request {
        Request {
            arrival: 0,
            seq: 0,
            op: Op::Put {
                tenant: 0,
                key: key_on_shard(spec, shard),
                val,
            },
        }
    }

    #[test]
    fn batches_flush_at_batch_max_in_fifo_order() {
        let (rt, spec) = setup();
        let state = ServerState::new(&rt, spec);
        let mut b = Batcher::new(spec.shards, 3);
        assert!(b.offer(&state, put(&spec, 1, 10)).is_empty());
        assert!(b.offer(&state, put(&spec, 2, 99)).is_empty());
        assert!(b.offer(&state, put(&spec, 1, 11)).is_empty());
        assert_eq!(b.pending(), 3);
        let groups = b.offer(&state, put(&spec, 1, 12));
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.len(), 3);
        let vals: Vec<u64> = g
            .requests()
            .iter()
            .map(|r| match r.op {
                Op::Put { val, .. } => val,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, [10, 11, 12], "FIFO within the shard");
        assert_eq!(b.pending(), 1, "other shard still pending");
    }

    #[test]
    fn transfer_flushes_touched_shards_then_rides_alone() {
        let (rt, spec) = setup();
        let state = ServerState::new(&rt, spec);
        // Find a cross-shard transfer.
        let from = key_on_shard(&spec, 0);
        let to = (0..)
            .find(|&k| spec.shard_of_key(0, k) != 0)
            .unwrap();
        let xfer = Request {
            arrival: 0,
            seq: 0,
            op: Op::Transfer {
                tenant: 0,
                from,
                to,
                amount: 1,
            },
        };
        let home = xfer.op.home_shard(&spec);
        let cross = xfer.op.cross_shard(&spec).unwrap();

        let mut b = Batcher::new(spec.shards, 8);
        assert!(b.offer(&state, put(&spec, home, 1)).is_empty());
        assert!(b.offer(&state, put(&spec, cross, 2)).is_empty());
        let groups = b.offer(&state, xfer);
        assert_eq!(groups.len(), 3, "both flushes plus the transfer");
        assert!(groups[..2].iter().all(|g| g.len() == 1));
        let last = groups.last().unwrap();
        assert_eq!(last.len(), 1);
        assert!(!last.requests()[0].op.batchable());
        assert!(b.is_empty());
    }

    #[test]
    fn idle_flush_drains_round_robin() {
        let (rt, spec) = setup();
        let state = ServerState::new(&rt, spec);
        let mut b = Batcher::new(spec.shards, 8);
        for s in [0u32, 2, 3] {
            b.offer(&state, put(&spec, s, u64::from(s)));
        }
        let mut seen = Vec::new();
        while let Some(g) = b.flush_next(&state) {
            seen.push(g.requests()[0].op.home_shard(&spec));
        }
        seen.sort_unstable();
        assert_eq!(seen, [0, 2, 3]);
        assert!(b.is_empty());
        assert!(b.flush_next(&state).is_none());
    }

    #[test]
    fn group_sites_are_width_classed() {
        let (rt, spec) = setup();
        let state = ServerState::new(&rt, spec);
        let one = ReqGroup::new(&state, vec![put(&spec, 1, 1)]);
        let two = ReqGroup::new(&state, vec![put(&spec, 1, 1), put(&spec, 1, 2)]);
        assert_ne!(one.site(), two.site(), "width classes separate sites");
        assert_eq!(one.segments(), 1);
        assert_eq!(two.segments(), 2);
    }
}
