//! # tm-server — a batched group-commit transactional service
//!
//! A multi-tenant sharded KV/queue service front-end for the Part-HTM
//! runtime, sized for the regime the paper's closed-loop figures cannot
//! show: *open-loop* load, where arrivals keep coming whether or not the
//! hardware keeps up. Every request executes as a Part-HTM transaction;
//! two mechanisms manage the best-effort HTM resource limitation at
//! service scale:
//!
//! * **group commit** ([`batch`]) — per-worker coalescing of small
//!   same-shard requests into one planner-declared multi-segment
//!   transaction, amortizing the fixed per-transaction costs (HTM
//!   begin/commit, glock check, ring publish) across up to `batch_max`
//!   requests, while the width-classed planner sites let PR 7's abort
//!   profiler split an over-wide batch back apart on capacity aborts;
//! * **admission control** ([`admission`]) — a probe/backoff controller
//!   fed by capacity-abort EWMAs and ring-shard occupancy that sheds
//!   excess arrivals straight to the serialized slow path
//!   ([`part_htm_core::TmExecutor::execute_shed`]) instead of letting
//!   speculative retries convoy the service under overload.
//!
//! The [`service`] module holds the heap layout, request vocabulary, the
//! per-worker serve loop and the multi-worker front-end ([`run_server`]),
//! which runs under the wall clock or the deterministic virtual clock and
//! reports sojourn-latency histograms ([`tm_harness::loadgen`]) next to the
//! usual protocol statistics. `batch_max = 1` and [`AdmissionSpec::off`]
//! pin the unbatched / no-controller differential oracles; the
//! `serverbench` binary measures both mechanisms against them.
//!
//! See `docs/tm-server.md` for the request lifecycle and the batching
//! equivalence argument.

#![deny(missing_docs)]

pub mod admission;
pub mod batch;
pub mod service;

pub use admission::{Admission, AdmissionSpec};
pub use batch::{Batcher, ReqGroup};
pub use service::{
    gen_requests, run_server, Op, Request, ServeMode, ServeOpts, ServerReport, ServerSpec,
    ServerState, TrafficMix,
};
